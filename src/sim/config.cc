#include "sim/config.hh"

#include <bit>
#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace rigor::sim
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Boost-style hash mixing. */
void
hashCombine(std::size_t &seed, std::uint64_t value)
{
    seed ^= std::hash<std::uint64_t>{}(value) + 0x9e3779b97f4a7c15ULL +
            (seed << 6) + (seed >> 2);
}

void
hashCombine(std::size_t &seed, const CacheGeometry &g)
{
    hashCombine(seed, g.sizeBytes);
    hashCombine(seed, g.assoc);
    hashCombine(seed, g.blockBytes);
    hashCombine(seed, static_cast<std::uint64_t>(g.replacement));
    hashCombine(seed, g.latency);
}

void
hashCombine(std::size_t &seed, const TlbGeometry &g)
{
    hashCombine(seed, g.entries);
    hashCombine(seed, g.pageBytes);
    hashCombine(seed, g.assoc);
    hashCombine(seed, g.missLatency);
}

void
validateCache(const char *name, const CacheGeometry &g)
{
    const std::string prefix = std::string(name) + ": ";
    if (g.sizeBytes == 0 || g.blockBytes == 0)
        throw std::invalid_argument(prefix + "zero size or block");
    if (!isPow2(g.sizeBytes) || !isPow2(g.blockBytes))
        throw std::invalid_argument(
            prefix + "size and block must be powers of two");
    if (g.blockBytes > g.sizeBytes)
        throw std::invalid_argument(prefix + "block larger than cache");
    const std::uint32_t blocks = g.numBlocks();
    const std::uint32_t ways = g.effectiveAssoc();
    if (ways == 0 || blocks % ways != 0)
        throw std::invalid_argument(
            prefix + "associativity must divide the block count");
    if (!isPow2(g.numSets()))
        throw std::invalid_argument(
            prefix + "set count must be a power of two");
    if (g.latency == 0)
        throw std::invalid_argument(prefix + "zero latency");
}

void
validateTlb(const char *name, const TlbGeometry &g)
{
    const std::string prefix = std::string(name) + ": ";
    if (g.entries == 0)
        throw std::invalid_argument(prefix + "zero entries");
    if (!isPow2(g.pageBytes))
        throw std::invalid_argument(
            prefix + "page size must be a power of two");
    const std::uint32_t ways = g.effectiveAssoc();
    if (ways == 0 || g.entries % ways != 0)
        throw std::invalid_argument(
            prefix + "associativity must divide the entry count");
    if (!isPow2(g.numSets()))
        throw std::invalid_argument(
            prefix + "set count must be a power of two");
}

} // namespace

std::uint32_t
ProcessorConfig::lsqEntries() const
{
    const double raw = lsqRatio * static_cast<double>(robEntries);
    const auto entries = static_cast<std::uint32_t>(std::lround(raw));
    return entries == 0 ? 1 : entries;
}

std::uint32_t
ProcessorConfig::memLatencyFollowing() const
{
    const auto lat = static_cast<std::uint32_t>(
        std::lround(0.02 * static_cast<double>(memLatencyFirst)));
    return lat == 0 ? 1 : lat;
}

void
ProcessorConfig::validate() const
{
    if (machineWidth == 0)
        throw std::invalid_argument("machineWidth must be non-zero");
    if (ifqEntries == 0)
        throw std::invalid_argument("ifqEntries must be non-zero");
    if (robEntries == 0)
        throw std::invalid_argument("robEntries must be non-zero");
    if (lsqRatio <= 0.0 || lsqRatio > 1.0)
        throw std::invalid_argument("lsqRatio must be in (0, 1]");
    if (memPorts == 0)
        throw std::invalid_argument("memPorts must be non-zero");
    if (rasEntries == 0)
        throw std::invalid_argument("rasEntries must be non-zero");
    if (btbEntries == 0 || !isPow2(btbEntries))
        throw std::invalid_argument(
            "btbEntries must be a non-zero power of two");
    if (btbAssoc != 0 && btbEntries % btbAssoc != 0)
        throw std::invalid_argument(
            "btbAssoc must divide btbEntries");

    if (intAlus == 0 || fpAlus == 0 || intMultDivUnits == 0 ||
        fpMultDivUnits == 0)
        throw std::invalid_argument(
            "functional unit counts must be non-zero");
    if (intAluLatency == 0 || fpAluLatency == 0 || intMultLatency == 0 ||
        intDivLatency == 0 || fpMultLatency == 0 || fpDivLatency == 0 ||
        fpSqrtLatency == 0)
        throw std::invalid_argument(
            "functional unit latencies must be non-zero");
    if (intAluThroughput == 0 || fpAluThroughput == 0 ||
        intMultThroughput == 0)
        throw std::invalid_argument(
            "functional unit throughputs must be non-zero");

    validateCache("l1i", l1i);
    validateCache("l1d", l1d);
    validateCache("l2", l2);
    if (l2.blockBytes < l1d.blockBytes || l2.blockBytes < l1i.blockBytes)
        throw std::invalid_argument(
            "l2 block must be at least as large as the L1 blocks");
    if (memLatencyFirst == 0)
        throw std::invalid_argument("memLatencyFirst must be non-zero");
    if (memBandwidthBytes == 0 || !isPow2(memBandwidthBytes))
        throw std::invalid_argument(
            "memBandwidthBytes must be a non-zero power of two");
    validateTlb("itlb", itlb);
    validateTlb("dtlb", dtlb);
}

std::size_t
ProcessorConfig::hash() const
{
    std::size_t seed = 0;
    hashCombine(seed, ifqEntries);
    hashCombine(seed, static_cast<std::uint64_t>(bpred));
    hashCombine(seed, bpredPenalty);
    hashCombine(seed, rasEntries);
    hashCombine(seed, btbEntries);
    hashCombine(seed, btbAssoc);
    hashCombine(seed, static_cast<std::uint64_t>(specBranchUpdate));
    hashCombine(seed, machineWidth);
    hashCombine(seed, robEntries);
    hashCombine(seed, std::bit_cast<std::uint64_t>(lsqRatio));
    hashCombine(seed, memPorts);
    hashCombine(seed, intAlus);
    hashCombine(seed, intAluLatency);
    hashCombine(seed, intAluThroughput);
    hashCombine(seed, fpAlus);
    hashCombine(seed, fpAluLatency);
    hashCombine(seed, fpAluThroughput);
    hashCombine(seed, intMultDivUnits);
    hashCombine(seed, intMultLatency);
    hashCombine(seed, intDivLatency);
    hashCombine(seed, intMultThroughput);
    hashCombine(seed, fpMultDivUnits);
    hashCombine(seed, fpMultLatency);
    hashCombine(seed, fpDivLatency);
    hashCombine(seed, fpSqrtLatency);
    hashCombine(seed, l1iNextLinePrefetch ? 1 : 0);
    hashCombine(seed, l1i);
    hashCombine(seed, l1d);
    hashCombine(seed, l2);
    hashCombine(seed, memLatencyFirst);
    hashCombine(seed, memBandwidthBytes);
    hashCombine(seed, itlb);
    hashCombine(seed, dtlb);
    return seed;
}

std::string
toString(BranchPredictorKind kind)
{
    switch (kind) {
      case BranchPredictorKind::TwoLevel:
        return "2-Level";
      case BranchPredictorKind::Bimodal:
        return "Bimodal";
      case BranchPredictorKind::LocalTwoLevel:
        return "Local 2-Level";
      case BranchPredictorKind::Tournament:
        return "Tournament";
      case BranchPredictorKind::Perfect:
        return "Perfect";
    }
    return "?";
}

std::string
toString(BranchUpdateTiming timing)
{
    return timing == BranchUpdateTiming::InCommit ? "In Commit"
                                                  : "In Decode";
}

std::string
toString(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::LRU:
        return "LRU";
      case ReplacementKind::FIFO:
        return "FIFO";
      case ReplacementKind::Random:
        return "Random";
    }
    return "?";
}

std::string
ProcessorConfig::toString() const
{
    std::ostringstream os;
    os << "core: width=" << machineWidth << " ifq=" << ifqEntries
       << " rob=" << robEntries << " lsq=" << lsqEntries()
       << " memports=" << memPorts << "\n"
       << "bpred: " << sim::toString(bpred)
       << " penalty=" << bpredPenalty << " ras=" << rasEntries
       << " btb=" << btbEntries << "x"
       << (btbAssoc == 0 ? std::string("full")
                         : std::to_string(btbAssoc))
       << " update=" << sim::toString(specBranchUpdate) << "\n"
       << "fu: ialu=" << intAlus << "@" << intAluLatency
       << " falu=" << fpAlus << "@" << fpAluLatency
       << " imd=" << intMultDivUnits << "@" << intMultLatency << "/"
       << intDivLatency << " fmd=" << fpMultDivUnits << "@"
       << fpMultLatency << "/" << fpDivLatency << "/" << fpSqrtLatency
       << "\n"
       << "l1i: " << l1i.sizeBytes / 1024 << "KB/"
       << (l1i.assoc == 0 ? std::string("full")
                          : std::to_string(l1i.assoc))
       << "way/" << l1i.blockBytes << "B@" << l1i.latency << "\n"
       << "l1d: " << l1d.sizeBytes / 1024 << "KB/"
       << (l1d.assoc == 0 ? std::string("full")
                          : std::to_string(l1d.assoc))
       << "way/" << l1d.blockBytes << "B@" << l1d.latency << "\n"
       << "l2: " << l2.sizeBytes / 1024 << "KB/"
       << (l2.assoc == 0 ? std::string("full")
                         : std::to_string(l2.assoc))
       << "way/" << l2.blockBytes << "B@" << l2.latency << "\n"
       << "mem: first=" << memLatencyFirst << " following="
       << memLatencyFollowing() << " bw=" << memBandwidthBytes << "B\n"
       << "itlb: " << itlb.entries << "e/"
       << (itlb.assoc == 0 ? std::string("full")
                           : std::to_string(itlb.assoc))
       << "way/" << itlb.pageBytes / 1024 << "KBpage@"
       << itlb.missLatency << "\n"
       << "dtlb: " << dtlb.entries << "e/"
       << (dtlb.assoc == 0 ? std::string("full")
                           : std::to_string(dtlb.assoc))
       << "way/" << dtlb.pageBytes / 1024 << "KBpage@"
       << dtlb.missLatency << "\n";
    return os.str();
}

} // namespace rigor::sim
