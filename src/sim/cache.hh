/**
 * @file
 * Timing-model cache: tag-only simulation of one cache level.
 *
 * Data values are never stored — the trace-driven core only needs hit
 * or miss decisions and latencies, which depend on tags alone.
 */

#ifndef RIGOR_SIM_CACHE_HH
#define RIGOR_SIM_CACHE_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/replacement.hh"

namespace rigor::sim
{

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** One level of cache with configurable geometry and replacement. */
class Cache
{
  public:
    /**
     * @param name report label, e.g. "l1d"
     * @param geometry size/assoc/block/replacement/latency
     */
    Cache(std::string name, const CacheGeometry &geometry);

    /**
     * Access the block containing @p addr, allocating it on a miss.
     *
     * @return true on hit
     */
    bool access(std::uint64_t addr);

    /** Check for presence without perturbing replacement state. */
    bool contains(std::uint64_t addr) const;

    const std::string &name() const { return _name; }
    const CacheGeometry &geometry() const { return _geometry; }
    const CacheStats &stats() const { return _stats; }

    /** Hit latency in cycles. */
    std::uint32_t latency() const { return _geometry.latency; }

    /** Invalidate all blocks and zero the statistics. */
    void reset();

  private:
    std::string _name;
    CacheGeometry _geometry;
    TagStore _tags;
    CacheStats _stats;
    std::uint32_t _blockShift;
    std::uint32_t _setMask;

    std::uint32_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_CACHE_HH
