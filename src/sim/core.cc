#include "sim/core.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rigor::sim
{

using trace::Instruction;
using trace::OpClass;

namespace
{

/** Fetch bubble when a taken branch hits the predictor but misses the
 *  BTB: the target is produced at decode instead of fetch. */
constexpr std::uint64_t btbMisfetchBubble = 2;

} // namespace

// ---------------------------------------------------------------------
// SlotAllocator
// ---------------------------------------------------------------------

SlotAllocator::SlotAllocator(std::uint32_t capacity_per_cycle)
    : _capacity(capacity_per_cycle), _tags(ringSize, ~std::uint64_t{0}),
      _counts(ringSize, 0)
{
}

std::uint64_t
SlotAllocator::allocate(std::uint64_t earliest)
{
    std::uint64_t cycle = earliest;
    for (;;) {
        const std::size_t idx = cycle & (ringSize - 1);
        if (_tags[idx] != cycle) {
            _tags[idx] = cycle;
            _counts[idx] = 1;
            return cycle;
        }
        if (_counts[idx] < _capacity) {
            ++_counts[idx];
            return cycle;
        }
        ++cycle;
    }
}

void
SlotAllocator::reset()
{
    std::fill(_tags.begin(), _tags.end(), ~std::uint64_t{0});
    std::fill(_counts.begin(), _counts.end(), 0);
}

// ---------------------------------------------------------------------
// SuperscalarCore
// ---------------------------------------------------------------------

SuperscalarCore::SuperscalarCore(const ProcessorConfig &config,
                                 ExecutionHook *hook)
    : _config(config), _hook(hook), _memory(config),
      _predictor(makeBranchPredictor(config.bpred)),
      _btb(config.btbEntries, config.btbAssoc),
      _ras(config.rasEntries),
      _intAlu("int-alu", config.intAlus, config.intAluLatency,
              config.intAluThroughput),
      _fpAlu("fp-alu", config.fpAlus, config.fpAluLatency,
             config.fpAluThroughput),
      _intMultDiv("int-multdiv", config.intMultDivUnits,
                  config.intMultLatency, config.intMultThroughput),
      _fpMultDiv("fp-multdiv", config.fpMultDivUnits,
                 config.fpMultLatency, config.fpMultThroughput()),
      _issueSlots(config.machineWidth), _memPorts(config.memPorts),
      _dispatchHist(config.ifqEntries, 0),
      _commitHist(config.robEntries, 0),
      _memCommitHist(config.lsqEntries(), 0),
      _regReady(trace::numArchRegs, 0)
{
    _config.validate();
    _fetchSlotsLeft = _config.machineWidth;
}

void
SuperscalarCore::drainPredictorUpdates(std::uint64_t cycle)
{
    while (!_pendingUpdates.empty() &&
           _pendingUpdates.front().visibleAt <= cycle) {
        const PendingUpdate &u = _pendingUpdates.front();
        if (u.historyPending)
            _predictor->updateHistory(u.taken);
        _predictor->updateCounters(u.pc, u.taken);
        _pendingUpdates.pop_front();
    }
}

void
SuperscalarCore::handleControl(const Instruction &inst,
                               std::uint64_t fetch_cycle)
{
    ++_stats.branches;
    _branchMispredicted = false;

    if (_config.bpred == BranchPredictorKind::Perfect) {
        // Perfect direction and target prediction: no bubbles at all;
        // a taken branch still ends the fetch group (handled by the
        // caller).
        _predictor->recordOutcome(true);
        return;
    }

    drainPredictorUpdates(fetch_cycle);

    bool predicted_taken;
    if (inst.op == OpClass::Return) {
        // Returns are predicted by the RAS, not the direction
        // predictor (they are unconditionally taken).
        predicted_taken = true;
        const auto predicted_target = _ras.pop();
        if (!predicted_target || *predicted_target != inst.target) {
            ++_stats.rasMispredicts;
            _branchMispredicted = true;
        }
        _predictor->recordOutcome(!_branchMispredicted);
        return;
    }

    if (inst.op == OpClass::Call) {
        // Calls are unconditionally taken; push the return address.
        predicted_taken = true;
        _ras.push(inst.retAddr);
    } else {
        predicted_taken = _predictor->predict(inst.pc);
    }

    const bool direction_correct = predicted_taken == inst.taken;
    if (inst.op == OpClass::Branch) {
        _predictor->recordOutcome(direction_correct);
        if (_config.specBranchUpdate == BranchUpdateTiming::InDecode) {
            // Speculative decode-time history update, with the
            // counters still trained at commit.
            _predictor->updateHistory(inst.taken);
            _pendingUpdates.push_back(
                {0 /* patched by caller */, inst.pc, inst.taken, false});
        } else {
            _pendingUpdates.push_back(
                {0 /* patched by caller */, inst.pc, inst.taken, true});
        }
    }

    if (!direction_correct) {
        _branchMispredicted = true;
        return;
    }

    // Correct direction. A taken control transfer needs its target
    // from the BTB at fetch; a miss costs a short decode-redirect
    // bubble (not a full mispredict).
    if (inst.taken) {
        std::uint64_t target = 0;
        if (!_btb.lookup(inst.pc, &target) || target != inst.target) {
            ++_stats.btbMisfetches;
            _redirectCycle = std::max(
                _redirectCycle, fetch_cycle + 1 + btbMisfetchBubble);
        }
        _btb.update(inst.pc, inst.target);
    }
}

CoreStats
SuperscalarCore::run(trace::TraceSource &source,
                     std::uint64_t warmup_instructions)
{
    Instruction inst;
    const std::uint32_t width = _config.machineWidth;
    const std::uint32_t ifq = _config.ifqEntries;
    const std::uint32_t rob = _config.robEntries;
    const std::uint32_t lsq = _config.lsqEntries();
    const std::uint64_t block_mask =
        ~(std::uint64_t{_config.l1i.blockBytes} - 1);

    // An over-long warm-up would consume the whole stream: the latch
    // below would never fire, warmupCycles would stay 0, and
    // measuredCycles() would silently include the warm-up. Reject it
    // up front instead of returning a corrupted response.
    if (warmup_instructions > 0 &&
        warmup_instructions >= source.length())
        throw std::invalid_argument(
            "SuperscalarCore::run: warm-up of " +
            std::to_string(warmup_instructions) +
            " instructions consumes the whole " +
            std::to_string(source.length()) +
            "-instruction stream; nothing would be measured");

    // run() accumulates across calls, so the latch must compare
    // against this call's instruction count, not the lifetime total.
    const std::uint64_t warmup_target =
        warmup_instructions == 0
            ? 0
            : _stats.instructions + warmup_instructions;

    while (source.next(inst)) {
        // ---------------- Fetch ----------------
        // IFQ back-pressure: cannot fetch until the instruction
        // ifqEntries earlier has dispatched.
        std::uint64_t fetch_cycle = _nextFetchCycle;
        if (_instrIndex >= ifq) {
            const std::uint64_t ifq_free =
                _dispatchHist[_instrIndex % ifq];
            if (fetch_cycle < ifq_free) {
                fetch_cycle = ifq_free;
                _fetchSlotsLeft = width;
            }
        }
        if (fetch_cycle < _redirectCycle) {
            fetch_cycle = _redirectCycle;
            _fetchSlotsLeft = width;
        }

        // I-cache access on block change (or after any redirect,
        // which also changes the block).
        std::uint64_t fetch_done = fetch_cycle;
        const std::uint64_t block = inst.pc & block_mask;
        if (block != _lastFetchBlock) {
            const std::uint64_t lat =
                _memory.instructionFetch(fetch_cycle, inst.pc);
            fetch_done = fetch_cycle + lat - 1;
            if (lat > _config.l1i.latency) {
                // Miss: the front end stalls until the block arrives.
                _nextFetchCycle = fetch_done;
                _fetchSlotsLeft = width;
            }
            _lastFetchBlock = block;
        }

        // Consume a fetch slot.
        if (_fetchSlotsLeft == 0) {
            ++fetch_cycle;
            fetch_done = std::max(fetch_done, fetch_cycle);
            _fetchSlotsLeft = width;
        }
        --_fetchSlotsLeft;
        _nextFetchCycle = std::max(_nextFetchCycle, fetch_cycle);

        // Control-flow prediction.
        const bool is_control = trace::isControlOp(inst.op);
        if (is_control) {
            if (auto *perfect =
                    dynamic_cast<PerfectPredictor *>(_predictor.get()))
                perfect->setOracleOutcome(inst.taken);
            handleControl(inst, fetch_cycle);
            if (inst.taken && !_branchMispredicted) {
                // Taken transfer ends the fetch group.
                _nextFetchCycle =
                    std::max(_nextFetchCycle, fetch_cycle + 1);
                _fetchSlotsLeft = width;
                _lastFetchBlock = ~std::uint64_t{0};
            }
        }

        // ---------------- Dispatch ----------------
        std::uint64_t dispatch = fetch_done + 1;
        if (_instrIndex >= rob)
            dispatch = std::max(dispatch,
                                _commitHist[_instrIndex % rob] + 1);
        const bool is_mem = trace::isMemOp(inst.op);
        if (is_mem && _memIndex >= lsq)
            dispatch = std::max(dispatch,
                                _memCommitHist[_memIndex % lsq] + 1);

        // Dispatch width (in-order, monotonic).
        if (dispatch < _dispatchCycleCur)
            dispatch = _dispatchCycleCur;
        if (dispatch == _dispatchCycleCur &&
            _dispatchSlotsUsed >= width)
            ++dispatch;
        if (dispatch > _dispatchCycleCur) {
            _dispatchCycleCur = dispatch;
            _dispatchSlotsUsed = 0;
        }
        ++_dispatchSlotsUsed;
        _dispatchHist[_instrIndex % ifq] = dispatch;

        // ---------------- Issue / execute ----------------
        std::uint64_t ready = dispatch + 1;
        if (inst.srcA != trace::noReg)
            ready = std::max(ready, _regReady[inst.srcA]);
        if (inst.srcB != trace::noReg)
            ready = std::max(ready, _regReady[inst.srcB]);

        std::uint64_t complete;
        if (_hook && _hook->intercept(inst)) {
            // Enhancement supplies the result: no functional unit,
            // zero execution latency.
            ++_stats.interceptedInstructions;
            complete = _issueSlots.allocate(ready);
        } else {
            switch (inst.op) {
              case OpClass::Load: {
                ++_stats.loads;
                const std::uint64_t issue = _issueSlots.allocate(ready);
                const std::uint64_t port = _memPorts.allocate(issue);
                const std::uint64_t lat =
                    _memory.dataAccess(port, inst.memAddr, false);
                complete = port + lat;
                break;
              }
              case OpClass::Store: {
                ++_stats.stores;
                const std::uint64_t issue = _issueSlots.allocate(ready);
                const std::uint64_t port = _memPorts.allocate(issue);
                _memory.dataAccess(port, inst.memAddr, true);
                // The store buffer hides the access latency.
                complete = port + 1;
                break;
              }
              case OpClass::IntMult: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _intMultDiv.earliestStart(ready)));
                const std::uint64_t start = _intMultDiv.reserveFor(
                    issue, _config.intMultThroughput);
                complete = start + _config.intMultLatency;
                break;
              }
              case OpClass::IntDiv: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _intMultDiv.earliestStart(ready)));
                const std::uint64_t start = _intMultDiv.reserveFor(
                    issue, _config.intDivThroughput());
                complete = start + _config.intDivLatency;
                break;
              }
              case OpClass::FpAlu: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _fpAlu.earliestStart(ready)));
                const std::uint64_t start = _fpAlu.reserveFor(
                    issue, _config.fpAluThroughput);
                complete = start + _config.fpAluLatency;
                break;
              }
              case OpClass::FpMult: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _fpMultDiv.earliestStart(ready)));
                const std::uint64_t start = _fpMultDiv.reserveFor(
                    issue, _config.fpMultThroughput());
                complete = start + _config.fpMultLatency;
                break;
              }
              case OpClass::FpDiv: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _fpMultDiv.earliestStart(ready)));
                const std::uint64_t start = _fpMultDiv.reserveFor(
                    issue, _config.fpDivThroughput());
                complete = start + _config.fpDivLatency;
                break;
              }
              case OpClass::FpSqrt: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _fpMultDiv.earliestStart(ready)));
                const std::uint64_t start = _fpMultDiv.reserveFor(
                    issue, _config.fpSqrtThroughput());
                complete = start + _config.fpSqrtLatency;
                break;
              }
              case OpClass::IntAlu:
              case OpClass::Branch:
              case OpClass::Call:
              case OpClass::Return:
              default: {
                const std::uint64_t issue = _issueSlots.allocate(
                    std::max(ready, _intAlu.earliestStart(ready)));
                const std::uint64_t start = _intAlu.reserveFor(
                    issue, _config.intAluThroughput);
                complete = start + _config.intAluLatency;
                break;
              }
            }
        }

        if (inst.dst != trace::noReg)
            _regReady[inst.dst] = complete;

        // Mispredicted control transfer: fetch resumes after the
        // branch resolves plus the misprediction penalty.
        if (is_control && _branchMispredicted) {
            ++_stats.branchMispredicts;
            _redirectCycle = std::max(
                _redirectCycle, complete + _config.bpredPenalty);
            _lastFetchBlock = ~std::uint64_t{0};
            _branchMispredicted = false;
        }

        // ---------------- Commit ----------------
        std::uint64_t commit = std::max(complete + 1, _prevCommitCycle);
        if (commit < _commitCycleCur)
            commit = _commitCycleCur;
        if (commit == _commitCycleCur && _commitSlotsUsed >= width)
            ++commit;
        if (commit > _commitCycleCur) {
            _commitCycleCur = commit;
            _commitSlotsUsed = 0;
        }
        ++_commitSlotsUsed;
        _prevCommitCycle = commit;
        _commitHist[_instrIndex % rob] = commit;
        if (is_mem)
            _memCommitHist[_memIndex++ % lsq] = commit;

        // Commit-time predictor updates become visible at commit.
        if (is_control && inst.op == OpClass::Branch &&
            !_pendingUpdates.empty() &&
            _pendingUpdates.back().visibleAt == 0)
            _pendingUpdates.back().visibleAt = commit;

        ++_instrIndex;
        ++_stats.instructions;
        _stats.cycles = std::max(_stats.cycles, commit);
        if (warmup_target != 0 &&
            _stats.instructions == warmup_target) {
            _stats.warmupInstructions = _stats.instructions;
            _stats.warmupCycles = _stats.cycles;
        }
    }

    return _stats;
}

std::uint64_t
SuperscalarCore::warm(trace::TraceSource &source,
                      std::uint64_t max_instructions)
{
    Instruction inst;
    const std::uint64_t block_mask =
        ~(std::uint64_t{_config.l1i.blockBytes} - 1);

    // Time does not advance in functional mode; queued commit-time
    // predictor updates from a preceding detailed stretch all become
    // visible "now".
    drainPredictorUpdates(~std::uint64_t{0});

    std::uint64_t consumed = 0;
    while (consumed < max_instructions && source.next(inst)) {
        ++consumed;
        const std::uint64_t block = inst.pc & block_mask;
        if (block != _lastFetchBlock) {
            _memory.warmInstructionFetch(inst.pc);
            _lastFetchBlock = block;
        }
        if (trace::isControlOp(inst.op)) {
            warmControl(inst);
            if (inst.taken)
                _lastFetchBlock = ~std::uint64_t{0};
        }
        if (trace::isMemOp(inst.op))
            _memory.warmDataAccess(inst.memAddr);
    }
    return consumed;
}

void
SuperscalarCore::warmControl(const Instruction &inst)
{
    if (_config.bpred == BranchPredictorKind::Perfect)
        return; // nothing to train

    if (inst.op == OpClass::Return) {
        _ras.pop();
        return;
    }
    if (inst.op == OpClass::Call) {
        _ras.push(inst.retAddr);
    } else {
        // Train with the fetch-order prediction consumed, matching
        // the detailed path's predict-then-update sequence.
        const bool predicted_taken = _predictor->predict(inst.pc);
        if (inst.op == OpClass::Branch) {
            _predictor->updateHistory(inst.taken);
            _predictor->updateCounters(inst.pc, inst.taken);
        }
        if (predicted_taken != inst.taken)
            return; // detailed path skips BTB work on a mispredict
    }

    if (inst.taken) {
        std::uint64_t target = 0;
        _btb.lookup(inst.pc, &target);
        _btb.update(inst.pc, inst.target);
    }
}

void
SuperscalarCore::reset()
{
    _memory.reset();
    _predictor->reset();
    _btb.reset();
    _ras.reset();
    _intAlu.reset();
    _fpAlu.reset();
    _intMultDiv.reset();
    _fpMultDiv.reset();
    _issueSlots.reset();
    _memPorts.reset();

    _stats = CoreStats{};

    _nextFetchCycle = 0;
    _fetchSlotsLeft = _config.machineWidth;
    _lastFetchBlock = ~std::uint64_t{0};
    _redirectCycle = 0;

    std::fill(_dispatchHist.begin(), _dispatchHist.end(), 0);
    std::fill(_commitHist.begin(), _commitHist.end(), 0);
    std::fill(_memCommitHist.begin(), _memCommitHist.end(), 0);
    _instrIndex = 0;
    _memIndex = 0;

    std::fill(_regReady.begin(), _regReady.end(), 0);

    _dispatchCycleCur = 0;
    _dispatchSlotsUsed = 0;
    _commitCycleCur = 0;
    _commitSlotsUsed = 0;
    _prevCommitCycle = 0;

    _pendingUpdates.clear();
    _branchMispredicted = false;
}

} // namespace rigor::sim
