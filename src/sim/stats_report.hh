/**
 * @file
 * Human-readable end-of-run report for a simulated core.
 */

#ifndef RIGOR_SIM_STATS_REPORT_HH
#define RIGOR_SIM_STATS_REPORT_HH

#include <string>

#include "sim/core.hh"

namespace rigor::sim
{

/**
 * Render the end-of-run statistics of @p core (after run()) together
 * with @p stats as a fixed-width text report: IPC, branch and memory
 * behavior, functional-unit pressure.
 */
std::string formatRunReport(const SuperscalarCore &core,
                            const CoreStats &stats);

} // namespace rigor::sim

#endif // RIGOR_SIM_STATS_REPORT_HH
