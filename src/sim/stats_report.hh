/**
 * @file
 * End-of-run reports for a simulated core: a fixed-width text report
 * for humans and a single-object JSON rendering for the observability
 * pipeline (per-run throughput records, dashboards, diffing).
 */

#ifndef RIGOR_SIM_STATS_REPORT_HH
#define RIGOR_SIM_STATS_REPORT_HH

#include <string>

#include "sim/core.hh"

namespace rigor::sim
{

/**
 * Render the end-of-run statistics of @p core (after run()) together
 * with @p stats as a fixed-width text report: IPC, branch and memory
 * behavior, functional-unit pressure.
 */
std::string formatRunReport(const SuperscalarCore &core,
                            const CoreStats &stats);

/**
 * The same end-of-run statistics as one machine-readable JSON object:
 * instruction/cycle/IPC totals, branch outcomes, per-cache and
 * per-TLB access/miss counts, and per-pool functional-unit pressure.
 * Keys are stable snake_case; the document is a single line.
 */
std::string formatRunReportJson(const SuperscalarCore &core,
                                const CoreStats &stats);

} // namespace rigor::sim

#endif // RIGOR_SIM_STATS_REPORT_HH
