/**
 * @file
 * Trace-driven superscalar timing core.
 *
 * A one-pass scoreboard model in the SimpleScalar sim-outorder mold:
 * each dynamic instruction's fetch, dispatch, issue, completion, and
 * commit cycles are derived in program order from
 *
 *  - fetch bandwidth, taken-branch fetch-group breaks, I-cache/I-TLB
 *    latency, branch mispredict redirects, BTB misfetch bubbles and
 *    RAS mispredictions, and IFQ occupancy;
 *  - dispatch width and ROB/LSQ occupancy (an instruction cannot
 *    dispatch until the instruction robEntries earlier has
 *    committed);
 *  - register dependences (scoreboard of per-register ready cycles),
 *    issue width, functional-unit latency/throughput contention, and
 *    memory-port contention;
 *  - D-cache/D-TLB/L2/memory timing with a bandwidth-limited channel;
 *  - in-order commit at the machine width.
 *
 * The model trades cycle-by-cycle event fidelity for a single linear
 * pass (tens of millions of instructions per second), which is what
 * makes the 88-configuration x 13-benchmark Plackett-Burman
 * experiment of Table 9 tractable. Every parameter of Tables 6-8 has
 * a first-class mechanism here.
 */

#ifndef RIGOR_SIM_CORE_HH
#define RIGOR_SIM_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/branch_predictor.hh"
#include "sim/btb.hh"
#include "sim/config.hh"
#include "sim/func_unit.hh"
#include "sim/memory_system.hh"
#include "sim/ras.hh"
#include "trace/generator.hh"
#include "trace/instruction.hh"

namespace rigor::sim
{

/**
 * Hook invoked for every instruction before execution. Used by the
 * instruction-precomputation / value-reuse enhancements: returning
 * true means the enhancement supplies the result, so the instruction
 * bypasses its functional unit and completes with zero execution
 * latency.
 */
class ExecutionHook
{
  public:
    virtual ~ExecutionHook() = default;

    /** @return true when the enhancement satisfies this instruction */
    virtual bool intercept(const trace::Instruction &inst) = 0;
};

/** End-of-run summary statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t btbMisfetches = 0;
    std::uint64_t rasMispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t interceptedInstructions = 0;
    /** Instructions consumed by the warm-up phase (excluded from
     *  measuredCycles()). */
    std::uint64_t warmupInstructions = 0;
    /** Commit cycle of the last warm-up instruction. */
    std::uint64_t warmupCycles = 0;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /**
     * Cycles spent after the warm-up phase — the steady-state
     * response variable. The paper's runs covered billions of
     * instructions, so cold-start transients were negligible; at this
     * repo's scaled-down run lengths they must be excluded
     * explicitly.
     */
    std::uint64_t measuredCycles() const
    {
        return cycles - warmupCycles;
    }

    /** Instructions counted after the warm-up phase. */
    std::uint64_t measuredInstructions() const
    {
        return instructions - warmupInstructions;
    }
};

/**
 * Per-cycle bounded-capacity slot allocator (issue slots, memory
 * ports). A tagged ring buffer keeps O(1) allocation without a
 * global cycle loop; the ring must be larger than the maximum spread
 * between in-flight cycle numbers, which the ROB bounds.
 */
class SlotAllocator
{
  public:
    explicit SlotAllocator(std::uint32_t capacity_per_cycle);

    /**
     * Book one slot at the first cycle >= @p earliest with capacity.
     * @return the cycle booked
     */
    std::uint64_t allocate(std::uint64_t earliest);

    /** Release every booking, as if freshly constructed. */
    void reset();

  private:
    static constexpr std::size_t ringSize = 1u << 17;

    std::uint32_t _capacity;
    std::vector<std::uint64_t> _tags;
    std::vector<std::uint32_t> _counts;
};

/** The timing core. */
class SuperscalarCore
{
  public:
    /**
     * @param config validated processor configuration
     * @param hook optional enhancement hook (not owned; may be null)
     */
    explicit SuperscalarCore(const ProcessorConfig &config,
                             ExecutionHook *hook = nullptr);

    /**
     * Run the whole trace and return the summary statistics.
     *
     * @param warmup_instructions leading instructions treated as
     *        cache/predictor warm-up: they execute normally but
     *        CoreStats::measuredCycles() excludes their cycles
     */
    CoreStats run(trace::TraceSource &source,
                  std::uint64_t warmup_instructions = 0);

    /**
     * Functional-only execution: consume up to @p max_instructions
     * from @p source, advancing the caches, TLBs, BTB, branch
     * predictor, and RAS — but no cycle accounting. CoreStats is left
     * untouched, so a detailed run() may continue afterwards with its
     * cycle count unperturbed. This is the fast-forward mode of
     * SMARTS-style sampled simulation: microarchitectural state stays
     * warm between detailed sampling units at a fraction of the cost.
     *
     * @return the number of instructions actually consumed (less than
     *         @p max_instructions only when the source runs dry)
     */
    std::uint64_t warm(trace::TraceSource &source,
                       std::uint64_t max_instructions);

    /**
     * Restore construction-time state: pipeline occupancy, memory
     * hierarchy, predictor structures, and statistics. A reset core
     * re-running a rewound TraceSource produces bit-identical
     * CoreStats.
     */
    void reset();

    /** Cumulative statistics across all run() calls so far. */
    const CoreStats &stats() const { return _stats; }

    const MemorySystem &memory() const { return _memory; }
    const BranchPredictor &predictor() const { return *_predictor; }
    const Btb &btb() const { return _btb; }
    const ReturnAddressStack &ras() const { return _ras; }
    const FuPool &intAluPool() const { return _intAlu; }
    const FuPool &fpAluPool() const { return _fpAlu; }
    const FuPool &intMultDivPool() const { return _intMultDiv; }
    const FuPool &fpMultDivPool() const { return _fpMultDiv; }

  private:
    /** Cycle number a fetched instruction becomes dispatchable. */
    std::uint64_t fetchInstruction(const trace::Instruction &inst);
    /** Handle prediction/redirect bookkeeping of a control op. */
    void handleControl(const trace::Instruction &inst,
                       std::uint64_t fetch_cycle);
    /** Functional-mode counterpart of handleControl: trains the
     *  predictor, BTB, and RAS without any timing side effects. */
    void warmControl(const trace::Instruction &inst);
    /** Apply queued commit-time predictor updates visible by @p cycle. */
    void drainPredictorUpdates(std::uint64_t cycle);

    ProcessorConfig _config;
    ExecutionHook *_hook;
    MemorySystem _memory;
    std::unique_ptr<BranchPredictor> _predictor;
    Btb _btb;
    ReturnAddressStack _ras;
    FuPool _intAlu;
    FuPool _fpAlu;
    FuPool _intMultDiv;
    FuPool _fpMultDiv;
    SlotAllocator _issueSlots;
    SlotAllocator _memPorts;

    CoreStats _stats;

    // --- pipeline front-end state ---
    std::uint64_t _nextFetchCycle = 0;
    std::uint32_t _fetchSlotsLeft = 0;
    std::uint64_t _lastFetchBlock = ~std::uint64_t{0};
    /** Pending redirect: fetch may not resume before this cycle. */
    std::uint64_t _redirectCycle = 0;

    // --- window occupancy rings ---
    std::vector<std::uint64_t> _dispatchHist; ///< IFQ occupancy
    std::vector<std::uint64_t> _commitHist;   ///< ROB occupancy
    std::vector<std::uint64_t> _memCommitHist; ///< LSQ occupancy
    std::uint64_t _instrIndex = 0;
    std::uint64_t _memIndex = 0;

    // --- register scoreboard ---
    std::vector<std::uint64_t> _regReady;

    // --- in-order stages ---
    std::uint64_t _dispatchCycleCur = 0;
    std::uint32_t _dispatchSlotsUsed = 0;
    std::uint64_t _commitCycleCur = 0;
    std::uint32_t _commitSlotsUsed = 0;
    std::uint64_t _prevCommitCycle = 0;

    // --- deferred (commit-time) predictor updates ---
    struct PendingUpdate
    {
        std::uint64_t visibleAt;
        std::uint64_t pc;
        bool taken;
        bool historyPending;
    };
    std::deque<PendingUpdate> _pendingUpdates;

    // Per-branch transient, set by handleControl for the current
    // instruction: resolved mispredict that must redirect fetch once
    // the branch's completion cycle is known.
    bool _branchMispredicted = false;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_CORE_HH
