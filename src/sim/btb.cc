#include "sim/btb.hh"

#include <stdexcept>

namespace rigor::sim
{

namespace
{

std::uint32_t
resolveSets(std::uint32_t entries, std::uint32_t assoc)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        throw std::invalid_argument(
            "Btb: entries must be a non-zero power of two");
    const std::uint32_t ways = assoc == 0 ? entries : assoc;
    if (entries % ways != 0)
        throw std::invalid_argument(
            "Btb: associativity must divide the entry count");
    return entries / ways;
}

} // namespace

Btb::Btb(std::uint32_t entries, std::uint32_t assoc)
    : _numSets(resolveSets(entries, assoc)),
      _tags(_numSets, assoc == 0 ? entries : assoc,
            ReplacementKind::LRU)
{
}

bool
Btb::lookup(std::uint64_t pc, std::uint64_t *target_out)
{
    ++_stats.lookups;
    const std::uint64_t word = pc >> 2;
    const auto set = static_cast<std::uint32_t>(word % _numSets);
    const std::uint64_t tag = word / _numSets;
    if (_tags.lookup(set, tag, target_out))
        return true;
    ++_stats.misses;
    return false;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    const std::uint64_t word = pc >> 2;
    const auto set = static_cast<std::uint32_t>(word % _numSets);
    const std::uint64_t tag = word / _numSets;
    _tags.insert(set, tag, target);
}

void
Btb::reset()
{
    _tags.flush();
    _stats = BtbStats{};
}

} // namespace rigor::sim
