#include "sim/cache.hh"

#include <bit>
#include <stdexcept>

namespace rigor::sim
{

Cache::Cache(std::string name, const CacheGeometry &geometry)
    : _name(std::move(name)), _geometry(geometry),
      _tags(geometry.numSets(), geometry.effectiveAssoc(),
            geometry.replacement),
      _blockShift(static_cast<std::uint32_t>(
          std::countr_zero(geometry.blockBytes))),
      _setMask(geometry.numSets() - 1)
{
    if ((geometry.numSets() & (geometry.numSets() - 1)) != 0)
        throw std::invalid_argument(
            "Cache: set count must be a power of two");
}

std::uint32_t
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>((addr >> _blockShift) & _setMask);
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return (addr >> _blockShift) >> std::countr_zero(_setMask + 1);
}

bool
Cache::access(std::uint64_t addr)
{
    ++_stats.accesses;
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    if (_tags.lookup(set, tag))
        return true;

    ++_stats.misses;
    if (_tags.insert(set, tag))
        ++_stats.evictions;
    return false;
}

bool
Cache::contains(std::uint64_t addr) const
{
    return _tags.probe(setIndex(addr), tagOf(addr));
}

void
Cache::reset()
{
    _tags.flush();
    _stats = CacheStats{};
}

} // namespace rigor::sim
