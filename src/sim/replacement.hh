/**
 * @file
 * Set-associative tag store with pluggable replacement.
 *
 * Shared by the caches, the TLBs, and the BTB: each is a set of sets
 * of (tag, payload) ways with LRU / FIFO / Random victim selection.
 */

#ifndef RIGOR_SIM_REPLACEMENT_HH
#define RIGOR_SIM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace rigor::sim
{

/**
 * Tag store of numSets x assoc ways. Payload is a single uint64 per
 * way (the BTB stores a branch target there; caches ignore it).
 */
class TagStore
{
  public:
    /**
     * @param num_sets number of sets (power of two)
     * @param assoc ways per set (already resolved; not 0)
     * @param replacement victim-selection policy
     * @param seed PRNG seed for the Random policy
     */
    TagStore(std::uint32_t num_sets, std::uint32_t assoc,
             ReplacementKind replacement, std::uint64_t seed = 0x9e3779b9);

    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _assoc; }

    /**
     * Look up @p tag in @p set, updating replacement state on a hit.
     *
     * @param payload_out when non-null and the lookup hits, receives
     *        the way's payload
     * @return true on hit
     */
    bool lookup(std::uint32_t set, std::uint64_t tag,
                std::uint64_t *payload_out = nullptr);

    /** Probe without updating replacement state. */
    bool probe(std::uint32_t set, std::uint64_t tag) const;

    /**
     * Insert @p tag into @p set, evicting a victim if necessary.
     *
     * @return true when a valid block was evicted
     */
    bool insert(std::uint32_t set, std::uint64_t tag,
                std::uint64_t payload = 0);

    /**
     * Invalidate everything and restore construction-time replacement
     * state (LRU clock, Random PRNG). A flushed store behaves
     * bit-identically to a freshly constructed one.
     */
    void flush();

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t payload = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::uint32_t _numSets;
    std::uint32_t _assoc;
    ReplacementKind _replacement;
    std::uint64_t _seed;
    std::uint64_t _tick;
    std::uint64_t _rngState;
    std::vector<Way> _ways;

    Way *setBase(std::uint32_t set);
    const Way *setBase(std::uint32_t set) const;
    std::uint32_t victimWay(std::uint32_t set);
    std::uint64_t nextRandom();
};

} // namespace rigor::sim

#endif // RIGOR_SIM_REPLACEMENT_HH
