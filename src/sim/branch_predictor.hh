/**
 * @file
 * Branch direction predictors.
 *
 * Table 6 varies the predictor between a 2-level adaptive scheme (the
 * low value) and perfect prediction (the high value), and separately
 * varies whether the global history is updated speculatively at decode
 * or conservatively at commit. A bimodal predictor is included as an
 * extra design point for ablation studies.
 */

#ifndef RIGOR_SIM_BRANCH_PREDICTOR_HH
#define RIGOR_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hh"

namespace rigor::sim
{

/** Outcome counters for a direction predictor. */
struct BranchPredictorStats
{
    std::uint64_t predictions = 0;
    std::uint64_t mispredictions = 0;

    double accuracy() const
    {
        return predictions == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(mispredictions) /
                               static_cast<double>(predictions);
    }
};

/**
 * Direction predictor interface.
 *
 * The core drives it as: predict() at fetch; then either
 * updateHistory() immediately (decode-time speculative update) or at
 * commit (commit-time update); updateCounters() always at commit.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /**
     * Fold an outcome into the (global) history. Call timing is the
     * core's responsibility — this is what the Speculative Branch
     * Update parameter controls.
     */
    virtual void updateHistory(bool taken) = 0;

    /** Train the pattern tables with the resolved outcome. */
    virtual void updateCounters(std::uint64_t pc, bool taken) = 0;

    /** Record a resolved prediction in the statistics. */
    void recordOutcome(bool correct);

    /**
     * Restore construction-time state: tables, histories, and the
     * outcome statistics. A reset predictor behaves bit-identically
     * to a freshly constructed one.
     */
    virtual void reset() { _stats = BranchPredictorStats{}; }

    const BranchPredictorStats &stats() const { return _stats; }

  private:
    BranchPredictorStats _stats;
};

/**
 * Two-level adaptive predictor (gshare variant): a global history
 * register XOR-hashed with the PC indexes a table of 2-bit saturating
 * counters.
 */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    /**
     * @param table_entries pattern-table size (power of two)
     * @param history_bits global history length
     */
    explicit TwoLevelPredictor(std::uint32_t table_entries = 4096,
                               std::uint32_t history_bits = 8);

    bool predict(std::uint64_t pc) override;
    void updateHistory(bool taken) override;
    void updateCounters(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    std::vector<std::uint8_t> _counters;
    std::uint32_t _historyBits;
    std::uint32_t _history;
    std::uint32_t _indexMask;

    std::uint32_t index(std::uint64_t pc, std::uint32_t history) const;
};

/** Bimodal predictor: 2-bit counters indexed by PC only. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::uint32_t table_entries = 4096);

    bool predict(std::uint64_t pc) override;
    void updateHistory(bool taken) override;
    void updateCounters(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    std::vector<std::uint8_t> _counters;
    std::uint32_t _indexMask;
};

/**
 * Local two-level predictor (PAg): a table of per-branch history
 * registers indexes a shared table of 2-bit counters — SimpleScalar's
 * "2lev" with local history.
 */
class LocalTwoLevelPredictor : public BranchPredictor
{
  public:
    /**
     * @param history_entries per-branch history table size (power of
     *        two)
     * @param history_bits local history length
     * @param table_entries pattern table size (power of two)
     */
    explicit LocalTwoLevelPredictor(std::uint32_t history_entries = 1024,
                                    std::uint32_t history_bits = 10,
                                    std::uint32_t table_entries = 1024);

    bool predict(std::uint64_t pc) override;
    void updateHistory(bool taken) override;
    void updateCounters(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    std::vector<std::uint16_t> _histories;
    std::vector<std::uint8_t> _counters;
    std::uint32_t _historyBits;
    std::uint32_t _historyMask;
    std::uint32_t _tableMask;
    std::uint64_t _lastPc = 0;

    std::uint32_t historyIndex(std::uint64_t pc) const;
};

/**
 * Tournament (combining) predictor: a chooser of 2-bit counters picks
 * between a global (gshare) and a local component per branch — the
 * Alpha 21264 scheme, SimpleScalar's "comb".
 */
class TournamentPredictor : public BranchPredictor
{
  public:
    TournamentPredictor();

    bool predict(std::uint64_t pc) override;
    void updateHistory(bool taken) override;
    void updateCounters(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    TwoLevelPredictor _global;
    LocalTwoLevelPredictor _local;
    std::vector<std::uint8_t> _chooser;
    std::uint32_t _chooserMask;
};

/**
 * Perfect direction prediction: the core supplies the actual outcome
 * through setOracleOutcome() before calling predict().
 */
class PerfectPredictor : public BranchPredictor
{
  public:
    void setOracleOutcome(bool taken) { _next = taken; }

    bool predict(std::uint64_t pc) override;
    void updateHistory(bool taken) override;
    void updateCounters(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    bool _next = false;
};

/** Factory keyed by the Table 6 parameter value. */
std::unique_ptr<BranchPredictor>
makeBranchPredictor(BranchPredictorKind kind);

} // namespace rigor::sim

#endif // RIGOR_SIM_BRANCH_PREDICTOR_HH
