/**
 * @file
 * Translation lookaside buffer timing model.
 *
 * Hits are assumed overlapped with the cache access (zero added
 * latency); a miss pays the configured miss penalty, standing in for
 * the hardware page-table walk of the machines in Table 8.
 */

#ifndef RIGOR_SIM_TLB_HH
#define RIGOR_SIM_TLB_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/replacement.hh"

namespace rigor::sim
{

/** Access counters for one TLB. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** A set-associative (or fully associative) TLB. */
class Tlb
{
  public:
    Tlb(std::string name, const TlbGeometry &geometry);

    /**
     * Translate the page containing @p addr, filling the entry on a
     * miss.
     *
     * @return added latency in cycles: 0 on hit, the miss penalty on
     *         a miss
     */
    std::uint32_t access(std::uint64_t addr);

    const std::string &name() const { return _name; }
    const TlbGeometry &geometry() const { return _geometry; }
    const TlbStats &stats() const { return _stats; }

    void reset();

  private:
    std::string _name;
    TlbGeometry _geometry;
    TagStore _tags;
    TlbStats _stats;
    std::uint32_t _pageShift;
    std::uint32_t _setMask;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_TLB_HH
