#include "sim/memory_system.hh"

#include <algorithm>

namespace rigor::sim
{

MemorySystem::MemorySystem(const ProcessorConfig &config)
    : _l1i("l1i", config.l1i), _l1d("l1d", config.l1d),
      _l2("l2", config.l2), _itlb("itlb", config.itlb),
      _dtlb("dtlb", config.dtlb),
      _nextLinePrefetch(config.l1iNextLinePrefetch),
      _memLatencyFirst(config.memLatencyFirst),
      _memLatencyFollowing(config.memLatencyFollowing()),
      _chunksPerBlock(std::max(
          1u, config.l2.blockBytes / config.memBandwidthBytes)),
      _memFreeCycle(0)
{
}

std::uint64_t
MemorySystem::memoryTransferCycles() const
{
    return _memLatencyFirst +
           static_cast<std::uint64_t>(_chunksPerBlock - 1) *
               _memLatencyFollowing;
}

std::uint64_t
MemorySystem::memoryChannelOccupancy() const
{
    return 1 + static_cast<std::uint64_t>(_chunksPerBlock - 1) *
                   _memLatencyFollowing;
}

std::uint64_t
MemorySystem::accessL2(std::uint64_t cycle, std::uint64_t addr)
{
    ++_stats.l2Accesses;
    std::uint64_t latency = _l2.latency();
    if (!_l2.access(addr)) {
        // First-block latency overlaps across outstanding misses
        // (banked DRAM); only the data beats hold the channel.
        ++_stats.memoryTransfers;
        const std::uint64_t request = cycle + latency;
        const std::uint64_t start = std::max(request, _memFreeCycle);
        _stats.busQueueCycles += start - request;
        _memFreeCycle = start + memoryChannelOccupancy();
        latency += (start - request) + memoryTransferCycles();
    }
    return latency;
}

std::uint64_t
MemorySystem::instructionFetch(std::uint64_t cycle, std::uint64_t pc)
{
    ++_stats.instructionFetches;
    std::uint64_t latency = _itlb.access(pc);
    latency += _l1i.latency();
    if (!_l1i.access(pc))
        latency += accessL2(cycle + latency, pc);

    if (_nextLinePrefetch) {
        // Pull the next block toward L1I in the background: the fetch
        // in flight does not wait, but an L2 miss still occupies the
        // memory channel (prefetches are not free bandwidth).
        const std::uint64_t next =
            (pc | (_l1i.geometry().blockBytes - 1)) + 1;
        if (!_l1i.contains(next)) {
            ++_stats.instructionPrefetches;
            _l1i.access(next);
            if (!_l2.access(next)) {
                ++_stats.memoryTransfers;
                const std::uint64_t start = std::max(
                    cycle + latency, _memFreeCycle);
                _memFreeCycle = start + memoryChannelOccupancy();
            }
        }
    }
    return latency;
}

std::uint64_t
MemorySystem::dataAccess(std::uint64_t cycle, std::uint64_t addr,
                         bool is_store)
{
    (void)is_store; // same timing path; the core buffers stores
    ++_stats.dataAccesses;
    std::uint64_t latency = _dtlb.access(addr);
    latency += _l1d.latency();
    if (!_l1d.access(addr))
        latency += accessL2(cycle + latency, addr);
    return latency;
}

void
MemorySystem::warmInstructionFetch(std::uint64_t pc)
{
    ++_stats.instructionFetches;
    _itlb.access(pc);
    if (!_l1i.access(pc)) {
        ++_stats.l2Accesses;
        if (!_l2.access(pc))
            ++_stats.memoryTransfers;
    }
    if (_nextLinePrefetch) {
        const std::uint64_t next =
            (pc | (_l1i.geometry().blockBytes - 1)) + 1;
        if (!_l1i.contains(next)) {
            ++_stats.instructionPrefetches;
            _l1i.access(next);
            if (!_l2.access(next))
                ++_stats.memoryTransfers;
        }
    }
}

void
MemorySystem::warmDataAccess(std::uint64_t addr)
{
    ++_stats.dataAccesses;
    _dtlb.access(addr);
    if (!_l1d.access(addr)) {
        ++_stats.l2Accesses;
        if (!_l2.access(addr))
            ++_stats.memoryTransfers;
    }
}

void
MemorySystem::reset()
{
    _l1i.reset();
    _l1d.reset();
    _l2.reset();
    _itlb.reset();
    _dtlb.reset();
    _memFreeCycle = 0;
    _stats = MemorySystemStats{};
}

} // namespace rigor::sim
