/**
 * @file
 * Functional-unit pools with independent latency and throughput.
 *
 * Table 7 distinguishes operation latency (cycles until the result is
 * available) from throughput (the issue interval: cycles before the
 * unit accepts another operation). Pipelined units have interval 1;
 * the divide and FP multiply/divide/sqrt units are unpipelined, with
 * interval equal to latency.
 */

#ifndef RIGOR_SIM_FUNC_UNIT_HH
#define RIGOR_SIM_FUNC_UNIT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rigor::sim
{

/** Utilization counters for one pool. */
struct FuPoolStats
{
    std::uint64_t operations = 0;
    std::uint64_t busyStallCycles = 0;
};

/**
 * A pool of identical functional units.
 *
 * The caller asks for the earliest cycle at or after a ready cycle at
 * which some unit can accept the operation; the pool books the unit
 * for its issue interval.
 */
class FuPool
{
  public:
    /**
     * @param name report label, e.g. "int-alu"
     * @param units number of identical units (>= 1)
     * @param latency operation latency in cycles (>= 1)
     * @param interval issue interval in cycles (>= 1)
     */
    FuPool(std::string name, std::uint32_t units, std::uint32_t latency,
           std::uint32_t interval);

    /**
     * Reserve a unit at the earliest cycle >= @p ready_cycle.
     *
     * @return the cycle the operation actually starts
     */
    std::uint64_t reserve(std::uint64_t ready_cycle);

    /**
     * Reserve a unit with an explicit issue interval — pools shared
     * by operations with different throughputs (the Table 7 int and
     * FP mult/div units) book per-operation intervals.
     *
     * @return the cycle the operation actually starts
     */
    std::uint64_t reserveFor(std::uint64_t ready_cycle,
                             std::uint32_t interval);

    /** Earliest start cycle a reserve() at @p ready_cycle would get. */
    std::uint64_t earliestStart(std::uint64_t ready_cycle) const;

    std::uint32_t latency() const { return _latency; }
    std::uint32_t interval() const { return _interval; }
    std::uint32_t units() const
    {
        return static_cast<std::uint32_t>(_freeAt.size());
    }
    const std::string &name() const { return _name; }
    const FuPoolStats &stats() const { return _stats; }

    void reset();

  private:
    std::string _name;
    std::uint32_t _latency;
    std::uint32_t _interval;
    std::vector<std::uint64_t> _freeAt;
    FuPoolStats _stats;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_FUNC_UNIT_HH
