/**
 * @file
 * SMARTS-style systematic sampled simulation.
 *
 * Instead of one long detailed run, the stream is divided into fixed
 * sampling periods. Each period is simulated as: detailed warm-up
 * (cycles excluded), a measured sampling unit (cycles kept), and a
 * functional fast-forward to the next period boundary that keeps the
 * caches, TLBs, BTB, and branch predictor warm without paying for
 * cycle accounting. Per-unit CPIs feed a CLT (Student-t) confidence
 * interval, so every sampled response comes with a reported error —
 * the statistical-rigor posture of the source paper applied to the
 * simulator's own throughput problem (ROADMAP item 2).
 */

#ifndef RIGOR_SAMPLE_SAMPLING_HH
#define RIGOR_SAMPLE_SAMPLING_HH

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>

#include "sim/core.hh"
#include "trace/generator.hh"

namespace rigor::sample
{

/**
 * Sampling schedule and reporting targets. Kept trivially copyable:
 * the process-isolation backend ships it to sandbox workers as a pod.
 */
struct SamplingOptions
{
    /** Off by default: a disabled options block means a full run. */
    bool enabled = false;
    /** Detailed instructions measured per sampling unit. */
    std::uint64_t unitInstructions = 1000;
    /** Detailed warm-up instructions before each unit (cycles
     *  excluded from the unit's CPI). */
    std::uint64_t warmupInstructions = 2000;
    /** Period length: one unit is taken every this many
     *  instructions; the remainder is functional fast-forward. */
    std::uint64_t intervalInstructions = 10000;
    /** Reporting target: CI half-width / mean the campaign aims for.
     *  Purely a target — the schedule above decides the actual
     *  error, and adaptive mode tightens the schedule to meet it. */
    double targetRelativeError = 0.05;
    /** Confidence level of the reported interval. */
    double confidence = 0.95;

    /** Throw std::invalid_argument when the schedule is malformed. */
    void validate() const;

    /**
     * Identity string of the fields that determine the response
     * ("s:u<unit>:w<warmup>:i<interval>"), or "" when disabled. Part
     * of the RunKey so sampled and full runs never share cache or
     * journal entries.
     */
    std::string id() const;
};

static_assert(std::is_trivially_copyable_v<SamplingOptions>,
              "SamplingOptions crosses the sandbox pipe as a pod");

/**
 * Result of one sampled run. Trivially copyable for the same
 * sandbox-pipe reason as SamplingOptions.
 */
struct SampleSummary
{
    /** Measured sampling units taken. */
    std::uint64_t units = 0;
    /** Instructions simulated in detail (warm-up + measured). */
    std::uint64_t detailedInstructions = 0;
    /** Instructions inside measured units only. */
    std::uint64_t measuredInstructions = 0;
    /** Total stream length the estimate extrapolates over. */
    std::uint64_t streamInstructions = 0;
    /** Mean per-unit CPI. */
    double cpiMean = 0.0;
    /** Sample standard deviation of the per-unit CPIs. */
    double cpiStddev = 0.0;
    /** Student-t CI half-width of the mean CPI (0 when units < 2). */
    double ciHalfWidth = 0.0;
    /** ciHalfWidth / cpiMean; the quantity compared against
     *  SamplingOptions::targetRelativeError. */
    double relativeError = 0.0;
    /** cpiMean x streamInstructions: the extrapolated total cycle
     *  count, directly comparable with a full run's measured
     *  cycles. */
    double estimatedCycles = 0.0;

    /** True when the CI is tight enough for @p target_rel_error. */
    bool meetsTarget(double target_rel_error) const
    {
        return units >= 2 && relativeError <= target_rel_error;
    }
};

static_assert(std::is_trivially_copyable_v<SampleSummary>,
              "SampleSummary crosses the sandbox pipe as a pod");

/**
 * Aggregate per-unit CPIs into a SampleSummary. Exposed separately
 * from runSampled() so the CI math is testable against golden
 * vectors.
 */
SampleSummary summarizeUnits(std::span<const double> unit_cpis,
                             std::uint64_t stream_instructions,
                             std::uint64_t detailed_instructions,
                             std::uint64_t measured_instructions,
                             double confidence);

/**
 * Run @p source through @p core under the systematic schedule of
 * @p options: per period, detailed warm-up, measured unit, functional
 * fast-forward. The core should be freshly constructed (or reset());
 * the source is consumed exactly once, in order, so any
 * trace::TraceSource works — including non-rewindable ones.
 *
 * @return the aggregated summary; throws std::invalid_argument when
 *         the options are malformed or the stream is shorter than
 *         one warm-up + unit
 */
SampleSummary runSampled(sim::SuperscalarCore &core,
                         trace::TraceSource &source,
                         const SamplingOptions &options);

} // namespace rigor::sample

#endif // RIGOR_SAMPLE_SAMPLING_HH
