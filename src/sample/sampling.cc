#include "sample/sampling.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"

namespace rigor::sample
{

void
SamplingOptions::validate() const
{
    if (!enabled)
        return;
    if (unitInstructions == 0)
        throw std::invalid_argument(
            "SamplingOptions: unit size must be non-zero");
    if (intervalInstructions == 0)
        throw std::invalid_argument(
            "SamplingOptions: sampling interval must be non-zero");
    if (warmupInstructions + unitInstructions > intervalInstructions)
        throw std::invalid_argument(
            "SamplingOptions: warm-up + unit (" +
            std::to_string(warmupInstructions + unitInstructions) +
            ") must fit inside the sampling interval (" +
            std::to_string(intervalInstructions) + ")");
    if (!(targetRelativeError > 0.0) || targetRelativeError >= 1.0)
        throw std::invalid_argument(
            "SamplingOptions: target relative error must be in (0, 1)");
    if (!(confidence > 0.0) || confidence >= 1.0)
        throw std::invalid_argument(
            "SamplingOptions: confidence must be in (0, 1)");
}

std::string
SamplingOptions::id() const
{
    if (!enabled)
        return "";
    return "s:u" + std::to_string(unitInstructions) + ":w" +
           std::to_string(warmupInstructions) + ":i" +
           std::to_string(intervalInstructions);
}

SampleSummary
summarizeUnits(std::span<const double> unit_cpis,
               std::uint64_t stream_instructions,
               std::uint64_t detailed_instructions,
               std::uint64_t measured_instructions, double confidence)
{
    SampleSummary summary;
    summary.units = unit_cpis.size();
    summary.detailedInstructions = detailed_instructions;
    summary.measuredInstructions = measured_instructions;
    summary.streamInstructions = stream_instructions;
    if (summary.units == 0)
        return summary;

    summary.cpiMean = stats::mean(unit_cpis);
    if (summary.units >= 2) {
        summary.cpiStddev = stats::stddev(unit_cpis);
        const stats::ConfidenceInterval ci = stats::meanConfidenceInterval(
            summary.cpiMean, summary.cpiStddev,
            static_cast<unsigned>(summary.units), confidence);
        summary.ciHalfWidth = (ci.high - ci.low) / 2.0;
        summary.relativeError =
            summary.cpiMean > 0.0
                ? summary.ciHalfWidth / summary.cpiMean
                : 0.0;
    }
    summary.estimatedCycles =
        summary.cpiMean * static_cast<double>(stream_instructions);
    return summary;
}

namespace
{

/**
 * Bounded view over a TraceSource: next() yields at most the armed
 * limit before reporting exhaustion. Lets runSampled() drive the
 * cumulative core through one detailed stretch at a time without
 * rewinding the underlying source.
 */
class Window : public trace::TraceSource
{
  public:
    explicit Window(trace::TraceSource &inner) : _inner(inner) {}

    void rearm(std::uint64_t limit)
    {
        _limit = limit;
        _taken = 0;
    }

    bool next(trace::Instruction &out) override
    {
        if (_taken >= _limit || !_inner.next(out))
            return false;
        ++_taken;
        return true;
    }

    void reset() override
    {
        throw std::logic_error(
            "sample::Window: windows are forward-only");
    }

    std::uint64_t length() const override { return _limit; }

    std::uint64_t taken() const { return _taken; }

  private:
    trace::TraceSource &_inner;
    std::uint64_t _limit = 0;
    std::uint64_t _taken = 0;
};

} // namespace

SampleSummary
runSampled(sim::SuperscalarCore &core, trace::TraceSource &source,
           const SamplingOptions &options)
{
    options.validate();
    if (!options.enabled)
        throw std::invalid_argument(
            "runSampled: options.enabled is false");

    const std::uint64_t total = source.length();
    const std::uint64_t detail_per_period =
        options.warmupInstructions + options.unitInstructions;
    if (total < detail_per_period)
        throw std::invalid_argument(
            "runSampled: stream of " + std::to_string(total) +
            " instructions is shorter than one warm-up + unit (" +
            std::to_string(detail_per_period) + ")");

    Window window(source);
    std::vector<double> unit_cpis;
    std::uint64_t consumed = 0;
    std::uint64_t detailed = 0;
    std::uint64_t measured = 0;

    while (consumed + detail_per_period <= total) {
        // Detailed warm-up: simulated with full timing so the
        // pipeline state entering the unit is realistic, but the
        // cycles are excluded from the unit CPI via the delta below.
        if (options.warmupInstructions > 0) {
            window.rearm(options.warmupInstructions);
            core.run(window);
            consumed += window.taken();
            detailed += window.taken();
        }

        // Measured unit.
        const std::uint64_t cycles_before = core.stats().cycles;
        window.rearm(options.unitInstructions);
        core.run(window);
        const std::uint64_t unit_instructions = window.taken();
        consumed += unit_instructions;
        detailed += unit_instructions;
        measured += unit_instructions;
        if (unit_instructions > 0)
            unit_cpis.push_back(
                static_cast<double>(core.stats().cycles -
                                    cycles_before) /
                static_cast<double>(unit_instructions));

        // Functional fast-forward to the next period boundary.
        const std::uint64_t skip = std::min(
            options.intervalInstructions - detail_per_period,
            total - consumed);
        if (skip > 0)
            consumed += core.warm(source, skip);
    }

    return summarizeUnits(unit_cpis, total, detailed, measured,
                          options.confidence);
}

} // namespace rigor::sample
