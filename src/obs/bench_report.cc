#include "obs/bench_report.hh"

#include <fstream>
#include <stdexcept>

#include "obs/json.hh"

namespace rigor::obs
{

std::string
toJson(const BenchReport &report)
{
    std::string out = "{\"pr\":";
    out += std::to_string(report.pr);
    out += ",\"name\":";
    appendJsonString(out, report.name);
    out += ",\"wall_seconds\":";
    out += jsonNumber(report.wallSeconds);
    out += ",\"runs_total\":";
    out += std::to_string(report.runsTotal);
    out += ",\"runs_completed\":";
    out += std::to_string(report.runsCompleted);
    out += ",\"runs_per_second\":";
    out += jsonNumber(report.runsPerSecond);
    out += ",\"simulated_instructions\":";
    out += std::to_string(report.simulatedInstructions);
    out += ",\"mips\":";
    out += jsonNumber(report.mips);
    out += ",\"threads\":";
    out += std::to_string(report.threads);
    out += ",\"cache_hits\":";
    out += std::to_string(report.cacheHits);
    out += ",\"journal_hits\":";
    out += std::to_string(report.journalHits);
    if (report.sampled) {
        out += ",\"sampled\":true,\"full_mips\":";
        out += jsonNumber(report.fullMips);
        out += ",\"sampled_mips\":";
        out += jsonNumber(report.sampledMips);
        out += ",\"detailed_instruction_ratio\":";
        out += jsonNumber(report.detailedInstructionRatio);
        out += ",\"sample_rel_error\":";
        out += jsonNumber(report.sampleRelError);
        out += ",\"sample_units\":";
        out += jsonNumber(report.sampleUnits);
    }
    out += '}';
    return out;
}

void
writeBenchReport(const std::string &path, const BenchReport &report)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("writeBenchReport: cannot open '" +
                                 path + "' for writing");
    out << toJson(report) << '\n';
    if (!out)
        throw std::runtime_error("writeBenchReport: write to '" +
                                 path + "' failed");
}

} // namespace rigor::obs
