#include "obs/manifest.hh"

#include <fstream>
#include <stdexcept>

#include "obs/json.hh"

namespace rigor::obs
{

namespace
{

void
appendStringArray(std::string &out,
                  const std::vector<std::string> &values)
{
    out += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            out += ',';
        appendJsonString(out, values[i]);
    }
    out += ']';
}

} // namespace

void
CampaignManifest::beginCampaign(const CampaignInfo &info)
{
    std::string line = "{\"type\":\"campaign\",\"experiment\":";
    appendJsonString(line, info.experiment);
    line += ",\"factors\":";
    line += std::to_string(info.factors);
    line += ",\"rows\":";
    line += std::to_string(info.rows);
    line += ",\"foldover\":";
    line += info.foldover ? "true" : "false";
    line += ",\"design_digest\":";
    appendJsonString(line, info.designDigest);
    line += ",\"workloads\":";
    appendStringArray(line, info.workloads);
    line += ",\"instructions_per_run\":";
    line += std::to_string(info.instructionsPerRun);
    line += ",\"warmup_instructions\":";
    line += std::to_string(info.warmupInstructions);
    line += ",\"sampling\":";
    line += info.sampling.enabled ? "true" : "false";
    if (info.sampling.enabled) {
        line += ",\"sample_unit\":";
        line += std::to_string(info.sampling.unitInstructions);
        line += ",\"sample_warmup\":";
        line += std::to_string(info.sampling.warmupInstructions);
        line += ",\"sample_interval\":";
        line += std::to_string(info.sampling.intervalInstructions);
        line += ",\"sample_target_rel_error\":";
        line += jsonNumber(info.sampling.targetRelativeError);
        line += ",\"sample_confidence\":";
        line += jsonNumber(info.sampling.confidence);
    }
    line += '}';
    append(std::move(line));
}

void
CampaignManifest::addCell(const CellRecord &cell)
{
    std::string line = "{\"type\":\"cell\",\"benchmark\":";
    appendJsonString(line, cell.benchmark);
    line += ",\"row\":";
    line += std::to_string(cell.row);
    line += ",\"key\":";
    appendJsonString(line, cell.runKey);
    line += ",\"source\":";
    appendJsonString(line, cell.source);
    line += ",\"attempts\":";
    line += std::to_string(cell.attempts);
    line += ",\"wall_seconds\":";
    line += jsonNumber(cell.wallSeconds);
    line += ",\"response\":";
    line += jsonNumber(cell.response);
    if (cell.sampled) {
        line += ",\"sampled\":true,\"sample_units\":";
        line += std::to_string(cell.sampleUnits);
        line += ",\"sample_rel_error\":";
        line += jsonNumber(cell.sampleRelativeError);
        line += ",\"sample_half_width\":";
        line += jsonNumber(cell.sampleCiHalfWidth);
    }
    if (!cell.host.empty()) {
        line += ",\"host\":";
        appendJsonString(line, cell.host);
    }
    line += '}';
    append(std::move(line));
}

void
CampaignManifest::addLeaseEvent(const LeaseEventRecord &event)
{
    std::string line = "{\"type\":\"lease\",\"kind\":";
    appendJsonString(line, event.kind);
    line += ",\"worker\":";
    appendJsonString(line, event.worker);
    if (!event.session.empty()) {
        line += ",\"session\":";
        appendJsonString(line, event.session);
    }
    if (event.leaseId != 0) {
        line += ",\"lease_id\":";
        line += std::to_string(event.leaseId);
    }
    if (!event.label.empty()) {
        line += ",\"label\":";
        appendJsonString(line, event.label);
    }
    if (!event.detail.empty()) {
        line += ",\"detail\":";
        appendJsonString(line, event.detail);
    }
    if (event.requeues != 0) {
        line += ",\"requeues\":";
        line += std::to_string(event.requeues);
    }
    line += '}';
    append(std::move(line));
}

void
CampaignManifest::addPhase(const std::string &name,
                           double wall_seconds)
{
    std::string line = "{\"type\":\"phase\",\"name\":";
    appendJsonString(line, name);
    line += ",\"wall_seconds\":";
    line += jsonNumber(wall_seconds);
    line += '}';
    append(std::move(line));
}

void
CampaignManifest::addSummary(const SummaryRecord &summary)
{
    std::string line = "{\"type\":\"summary\",\"runs_total\":";
    line += std::to_string(summary.runsTotal);
    line += ",\"runs_completed\":";
    line += std::to_string(summary.runsCompleted);
    line += ",\"cache_hits\":";
    line += std::to_string(summary.cacheHits);
    line += ",\"journal_hits\":";
    line += std::to_string(summary.journalHits);
    line += ",\"retries\":";
    line += std::to_string(summary.retries);
    line += ",\"failed_jobs\":";
    line += std::to_string(summary.failedJobs);
    line += ",\"simulated_instructions\":";
    line += std::to_string(summary.simulatedInstructions);
    line += ",\"wall_seconds\":";
    line += jsonNumber(summary.wallSeconds);
    line += ",\"dropped_benchmarks\":";
    appendStringArray(line, summary.droppedBenchmarks);
    line += ",\"rank_table_digest\":";
    appendJsonString(line, summary.rankTableDigest);
    line += '}';
    append(std::move(line));
}

void
CampaignManifest::addStability(const StabilityRecord &stability)
{
    std::string line = "{\"type\":\"stability\",\"replicates\":";
    line += std::to_string(stability.replicates);
    line += ",\"bootstrap_iterations\":";
    line += std::to_string(stability.bootstrapIterations);
    line += ",\"bootstrap_seed\":";
    line += std::to_string(stability.bootstrapSeed);
    line += ",\"confidence\":";
    line += jsonNumber(stability.confidence);
    line += ",\"sampled\":";
    line += stability.sampled ? "true" : "false";
    line += ",\"sampling_ci_composed\":";
    line += stability.samplingCiComposed ? "true" : "false";
    line += ",\"factors\":[";
    for (std::size_t f = 0; f < stability.factors.size(); ++f) {
        const StabilityFactor &factor = stability.factors[f];
        if (f != 0)
            line += ',';
        line += "{\"name\":";
        appendJsonString(line, factor.name);
        line += ",\"rank\":";
        line += std::to_string(factor.rank);
        line += ",\"rank_lower\":";
        line += jsonNumber(factor.rankLower);
        line += ",\"rank_upper\":";
        line += jsonNumber(factor.rankUpper);
        line += '}';
    }
    line += "],\"max_flip_probability\":";
    line += jsonNumber(stability.maxFlipProbability);
    line += ",\"report_digest\":";
    appendJsonString(line, stability.reportDigest);
    line += '}';
    append(std::move(line));
}

std::size_t
CampaignManifest::recordCount() const
{
    const std::scoped_lock lock(_mutex);
    return _lines.size();
}

std::string
CampaignManifest::toJsonl() const
{
    const std::scoped_lock lock(_mutex);
    std::string out;
    for (const std::string &line : _lines) {
        out += line;
        out += '\n';
    }
    return out;
}

void
CampaignManifest::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("CampaignManifest: cannot open '" +
                                 path + "' for writing");
    out << toJsonl();
    if (!out)
        throw std::runtime_error("CampaignManifest: write to '" +
                                 path + "' failed");
}

void
CampaignManifest::append(std::string line)
{
    const std::scoped_lock lock(_mutex);
    _lines.push_back(std::move(line));
}

} // namespace rigor::obs
