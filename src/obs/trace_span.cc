#include "obs/trace_span.hh"

#include <fstream>
#include <stdexcept>

#include "obs/json.hh"

namespace rigor::obs
{

namespace
{

TraceWriter::ClockFn
steadyClockSinceNow()
{
    const auto epoch = std::chrono::steady_clock::now();
    return [epoch]() -> std::uint64_t {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
    };
}

} // namespace

TraceWriter::TraceWriter() : _clock(steadyClockSinceNow()) {}

TraceWriter::TraceWriter(ClockFn clock) : _clock(std::move(clock))
{
    if (!_clock)
        throw std::invalid_argument("TraceWriter: null clock");
}

void
TraceWriter::addCompleteEvent(std::string name, std::string category,
                              std::uint64_t start_us,
                              std::uint64_t duration_us,
                              std::uint32_t tid, Args args)
{
    Event event;
    event.phase = 'X';
    event.name = std::move(name);
    event.category = std::move(category);
    event.ts = start_us;
    event.duration = duration_us;
    event.tid = tid;
    event.args = std::move(args);
    const std::scoped_lock lock(_mutex);
    _events.push_back(std::move(event));
}

void
TraceWriter::addCounterEvent(std::string name, std::uint64_t ts_us,
                             double value)
{
    Event event;
    event.phase = 'C';
    event.name = std::move(name);
    event.category = "counter";
    event.ts = ts_us;
    event.value = value;
    const std::scoped_lock lock(_mutex);
    _events.push_back(std::move(event));
}

std::size_t
TraceWriter::eventCount() const
{
    const std::scoped_lock lock(_mutex);
    return _events.size();
}

std::string
TraceWriter::toJson() const
{
    const std::scoped_lock lock(_mutex);
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : _events) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, event.name);
        out += ",\"cat\":";
        appendJsonString(out, event.category);
        out += ",\"ph\":\"";
        out += event.phase;
        out += "\",\"pid\":1,\"tid\":";
        out += std::to_string(event.tid);
        out += ",\"ts\":";
        out += std::to_string(event.ts);
        if (event.phase == 'X') {
            out += ",\"dur\":";
            out += std::to_string(event.duration);
        }
        out += ",\"args\":{";
        if (event.phase == 'C') {
            out += "\"value\":";
            out += jsonNumber(event.value);
        } else {
            bool first_arg = true;
            for (const auto &[key, value] : event.args) {
                if (!first_arg)
                    out += ',';
                first_arg = false;
                appendJsonString(out, key);
                out += ':';
                appendJsonString(out, value);
            }
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

void
TraceWriter::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("TraceWriter: cannot open '" + path +
                                 "' for writing");
    out << toJson() << '\n';
    if (!out)
        throw std::runtime_error("TraceWriter: write to '" + path +
                                 "' failed");
}

TraceSpan::TraceSpan(TraceWriter *writer, std::string name,
                     std::string category, std::uint32_t tid)
    : _writer(writer), _name(std::move(name)),
      _category(std::move(category)), _tid(tid)
{
    if (_writer)
        _start = _writer->nowMicros();
}

TraceSpan::~TraceSpan()
{
    close();
}

void
TraceSpan::arg(std::string key, std::string value)
{
    if (_writer)
        _args.emplace_back(std::move(key), std::move(value));
}

void
TraceSpan::close()
{
    if (!_writer || _closed)
        return;
    _closed = true;
    const std::uint64_t end = _writer->nowMicros();
    _writer->addCompleteEvent(std::move(_name), std::move(_category),
                              _start, end - _start, _tid,
                              std::move(_args));
}

} // namespace rigor::obs
