/**
 * @file
 * Thread-safe metrics registry: counters, gauges, histograms.
 *
 * The execution engine's workers record events (runs completed, cache
 * hits, per-run wall time) on the simulation fast path, so the record
 * operations must be cheap and lock-free: every metric instrument is
 * a fixed set of std::atomic cells, and the registry mutex is taken
 * only to *create* an instrument (or to export). Callers resolve an
 * instrument pointer once (counter()/gauge()/histogram()) and then
 * hammer it from any number of threads; relaxed atomics are exact for
 * counting (fetch_add never loses an increment) — the concurrency
 * test proves the totals match the engine's own progress counters
 * under the full worker pool.
 *
 * Export is a flat JSON document (toJson()/writeTo()) so a campaign
 * can drop a machine-readable metrics snapshot next to its trace and
 * manifest.
 */

#ifndef RIGOR_OBS_METRICS_HH
#define RIGOR_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace rigor::obs
{

/** Monotonic event count (lock-free add). */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-written level (lock-free set; e.g. worker busy fraction). */
class Gauge
{
  public:
    void set(double value)
    {
        _value.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _value{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
 * one implicit overflow bucket counts the rest. Count and sum are
 * tracked exactly (the sum with an atomic compare-exchange loop — the
 * observe path is still lock-free).
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> upper_bounds);

    void observe(double value);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    double sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

    double mean() const
    {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

    const std::vector<double> &bounds() const { return _bounds; }

    /** Per-bucket counts; the final entry is the overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

  private:
    std::vector<double> _bounds;
    std::vector<std::atomic<std::uint64_t>> _buckets;
    std::atomic<std::uint64_t> _count{0};
    std::atomic<double> _sum{0.0};
};

/**
 * Named instrument registry. Instrument creation is mutex-protected
 * and idempotent (same name -> same instance, so independent layers
 * can share one series); the returned references stay valid for the
 * registry's lifetime. Recording through an instrument never takes
 * the registry lock.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Histogram with the given bucket upper bounds; on re-lookup of
     * an existing name the bounds argument is ignored.
     */
    Histogram &histogram(const std::string &name,
                         std::span<const double> upper_bounds);

    /**
     * Flat JSON export:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count":n,"sum":x,"mean":x,"bounds":[...],"buckets":[...]}}}
     */
    std::string toJson() const;

    /** Write toJson() to @p path; throws std::runtime_error on I/O
     *  failure. */
    void writeTo(const std::string &path) const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

} // namespace rigor::obs

#endif // RIGOR_OBS_METRICS_HH
