/**
 * @file
 * Minimal JSON rendering helpers shared by the observability sinks.
 *
 * The metrics exporter, the Chrome trace writer, and the campaign
 * manifest all emit JSON without depending on a JSON library: each
 * record is a flat object built from strings, integers, and doubles.
 * These helpers centralize the two parts that are easy to get subtly
 * wrong — string escaping and round-trippable double rendering — plus
 * the FNV-1a digest used for design/rank-table identity lines.
 */

#ifndef RIGOR_OBS_JSON_HH
#define RIGOR_OBS_JSON_HH

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace rigor::obs
{

/** Append @p text to @p out as a quoted, escaped JSON string. */
inline void
appendJsonString(std::string &out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Shortest round-trip rendering of @p value (mirrors the CSV
 * exporter). NaN/Inf are not valid JSON numbers; they render as null.
 */
inline std::string
jsonNumber(double value)
{
    if (value != value || value == __builtin_inf() ||
        value == -__builtin_inf())
        return "null";
    char buffer[64];
    const std::to_chars_result res =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    return std::string(buffer, res.ptr);
}

/** 64-bit FNV-1a digest (stable content identity for manifests). */
inline std::uint64_t
fnv1a(std::string_view text, std::uint64_t seed = 14695981039346656037ull)
{
    std::uint64_t hash = seed;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Fixed-width lowercase-hex rendering of a 64-bit digest. */
inline std::string
digestHex(std::uint64_t digest)
{
    static const char hex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[digest & 0xf];
        digest >>= 4;
    }
    return out;
}

} // namespace rigor::obs

#endif // RIGOR_OBS_JSON_HH
