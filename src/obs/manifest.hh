/**
 * @file
 * Structured JSONL campaign manifest.
 *
 * A rank table alone says nothing about how it was produced; the
 * manifest is the campaign's machine-readable provenance record. One
 * JSON object per line, in campaign order:
 *
 *  - {"type":"campaign", ...}  design identity: experiment name,
 *    factor/row counts, foldover, design digest, workloads, run
 *    lengths — everything needed to tell two campaigns apart.
 *  - {"type":"cell", ...}      one line per (benchmark, design row)
 *    run: the run-cache key (config hash first), where the response
 *    came from (simulated | cache | journal), attempts, wall time,
 *    and the response itself.
 *  - {"type":"lease", ...}     one line per distributed-campaign
 *    lease event: worker joins and losses, heartbeat lapses, lease
 *    reclaims (with requeue counts), and rejected late results — the
 *    provenance behind every cell that migrated between workers.
 *  - {"type":"phase", ...}     coarse per-phase wall time.
 *  - {"type":"summary", ...}   terminal accounting: run totals,
 *    cache/journal hits, retries, failures, dropped cells and
 *    benchmarks, and the final rank-table digest.
 *  - {"type":"stability", ...} rank-stability provenance of a
 *    replicated campaign: replicate count, bootstrap schedule,
 *    top-factor rank CIs, the worst top-K flip probability, and a
 *    digest of the full stability report.
 *
 * Appends are mutex-serialized (cells arrive from every worker); each
 * record is rendered outside any lock the simulation fast path takes.
 */

#ifndef RIGOR_OBS_MANIFEST_HH
#define RIGOR_OBS_MANIFEST_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sample/sampling.hh"

namespace rigor::obs
{

/** Design identity of one campaign (the "campaign" record). */
struct CampaignInfo
{
    /** e.g. "pb_screen", "workflow_factorial", "enhancement_base". */
    std::string experiment;
    std::size_t factors = 0;
    std::size_t rows = 0;
    bool foldover = false;
    /** FNV-1a digest of the design matrix contents (hex). */
    std::string designDigest;
    std::vector<std::string> workloads;
    std::uint64_t instructionsPerRun = 0;
    std::uint64_t warmupInstructions = 0;
    /** Sampled-simulation schedule; rendered only when enabled. */
    sample::SamplingOptions sampling;
};

/** One completed or quarantined (benchmark, row) response cell. */
struct CellRecord
{
    std::string benchmark;
    std::size_t row = 0;
    /** Run-cache key: config hash | instructions | warmup | workload
     *  | hook id. Empty for uncacheable runs. */
    std::string runKey;
    /** "simulated" | "cache" | "journal" | "failed". */
    std::string source;
    unsigned attempts = 0;
    double wallSeconds = 0.0;
    /** Measured cycles; NaN renders as null for quarantined cells. */
    double response = 0.0;
    /** True when this cell was freshly simulated under sampling; the
     *  three fields below are rendered only then. */
    bool sampled = false;
    std::uint64_t sampleUnits = 0;
    double sampleRelativeError = 0.0;
    double sampleCiHalfWidth = 0.0;
    /** Worker that served the cell in a distributed campaign;
     *  rendered only when non-empty (in-process runs, cache hits, and
     *  journal replays carry no host). */
    std::string host;
};

/** One lease-lifecycle event of a distributed campaign (the "lease"
 *  records): worker joins/losses, lapses, reclaims, late results,
 *  session parks/resumes/expiries, auth rejections, and drains — the
 *  audit trail behind every migrated cell. */
struct LeaseEventRecord
{
    /** "worker-joined" | "worker-lost" | "worker-lapsed" |
     *  "lease-reclaimed" | "late-result" | "session-parked" |
     *  "session-resumed" | "session-expired" | "session-rejected" |
     *  "auth-rejected" | "worker-draining". */
    std::string kind;
    /** Worker the event concerns. */
    std::string worker;
    /** Durable session id of the worker, when known — ties a resumed
     *  connection back to the one that parked. */
    std::string session;
    /** Lease id, when the event concerns one (0 otherwise). */
    std::uint64_t leaseId = 0;
    /** Cell label under lease, when known. */
    std::string label;
    /** Human-readable cause ("heartbeat silence for 12000 ms", ...).*/
    std::string detail;
    /** Times the affected cell has been requeued so far. */
    unsigned requeues = 0;
};

/** Terminal accounting of one campaign (the "summary" record). */
struct SummaryRecord
{
    std::uint64_t runsTotal = 0;
    std::uint64_t runsCompleted = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t journalHits = 0;
    std::uint64_t retries = 0;
    std::uint64_t failedJobs = 0;
    std::uint64_t simulatedInstructions = 0;
    double wallSeconds = 0.0;
    std::vector<std::string> droppedBenchmarks;
    /** FNV-1a digest of the final rank table (hex); empty when the
     *  campaign produced no rank table (e.g. the factorial phase). */
    std::string rankTableDigest;
};

/** One top-K factor's rank interval in the stability record. */
struct StabilityFactor
{
    std::string name;
    /** Reported aggregate rank (1 = most significant). */
    unsigned rank = 0;
    double rankLower = 0.0;
    double rankUpper = 0.0;
};

/** Rank-stability provenance of one replicated campaign. */
struct StabilityRecord
{
    unsigned replicates = 0;
    std::uint64_t bootstrapIterations = 0;
    std::uint64_t bootstrapSeed = 0;
    double confidence = 0.0;
    bool sampled = false;
    bool samplingCiComposed = false;
    /** Top-K factors in reported rank order. */
    std::vector<StabilityFactor> factors;
    /** Worst pairwise flip probability over the reported top-K. */
    double maxFlipProbability = 0.0;
    /** FNV-1a digest (hex) of the full --stability-out JSON. */
    std::string reportDigest;
};

/** Thread-safe JSONL accumulator. */
class CampaignManifest
{
  public:
    void beginCampaign(const CampaignInfo &info);
    void addCell(const CellRecord &cell);
    void addLeaseEvent(const LeaseEventRecord &event);
    void addPhase(const std::string &name, double wall_seconds);
    void addSummary(const SummaryRecord &summary);
    void addStability(const StabilityRecord &stability);

    std::size_t recordCount() const;

    /** All records, one JSON object per line. */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path; throws std::runtime_error on I/O
     *  failure. */
    void writeTo(const std::string &path) const;

  private:
    void append(std::string line);

    mutable std::mutex _mutex;
    std::vector<std::string> _lines;
};

} // namespace rigor::obs

#endif // RIGOR_OBS_MANIFEST_HH
