/**
 * @file
 * BENCH_*.json perf-trajectory reporter.
 *
 * Every PR that touches a hot path needs a baseline to beat; the
 * convention is one BENCH_<pr>.json at the repo root per PR, holding
 * the wall time and throughput of a canonical reduced campaign. This
 * writer renders that record from the engine's progress counters so
 * the campaign CLI (--bench-out) and the table harnesses emit
 * identical schemas.
 */

#ifndef RIGOR_OBS_BENCH_REPORT_HH
#define RIGOR_OBS_BENCH_REPORT_HH

#include <cstdint>
#include <string>

namespace rigor::obs
{

/** One benchmark trajectory point. */
struct BenchReport
{
    /** PR number the point belongs to (file name suffix). */
    int pr = 4;
    /** Scenario name, e.g. "pb_screen". */
    std::string name;
    double wallSeconds = 0.0;
    std::uint64_t runsTotal = 0;
    std::uint64_t runsCompleted = 0;
    double runsPerSecond = 0.0;
    std::uint64_t simulatedInstructions = 0;
    /** Simulated instructions per wall second, in millions. */
    double mips = 0.0;
    unsigned threads = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t journalHits = 0;
    /** Sampled-simulation comparison block; the five fields below
     *  are rendered only when this is true. */
    bool sampled = false;
    /** Detailed-instruction throughput of the full-run baseline. */
    double fullMips = 0.0;
    /** Detailed-instruction throughput of the sampled campaign. */
    double sampledMips = 0.0;
    /** Full detailed instructions / sampled detailed instructions
     *  (the sampling speed-up in simulated work). */
    double detailedInstructionRatio = 0.0;
    /** Mean relative CPI CI half-width across sampled runs. */
    double sampleRelError = 0.0;
    /** Mean measured units per sampled run. */
    double sampleUnits = 0.0;
};

/** Render @p report as a single JSON object. */
std::string toJson(const BenchReport &report);

/** Write the report to @p path; throws std::runtime_error on I/O
 *  failure. */
void writeBenchReport(const std::string &path,
                      const BenchReport &report);

} // namespace rigor::obs

#endif // RIGOR_OBS_BENCH_REPORT_HH
