#include "obs/metrics.hh"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json.hh"

namespace rigor::obs
{

Histogram::Histogram(std::span<const double> upper_bounds)
    : _bounds(upper_bounds.begin(), upper_bounds.end()),
      _buckets(_bounds.size() + 1)
{
    if (!std::is_sorted(_bounds.begin(), _bounds.end()))
        throw std::invalid_argument(
            "Histogram: bucket bounds must be sorted ascending");
}

void
Histogram::observe(double value)
{
    const auto it =
        std::lower_bound(_bounds.begin(), _bounds.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - _bounds.begin());
    _buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    double seen = _sum.load(std::memory_order_relaxed);
    while (!_sum.compare_exchange_weak(seen, seen + value,
                                       std::memory_order_relaxed))
        ;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(_buckets.size());
    for (const std::atomic<std::uint64_t> &b : _buckets)
        counts.push_back(b.load(std::memory_order_relaxed));
    return counts;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    const std::scoped_lock lock(_mutex);
    std::unique_ptr<Counter> &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    const std::scoped_lock lock(_mutex);
    std::unique_ptr<Gauge> &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::span<const double> upper_bounds)
{
    const std::scoped_lock lock(_mutex);
    std::unique_ptr<Histogram> &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(upper_bounds);
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    const std::scoped_lock lock(_mutex);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : _counters) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += std::to_string(counter->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, gauge] : _gauges) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += jsonNumber(gauge->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : _histograms) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ":{\"count\":";
        out += std::to_string(histogram->count());
        out += ",\"sum\":";
        out += jsonNumber(histogram->sum());
        out += ",\"mean\":";
        out += jsonNumber(histogram->mean());
        out += ",\"bounds\":[";
        const std::vector<double> &bounds = histogram->bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            if (i != 0)
                out += ',';
            out += jsonNumber(bounds[i]);
        }
        out += "],\"buckets\":[";
        const std::vector<std::uint64_t> counts =
            histogram->bucketCounts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i != 0)
                out += ',';
            out += std::to_string(counts[i]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

void
MetricsRegistry::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error(
            "MetricsRegistry: cannot open '" + path + "' for writing");
    out << toJson() << '\n';
    if (!out)
        throw std::runtime_error("MetricsRegistry: write to '" + path +
                                 "' failed");
}

} // namespace rigor::obs
