/**
 * @file
 * Chrome trace-event emission: phase spans for campaign timelines.
 *
 * A campaign is phases (preflight, screen, rank, aggregate) above a
 * pool of workers each grinding through (benchmark, design row)
 * simulations. The classic visualization for that shape is the Chrome
 * trace-event timeline: TraceWriter accumulates "complete" events
 * (ph:"X") with microsecond start/duration and a per-worker tid, and
 * serializes the standard {"traceEvents":[...]} JSON document that
 * chrome://tracing and Perfetto (ui.perfetto.dev) load directly.
 *
 * TraceSpan is the RAII recorder: construct at phase entry, annotate
 * with arg() while inside, and destruction stamps the complete event.
 * A null writer makes every operation a no-op, so instrumented code
 * never branches on "is tracing enabled" itself.
 *
 * The clock is injectable (microsecond ticks relative to the writer's
 * birth) so golden-file tests can pin timestamps.
 */

#ifndef RIGOR_OBS_TRACE_SPAN_HH
#define RIGOR_OBS_TRACE_SPAN_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rigor::obs
{

/** Thread-safe accumulator of Chrome trace events. */
class TraceWriter
{
  public:
    /** Microsecond tick source (monotonic). */
    using ClockFn = std::function<std::uint64_t()>;

    /** Events are timestamped relative to construction. */
    TraceWriter();
    /** Injectable clock for deterministic tests. */
    explicit TraceWriter(ClockFn clock);

    /** Current tick of the writer's clock (µs). */
    std::uint64_t nowMicros() const { return _clock(); }

    /** String args attached to one event ("args" object). */
    using Args = std::vector<std::pair<std::string, std::string>>;

    /**
     * Record one complete event (ph:"X").
     *
     * @param tid trace-thread lane: 0 = the driver, 1+N = worker N
     */
    void addCompleteEvent(std::string name, std::string category,
                          std::uint64_t start_us,
                          std::uint64_t duration_us, std::uint32_t tid,
                          Args args = {});

    /** Record one counter event (ph:"C") — a stepped series. */
    void addCounterEvent(std::string name, std::uint64_t ts_us,
                         double value);

    std::size_t eventCount() const;

    /** The full {"traceEvents":[...]} JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws std::runtime_error on I/O
     *  failure. */
    void writeTo(const std::string &path) const;

  private:
    struct Event
    {
        char phase; // 'X' or 'C'
        std::string name;
        std::string category;
        std::uint64_t ts = 0;
        std::uint64_t duration = 0; // 'X' only
        std::uint32_t tid = 0;
        double value = 0.0; // 'C' only
        Args args;
    };

    ClockFn _clock;
    mutable std::mutex _mutex;
    std::vector<Event> _events;
};

/**
 * RAII phase span: records a complete event covering its lifetime.
 * Null writer = no-op. Not thread-safe (one span per scope).
 */
class TraceSpan
{
  public:
    TraceSpan(TraceWriter *writer, std::string name,
              std::string category = "phase", std::uint32_t tid = 0);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a key/value to the event recorded at close. */
    void arg(std::string key, std::string value);

    /** Record the event now instead of at destruction. */
    void close();

  private:
    TraceWriter *_writer;
    std::string _name;
    std::string _category;
    std::uint32_t _tid;
    std::uint64_t _start = 0;
    TraceWriter::Args _args;
    bool _closed = false;
};

} // namespace rigor::obs

#endif // RIGOR_OBS_TRACE_SPAN_HH
