/**
 * @file
 * Memoization of simulation runs.
 *
 * A simulation of this repository is a pure function of (workload,
 * processor configuration, measured instructions, warm-up
 * instructions, enhancement hook): the synthetic trace generator is
 * seeded from the workload name alone and the timing core is
 * deterministic. RunCache exploits that purity to make repeated
 * configurations free — the PB screen and the workflow's factorial
 * overlap, and the enhancement analysis re-runs the base experiment
 * verbatim.
 *
 * Hooked runs participate only when the caller supplies a stable hook
 * identity string (e.g. "precompute-128/gzip"); a hook factory with
 * no identity is assumed impure and bypasses the cache.
 */

#ifndef RIGOR_EXEC_RUN_CACHE_HH
#define RIGOR_EXEC_RUN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/config.hh"

namespace rigor::exec
{

/** Full identity of one simulation run. */
struct RunKey
{
    /** Workload name — the trace generator's seed derives from it. */
    std::string workload;
    sim::ProcessorConfig config;
    std::uint64_t instructions = 0;
    std::uint64_t warmupInstructions = 0;
    /** Identity of the enhancement hook; empty = no hook. */
    std::string hookId;
    /** Sampling-schedule identity (SamplingOptions::id()); empty =
     *  full run. Keeps sampled and full responses from ever sharing
     *  a cache or journal entry. */
    std::string samplingId;

    bool operator==(const RunKey &) const = default;

    std::size_t hash() const;

    /**
     * Stable composed identity: "confighash|instructions|warmup|
     * workload|hookid" with the configuration hash in hex, plus a
     * "|samplingid" suffix for sampled runs. This is the journal's
     * on-disk record key and the manifest's per-cell `key` field, so
     * a replayed run can be traced back to the exact configuration
     * that produced it.
     */
    std::string toString() const;
};

/** Thread-safe memo table from RunKey to measured cycles. */
class RunCache
{
  public:
    /** Cached response, or nullopt on miss. Counts hit/miss stats. */
    std::optional<double> lookup(const RunKey &key);

    /** Record one run's response (first writer wins). */
    void store(const RunKey &key, double response);

    std::size_t size() const;
    std::uint64_t hits() const
    {
        return _hits.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const
    {
        return _misses.load(std::memory_order_relaxed);
    }

    void clear();

  private:
    struct KeyHash
    {
        std::size_t operator()(const RunKey &key) const
        {
            return key.hash();
        }
    };

    mutable std::mutex _mutex;
    std::unordered_map<RunKey, double, KeyHash> _entries;
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_RUN_CACHE_HH
