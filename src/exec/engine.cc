#include "exec/engine.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exec/journal.hh"
#include "exec/sim_job_queue.hh"
#include "trace/generator.hh"

namespace rigor::exec
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

/**
 * The cooperative watchdog: polls the attempt deadline between
 * instructions (every kPollInterval), so a wedged simulation throws
 * DeadlineExceeded within a few thousand instructions of the budget
 * expiring instead of hanging the worker forever.
 */
class DeadlineGuardedSource : public trace::TraceSource
{
  public:
    DeadlineGuardedSource(trace::TraceSource &inner,
                          const AttemptContext &ctx)
        : _inner(inner), _ctx(ctx)
    {
    }

    bool
    next(trace::Instruction &out) override
    {
        if ((++_count & (kPollInterval - 1)) == 0)
            _ctx.checkDeadline();
        return _inner.next(out);
    }

    void
    reset() override
    {
        _inner.reset();
        _count = 0;
    }

    std::uint64_t length() const override { return _inner.length(); }

  private:
    static constexpr std::uint64_t kPollInterval = 4096;

    trace::TraceSource &_inner;
    const AttemptContext &_ctx;
    std::uint64_t _count = 0;
};

} // namespace

SimulationEngine::SimulationEngine(const EngineOptions &options)
    : _threads(resolveThreads(options.threads)),
      _cacheEnabled(options.cacheEnabled),
      _simulate(options.simulate
                    ? options.simulate
                    : [](const SimJob &job, const AttemptContext &ctx) {
                          return simulateJob(job, ctx);
                      })
{
}

double
SimulationEngine::simulateJob(const SimJob &job)
{
    std::unique_ptr<sim::ExecutionHook> hook;
    if (job.makeHook)
        hook = job.makeHook();
    trace::SyntheticTraceGenerator gen(
        *job.workload, job.instructions + job.warmupInstructions);
    sim::SuperscalarCore core(job.config, hook.get());
    const sim::CoreStats stats =
        core.run(gen, job.warmupInstructions);
    return static_cast<double>(stats.measuredCycles());
}

double
SimulationEngine::simulateJob(const SimJob &job,
                              const AttemptContext &ctx)
{
    if (!ctx.hasDeadline())
        return simulateJob(job);
    std::unique_ptr<sim::ExecutionHook> hook;
    if (job.makeHook)
        hook = job.makeHook();
    trace::SyntheticTraceGenerator gen(
        *job.workload, job.instructions + job.warmupInstructions);
    DeadlineGuardedSource guarded(gen, ctx);
    sim::SuperscalarCore core(job.config, hook.get());
    const sim::CoreStats stats =
        core.run(guarded, job.warmupInstructions);
    return static_cast<double>(stats.measuredCycles());
}

SimulationEngine::RunOutcome
SimulationEngine::runOne(const SimJob &job, std::size_t index,
                         const FaultPolicy &policy)
{
    const bool use_cache = _cacheEnabled && job.cacheable();
    const bool journaled = _journal != nullptr && job.cacheable();
    RunKey key;
    if (use_cache || journaled) {
        key.workload = job.workload->name;
        key.config = job.config;
        key.instructions = job.instructions;
        key.warmupInstructions = job.warmupInstructions;
        key.hookId = job.hookId;
    }

    RunOutcome outcome;
    if (use_cache) {
        if (const std::optional<double> cached = _cache.lookup(key)) {
            _progress.addCacheHit();
            _progress.addCompleted();
            outcome.ok = true;
            outcome.response = *cached;
            return outcome;
        }
    }
    if (journaled) {
        if (const std::optional<double> replayed =
                _journal->lookup(key)) {
            if (use_cache)
                _cache.store(key, *replayed);
            _progress.addJournalHit();
            _progress.addCompleted();
            outcome.ok = true;
            outcome.response = *replayed;
            return outcome;
        }
    }

    const auto job_start = std::chrono::steady_clock::now();
    JobFailure &failure = outcome.failure;
    failure.jobIndex = index;
    failure.label = job.label;

    const unsigned max_attempts = policy.attempts();
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        AttemptContext ctx;
        ctx.jobIndex = index;
        ctx.attempt = attempt;
        ctx.deadlineBudget = policy.attemptDeadline;
        if (ctx.hasDeadline())
            ctx.deadline = std::chrono::steady_clock::now() +
                           policy.attemptDeadline;

        bool retryable = false;
        try {
            const double response = _simulate(job, ctx);
            if (journaled)
                _journal->append(key, response);
            if (use_cache)
                _cache.store(key, response);
            _progress.addSimulatedInstructions(
                job.instructions + job.warmupInstructions);
            _progress.addCompleted();
            outcome.ok = true;
            outcome.response = response;
            return outcome;
        } catch (const BatchAbort &) {
            throw; // infrastructure failure: cancel the whole batch
        } catch (const TransientFault &e) {
            failure.kind = FailureKind::Transient;
            failure.message = e.what();
            retryable = true;
        } catch (const DeadlineExceeded &e) {
            failure.kind = FailureKind::Timeout;
            failure.message = e.what();
            retryable = true;
        } catch (const std::exception &e) {
            // A deterministic simulator rethrows the same error on
            // every retry; don't burn attempts on it.
            failure.kind = FailureKind::Permanent;
            failure.message = e.what();
        }
        failure.attempts = attempt;
        if (!retryable || attempt == max_attempts)
            break;
        _progress.addRetry();
        const std::chrono::milliseconds backoff =
            policy.backoffFor(attempt);
        if (backoff.count() > 0)
            std::this_thread::sleep_for(backoff);
    }

    failure.elapsedSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - job_start)
            .count();
    _progress.addFailed();
    return outcome;
}

std::vector<double>
SimulationEngine::run(std::span<const SimJob> jobs)
{
    return std::move(run(jobs, FaultPolicy{}).responses);
}

BatchResult
SimulationEngine::run(std::span<const SimJob> jobs,
                      const FaultPolicy &policy)
{
    if (_running.exchange(true))
        throw std::logic_error(
            "SimulationEngine::run: a batch is already in progress "
            "(the engine is not reentrant; use one engine per "
            "concurrent batch)");
    struct RunningGuard
    {
        std::atomic<bool> &flag;
        ~RunningGuard() { flag.store(false); }
    } guard{_running};

    const auto start = std::chrono::steady_clock::now();
    _progress.addSubmitted(jobs.size());

    BatchResult result;
    result.responses.assign(
        jobs.size(), std::numeric_limits<double>::quiet_NaN());

    std::atomic<bool> cancelled{false};
    std::exception_ptr abort_error;
    std::vector<JobFailure> failures;
    std::mutex failure_mutex;

    const unsigned num_threads = static_cast<unsigned>(
        std::min<std::size_t>(_threads, jobs.size()));

    SimJobQueue queue(jobs.size(), std::max(1u, num_threads));
    const auto worker = [&](unsigned id) {
        std::size_t index;
        while (queue.pop(id, index)) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            RunOutcome outcome;
            try {
                outcome = runOne(jobs[index], index, policy);
            } catch (const BatchAbort &) {
                const std::scoped_lock lock(failure_mutex);
                if (!abort_error)
                    abort_error = std::current_exception();
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            if (outcome.ok) {
                // Once the batch is cancelled no further result slot
                // is written; the batch's responses are abandoned.
                if (!cancelled.load(std::memory_order_relaxed))
                    result.responses[index] = outcome.response;
                continue;
            }
            {
                const std::scoped_lock lock(failure_mutex);
                failures.push_back(std::move(outcome.failure));
            }
            if (!policy.collectFailures) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    if (num_threads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }

    const auto elapsed = std::chrono::steady_clock::now() - start;
    _progress.addWallNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));

    if (abort_error)
        std::rethrow_exception(abort_error);

    std::sort(failures.begin(), failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.jobIndex < b.jobIndex;
              });
    if (!policy.collectFailures && !failures.empty())
        throw std::runtime_error("SimulationEngine: " +
                                 failures.front().toString());
    result.failures = std::move(failures);
    return result;
}

} // namespace rigor::exec
