#include "exec/engine.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exec/sim_job_queue.hh"
#include "trace/generator.hh"

namespace rigor::exec
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

} // namespace

SimulationEngine::SimulationEngine(const EngineOptions &options)
    : _threads(resolveThreads(options.threads)),
      _cacheEnabled(options.cacheEnabled)
{
}

double
SimulationEngine::simulateJob(const SimJob &job)
{
    std::unique_ptr<sim::ExecutionHook> hook;
    if (job.makeHook)
        hook = job.makeHook();
    trace::SyntheticTraceGenerator gen(
        *job.workload, job.instructions + job.warmupInstructions);
    sim::SuperscalarCore core(job.config, hook.get());
    const sim::CoreStats stats =
        core.run(gen, job.warmupInstructions);
    return static_cast<double>(stats.measuredCycles());
}

double
SimulationEngine::runOne(const SimJob &job)
{
    const bool use_cache = _cacheEnabled && job.cacheable();
    RunKey key;
    if (use_cache) {
        key.workload = job.workload->name;
        key.config = job.config;
        key.instructions = job.instructions;
        key.warmupInstructions = job.warmupInstructions;
        key.hookId = job.hookId;
        if (const std::optional<double> cached = _cache.lookup(key)) {
            _progress.addCacheHit();
            _progress.addCompleted();
            return *cached;
        }
    }

    const double response = simulateJob(job);
    if (use_cache)
        _cache.store(key, response);
    _progress.addSimulatedInstructions(job.instructions +
                                       job.warmupInstructions);
    _progress.addCompleted();
    return response;
}

std::vector<double>
SimulationEngine::run(std::span<const SimJob> jobs)
{
    const auto start = std::chrono::steady_clock::now();
    _progress.addSubmitted(jobs.size());

    std::vector<double> responses(jobs.size(), 0.0);

    std::atomic<bool> failed{false};
    std::string failure_message;
    std::mutex failure_mutex;

    const unsigned num_threads = static_cast<unsigned>(
        std::min<std::size_t>(_threads, jobs.size()));

    SimJobQueue queue(jobs.size(), std::max(1u, num_threads));
    const auto worker = [&](unsigned id) {
        std::size_t index;
        while (queue.pop(id, index)) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const SimJob &job = jobs[index];
            try {
                responses[index] = runOne(job);
            } catch (const std::exception &e) {
                const std::scoped_lock lock(failure_mutex);
                if (!failed.exchange(true))
                    failure_message = "job '" + job.label +
                                      "' failed: " + e.what();
            }
        }
    };

    if (num_threads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }

    const auto elapsed = std::chrono::steady_clock::now() - start;
    _progress.addWallNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));

    if (failed.load())
        throw std::runtime_error("SimulationEngine: " +
                                 failure_message);
    return responses;
}

} // namespace rigor::exec
