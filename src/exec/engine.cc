#include "exec/engine.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "exec/journal.hh"
#include "exec/sim_job_queue.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "trace/generator.hh"

namespace rigor::exec
{

std::string
toString(RunSource source)
{
    switch (source) {
    case RunSource::Simulated:
        return "simulated";
    case RunSource::CacheHit:
        return "cache";
    case RunSource::JournalReplay:
        return "journal";
    }
    return "unknown";
}

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

/**
 * The cooperative watchdog: polls the attempt deadline between
 * instructions (every kPollInterval), so a wedged simulation throws
 * DeadlineExceeded within a few thousand instructions of the budget
 * expiring instead of hanging the worker forever.
 */
class DeadlineGuardedSource : public trace::TraceSource
{
  public:
    DeadlineGuardedSource(trace::TraceSource &inner,
                          const AttemptContext &ctx)
        : _inner(inner), _ctx(ctx)
    {
    }

    bool
    next(trace::Instruction &out) override
    {
        if ((++_count & (kPollInterval - 1)) == 0)
            _ctx.checkDeadline();
        return _inner.next(out);
    }

    void
    reset() override
    {
        _inner.reset();
        _count = 0;
    }

    std::uint64_t length() const override { return _inner.length(); }

  private:
    static constexpr std::uint64_t kPollInterval = 4096;

    trace::TraceSource &_inner;
    const AttemptContext &_ctx;
    std::uint64_t _count = 0;
};

} // namespace

SimulationEngine::SimulationEngine(const EngineOptions &options)
    : _threads(resolveThreads(options.threads)),
      _cacheEnabled(options.cacheEnabled),
      _simulate(options.simulate
                    ? options.simulate
                    : [](const SimJob &job, const AttemptContext &ctx) {
                          return simulateJob(job, ctx);
                      })
{
}

void
SimulationEngine::setSimulate(SimulateFn simulate)
{
    if (_running.load())
        throw std::logic_error(
            "SimulationEngine::setSimulate: a batch is in progress");
    _simulate = simulate
                    ? std::move(simulate)
                    : [](const SimJob &job, const AttemptContext &ctx) {
                          return simulateJob(job, ctx);
                      };
}

void
SimulationEngine::setMetrics(obs::MetricsRegistry *metrics)
{
    _metrics = metrics;
    _instruments = Instruments{};
    if (metrics == nullptr)
        return;
    _instruments.completed = &metrics->counter("engine.runs.completed");
    _instruments.simulated = &metrics->counter("engine.runs.simulated");
    _instruments.cacheHits =
        &metrics->counter("engine.runs.cache_hits");
    _instruments.journalHits =
        &metrics->counter("engine.runs.journal_replays");
    _instruments.retries = &metrics->counter("engine.retries");
    _instruments.failed = &metrics->counter("engine.runs.failed");
    _instruments.batches = &metrics->counter("engine.batches");
    _instruments.steals = &metrics->counter("engine.queue.steals");
    static constexpr double kWallBounds[] = {1e-4, 1e-3, 1e-2, 0.1,
                                             1.0,  10.0, 60.0};
    _instruments.runWallSeconds =
        &metrics->histogram("engine.run.wall_seconds", kWallBounds);
    static constexpr double kMipsBounds[] = {1.0,   2.0,   5.0,
                                             10.0,  20.0,  50.0,
                                             100.0, 200.0, 500.0};
    _instruments.mips = &metrics->histogram("sim.run.mips", kMipsBounds);
    _instruments.sampledRuns =
        &metrics->counter("engine.runs.sampled");
    static constexpr double kUnitBounds[] = {5.0,   10.0,  20.0,
                                             50.0,  100.0, 200.0,
                                             500.0, 1000.0};
    _instruments.sampleUnits =
        &metrics->histogram("sample.units", kUnitBounds);
    static constexpr double kRelErrBounds[] = {0.001, 0.002, 0.005,
                                               0.01,  0.02,  0.05,
                                               0.1,   0.2};
    _instruments.sampleRelError =
        &metrics->histogram("sample.rel_error", kRelErrBounds);
    _instruments.busyFraction =
        &metrics->gauge("engine.workers.busy_fraction");
    _instruments.queueDepth =
        &metrics->gauge("engine.queue.initial_depth");
}

double
SimulationEngine::simulateJob(const SimJob &job)
{
    return simulateJob(job, AttemptContext{});
}

double
SimulationEngine::simulateJob(const SimJob &job,
                              const AttemptContext &ctx)
{
    std::unique_ptr<sim::ExecutionHook> hook;
    if (job.makeHook)
        hook = job.makeHook();
    trace::SyntheticTraceGenerator gen(
        *job.workload, job.instructions + job.warmupInstructions);
    sim::SuperscalarCore core(job.config, hook.get());

    trace::TraceSource *source = &gen;
    std::optional<DeadlineGuardedSource> guarded;
    if (ctx.hasDeadline()) {
        guarded.emplace(gen, ctx);
        source = &*guarded;
    }

    if (job.sampling.enabled) {
        // Sampled mode owns its own per-unit warm-up; the job-level
        // warm-up only pads the stream the schedule covers.
        const sample::SampleSummary summary =
            sample::runSampled(core, *source, job.sampling);
        if (ctx.sampleOut != nullptr)
            *ctx.sampleOut = summary;
        return summary.estimatedCycles;
    }

    const sim::CoreStats stats =
        core.run(*source, job.warmupInstructions);
    return static_cast<double>(stats.measuredCycles());
}

SimulationEngine::RunOutcome
SimulationEngine::runOne(const SimJob &job, std::size_t index,
                         const FaultPolicy &policy)
{
    const bool use_cache = _cacheEnabled && job.cacheable();
    const bool journaled = _journal != nullptr && job.cacheable();
    const bool keyed =
        (use_cache || journaled || _observer) && job.cacheable();
    RunKey key;
    if (keyed) {
        key.workload = job.workload->name;
        key.config = job.config;
        key.instructions = job.instructions;
        key.warmupInstructions = job.warmupInstructions;
        key.hookId = job.hookId;
        key.samplingId = job.sampling.id();
    }

    RunOutcome outcome;
    if (_observer && keyed)
        outcome.runKey = key.toString();
    if (use_cache) {
        if (const std::optional<double> cached = _cache.lookup(key)) {
            _progress.addCacheHit();
            _progress.addCompleted();
            if (_instruments.cacheHits) {
                _instruments.cacheHits->add();
                _instruments.completed->add();
            }
            outcome.ok = true;
            outcome.source = RunSource::CacheHit;
            outcome.response = *cached;
            return outcome;
        }
    }
    if (journaled) {
        if (const std::optional<double> replayed =
                _journal->lookup(key)) {
            if (use_cache)
                _cache.store(key, *replayed);
            _progress.addJournalHit();
            _progress.addCompleted();
            if (_instruments.journalHits) {
                _instruments.journalHits->add();
                _instruments.completed->add();
            }
            outcome.ok = true;
            outcome.source = RunSource::JournalReplay;
            outcome.response = *replayed;
            return outcome;
        }
    }

    const auto job_start = std::chrono::steady_clock::now();
    JobFailure &failure = outcome.failure;
    failure.jobIndex = index;
    failure.label = job.label;

    const unsigned max_attempts = policy.attempts();
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        AttemptContext ctx;
        ctx.jobIndex = index;
        ctx.attempt = attempt;
        ctx.deadlineBudget = policy.attemptDeadline;
        if (ctx.hasDeadline())
            ctx.deadline = std::chrono::steady_clock::now() +
                           policy.attemptDeadline;
        sample::SampleSummary sample_summary;
        ctx.sampleOut = &sample_summary;
        std::string serving_host;
        ctx.hostOut = &serving_host;

        bool retryable = false;
        try {
            const double response = _simulate(job, ctx);
            if (journaled)
                _journal->append(key, response);
            if (use_cache)
                _cache.store(key, response);
            // Progress tracks the *detailed* simulation work: a
            // sampled run only pays for its warm-up + measured units.
            _progress.addSimulatedInstructions(
                job.sampling.enabled
                    ? sample_summary.detailedInstructions
                    : job.instructions + job.warmupInstructions);
            _progress.addCompleted();
            outcome.ok = true;
            outcome.source = RunSource::Simulated;
            outcome.attempts = attempt;
            outcome.response = response;
            outcome.sampled = job.sampling.enabled;
            outcome.sample = sample_summary;
            outcome.host = std::move(serving_host);
            if (_instruments.simulated) {
                _instruments.simulated->add();
                _instruments.completed->add();
                const double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - job_start)
                        .count();
                _instruments.runWallSeconds->observe(wall);
                if (wall > 0.0)
                    _instruments.mips->observe(
                        static_cast<double>(job.instructions +
                                            job.warmupInstructions) /
                        wall / 1e6);
                if (job.sampling.enabled) {
                    _instruments.sampledRuns->add();
                    _instruments.sampleUnits->observe(
                        static_cast<double>(sample_summary.units));
                    _instruments.sampleRelError->observe(
                        sample_summary.relativeError);
                }
            }
            return outcome;
        } catch (const BatchAbort &) {
            throw; // infrastructure failure: cancel the whole batch
        } catch (const TransientFault &e) {
            failure.kind = FailureKind::Transient;
            failure.message = e.what();
            retryable = true;
        } catch (const DeadlineExceeded &e) {
            failure.kind = FailureKind::Timeout;
            failure.message = e.what();
            retryable = true;
        } catch (const ResourceExhausted &e) {
            // The same run would exhaust the same cap again.
            failure.kind = FailureKind::Resource;
            failure.message = e.what();
        } catch (const std::exception &e) {
            // A deterministic simulator rethrows the same error on
            // every retry; don't burn attempts on it.
            failure.kind = FailureKind::Permanent;
            failure.message = e.what();
        }
        failure.attempts = attempt;
        if (!retryable || attempt == max_attempts)
            break;
        _progress.addRetry();
        if (_instruments.retries)
            _instruments.retries->add();
        const std::chrono::milliseconds backoff =
            policy.backoffFor(attempt, index);
        if (backoff.count() > 0)
            std::this_thread::sleep_for(backoff);
    }

    failure.elapsedSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - job_start)
            .count();
    _progress.addFailed();
    if (_instruments.failed)
        _instruments.failed->add();
    outcome.attempts = failure.attempts;
    return outcome;
}

std::vector<double>
SimulationEngine::run(std::span<const SimJob> jobs)
{
    return std::move(run(jobs, FaultPolicy{}).responses);
}

BatchResult
SimulationEngine::run(std::span<const SimJob> jobs,
                      const FaultPolicy &policy)
{
    if (_running.exchange(true))
        throw std::logic_error(
            "SimulationEngine::run: a batch is already in progress "
            "(the engine is not reentrant; use one engine per "
            "concurrent batch)");
    struct RunningGuard
    {
        std::atomic<bool> &flag;
        ~RunningGuard() { flag.store(false); }
    } guard{_running};

    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t trace_start =
        _trace != nullptr ? _trace->nowMicros() : 0;
    _progress.addSubmitted(jobs.size());

    BatchResult result;
    result.responses.assign(
        jobs.size(), std::numeric_limits<double>::quiet_NaN());

    std::atomic<bool> cancelled{false};
    std::exception_ptr abort_error;
    std::vector<JobFailure> failures;
    std::mutex failure_mutex;

    const unsigned num_threads = static_cast<unsigned>(
        std::min<std::size_t>(_threads, jobs.size()));

    SimJobQueue queue(jobs.size(), std::max(1u, num_threads));
    /** Per-worker wall time spent inside runOne (busy fraction). */
    std::vector<double> busy_seconds(std::max(1u, num_threads), 0.0);
    const auto worker = [&](unsigned id) {
        std::size_t index;
        while (queue.pop(id, index)) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            const auto job_begin = std::chrono::steady_clock::now();
            const std::uint64_t span_begin =
                _trace != nullptr ? _trace->nowMicros() : 0;
            RunOutcome outcome;
            try {
                outcome = runOne(jobs[index], index, policy);
            } catch (const BatchAbort &) {
                const std::scoped_lock lock(failure_mutex);
                if (!abort_error)
                    abort_error = std::current_exception();
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            const double job_wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job_begin)
                    .count();
            busy_seconds[id] += job_wall;
            if (_trace != nullptr) {
                obs::TraceWriter::Args args;
                args.emplace_back("source", toString(outcome.source));
                args.emplace_back("attempts",
                                  std::to_string(outcome.attempts));
                _trace->addCompleteEvent(
                    jobs[index].label, "job", span_begin,
                    _trace->nowMicros() - span_begin, id + 1,
                    std::move(args));
            }
            if (_observer) {
                JobEvent event;
                event.jobIndex = index;
                event.job = &jobs[index];
                event.source = outcome.source;
                event.ok = outcome.ok;
                event.attempts = outcome.attempts;
                event.wallSeconds = job_wall;
                event.response =
                    outcome.ok
                        ? outcome.response
                        : std::numeric_limits<double>::quiet_NaN();
                event.runKey = outcome.runKey;
                event.sampled = outcome.ok && outcome.sampled;
                event.sample = outcome.sample;
                event.host = outcome.host;
                _observer(event);
            }
            if (outcome.ok) {
                // Once the batch is cancelled no further result slot
                // is written; the batch's responses are abandoned.
                if (!cancelled.load(std::memory_order_relaxed))
                    result.responses[index] = outcome.response;
                continue;
            }
            {
                const std::scoped_lock lock(failure_mutex);
                failures.push_back(std::move(outcome.failure));
            }
            if (!policy.collectFailures) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    if (num_threads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }

    const auto elapsed = std::chrono::steady_clock::now() - start;
    _progress.addWallNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));

    if (_instruments.batches) {
        _instruments.batches->add();
        _instruments.steals->add(queue.steals());
        _instruments.queueDepth->set(
            static_cast<double>(queue.initialDepth()));
        const double wall =
            std::chrono::duration<double>(elapsed).count();
        double busy_total = 0.0;
        for (const double b : busy_seconds)
            busy_total += b;
        if (wall > 0.0 && num_threads > 0)
            _instruments.busyFraction->set(
                busy_total / (wall * num_threads));
    }
    if (_trace != nullptr) {
        obs::TraceWriter::Args args;
        args.emplace_back("jobs", std::to_string(jobs.size()));
        args.emplace_back("workers",
                          std::to_string(std::max(1u, num_threads)));
        args.emplace_back("steals", std::to_string(queue.steals()));
        _trace->addCompleteEvent(
            "engine.batch", "engine", trace_start,
            _trace->nowMicros() - trace_start, 0, std::move(args));
    }

    if (abort_error)
        std::rethrow_exception(abort_error);

    std::sort(failures.begin(), failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.jobIndex < b.jobIndex;
              });
    if (!policy.collectFailures && !failures.empty())
        throw std::runtime_error("SimulationEngine: " +
                                 failures.front().toString());
    result.failures = std::move(failures);
    return result;
}

} // namespace rigor::exec
