/**
 * @file
 * Fault taxonomy and per-job fault policy of the execution engine.
 *
 * A reproduction campaign is thousands of long simulations; treating
 * the batch as fail-fast makes the first transient error (an I/O
 * hiccup in a hook, a wedged run) discard every completed cycle. The
 * engine instead classifies each attempt's outcome:
 *
 *  - TransientFault — worth retrying (bounded attempts, exponential
 *    backoff with optional seeded jitter);
 *  - DeadlineExceeded — the per-attempt watchdog clock expired; the
 *    attempt is treated like a transient fault (a hang may be load-
 *    induced) until the attempts are exhausted;
 *  - ResourceExhausted — the attempt ran out of a hard resource cap
 *    (sandbox memory limit, kernel OOM kill): permanent, since the
 *    same run would exhaust the same cap again;
 *  - any other std::exception — permanent: a deterministic simulator
 *    rethrows the same error on every retry, so none is made;
 *  - BatchAbort — infrastructure failure (journal I/O, simulated
 *    crash drills): the whole batch stops and the error propagates
 *    unclassified.
 *
 * Deadlines come in two strengths. The cooperative one lives here:
 * every attempt carries an AttemptContext whose checkDeadline()
 * throws once the clock runs out, and the engine's default simulate
 * function polls it from the trace source every few thousand
 * instructions — so a wedged *real* simulation surfaces as a
 * diagnosable timeout. Truly non-cooperative code (a tight loop that
 * never polls, a crash, a runaway allocation) is the job of the
 * process-isolated backend in exec/proc/: its monitor thread SIGKILLs
 * a sandbox worker past its hard deadline and the death is classified
 * back into this same taxonomy, so retries, quarantine, and journal
 * resume behave identically under either isolation mode.
 */

#ifndef RIGOR_EXEC_FAULT_POLICY_HH
#define RIGOR_EXEC_FAULT_POLICY_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rigor::sample
{
struct SampleSummary;
} // namespace rigor::sample

namespace rigor::exec
{

/** A retryable failure (injected or environmental). */
class TransientFault : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** A failure no retry can heal (bad config, deterministic bug). */
class PermanentFault : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** The per-attempt deadline expired (hung / wedged simulation). */
class DeadlineExceeded : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * The attempt exhausted a hard resource cap — a sandbox worker hit
 * its setrlimit memory limit (std::bad_alloc) or was SIGKILLed by the
 * kernel OOM killer. Deterministic for a given run, so never retried;
 * derives from PermanentFault but is classified with its own
 * FailureKind::Resource so quarantine records name the cause.
 */
class ResourceExhausted : public PermanentFault
{
    using PermanentFault::PermanentFault;
};

/**
 * Batch-fatal infrastructure failure: not a property of one job, so
 * it is never quarantined or retried — the engine cancels the batch
 * and rethrows it to the caller (e.g. a journal write error, or the
 * journal's simulated-crash drill).
 */
class BatchAbort : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** How one job's last attempt failed. */
enum class FailureKind
{
    /** Retries exhausted on transient faults. */
    Transient,
    /** Non-retryable error. */
    Permanent,
    /** The attempt deadline expired (hang converted to timeout). */
    Timeout,
    /** A hard resource cap was exhausted (memory limit, OOM kill). */
    Resource,
};

/** Display name ("transient" / "permanent" / "timeout" /
 *  "resource"). */
std::string toString(FailureKind kind);

/** Per-job fault-handling knobs of one engine batch. */
struct FaultPolicy
{
    /** Attempts per job (1 = no retries). 0 is treated as 1. */
    unsigned maxAttempts = 1;
    /**
     * Backoff before retry k (1-based count of completed attempts):
     * backoffBase * 2^(k-1), so 10ms -> 20ms -> 40ms. Zero disables.
     */
    std::chrono::milliseconds backoffBase{0};
    /**
     * Fraction of each backoff randomized away, in [0, 1]. A pool of
     * workers that all hit the same transient fault (a shared
     * filesystem hiccup, a saturated host) would otherwise retry in
     * lockstep and collide again; jitter de-correlates them. The
     * jitter is a pure function of (backoffSeed, stream, attempt) —
     * see backoffFor(k, stream) — so a jittered campaign is still
     * replayable bit for bit. Zero (the default) keeps the exact
     * exponential schedule.
     */
    double backoffJitter = 0.0;
    /** Seed of the deterministic jitter stream. */
    std::uint64_t backoffSeed = 0;
    /**
     * Watchdog deadline per attempt; an attempt running past it is
     * interrupted (cooperatively, see AttemptContext) and classified
     * as a timeout. Zero disables.
     */
    std::chrono::milliseconds attemptDeadline{0};
    /**
     * Collect-all-failures mode: instead of cancelling the batch at
     * the first permanently failed job, quarantine its result slot
     * (NaN) and report every failure in BatchResult::failures, so a
     * campaign driver can run a statistical-validity degradation
     * check over the completed cells.
     */
    bool collectFailures = false;

    /** Effective attempt cap (never 0). */
    unsigned attempts() const { return maxAttempts == 0 ? 1 : maxAttempts; }

    /** Backoff before the retry following completed attempt @p k
     *  (the exact exponential schedule, jitter ignored). */
    std::chrono::milliseconds backoffFor(unsigned k) const;

    /**
     * Jittered backoff for one retry stream (the engine passes the
     * job's batch index): the exponential base scaled into
     * [base * (1 - backoffJitter), base] by a deterministic hash of
     * (backoffSeed, stream, k). Identical inputs always produce the
     * identical delay, so seeded campaigns replay exactly; distinct
     * streams spread a simultaneous failure burst across the window.
     */
    std::chrono::milliseconds backoffFor(unsigned k,
                                         std::uint64_t stream) const;
};

/**
 * Identity and watchdog clock of one attempt, passed to the simulate
 * function. Long-running implementations should poll checkDeadline()
 * periodically; the engine's default simulate function does so from
 * the trace source.
 */
struct AttemptContext
{
    /** Index of the job within the batch. */
    std::size_t jobIndex = 0;
    /** 1-based attempt number. */
    unsigned attempt = 1;
    /** Configured deadline duration (for messages); zero = none. */
    std::chrono::milliseconds deadlineBudget{0};
    /** Absolute expiry; meaningful only when deadlineBudget > 0. */
    std::chrono::steady_clock::time_point deadline{};
    /**
     * Side channel for sampled simulation: when non-null, a
     * SimulateFn running a sampled job writes its SampleSummary here
     * (the primary return value stays the scalar response, so every
     * existing executor — fault injectors, sandbox dispatch, test
     * stubs — composes unchanged). Not owned.
     */
    sample::SampleSummary *sampleOut = nullptr;
    /**
     * Side channel for execution provenance: when non-null, an
     * executor that ships the attempt elsewhere (the remote
     * controller) writes the serving worker's name here on success,
     * and the manifest records which host ran each cell. Executors
     * that run in-process leave it untouched. Not owned.
     */
    std::string *hostOut = nullptr;

    bool hasDeadline() const { return deadlineBudget.count() > 0; }

    /** True once the watchdog clock has run out. */
    bool expired() const
    {
        return hasDeadline() &&
               std::chrono::steady_clock::now() >= deadline;
    }

    /** Throw DeadlineExceeded if the watchdog clock has run out. */
    void checkDeadline() const;
};

/** One job's terminal failure record. */
struct JobFailure
{
    std::size_t jobIndex = 0;
    /** The job's label, e.g. "gzip, design row 17". */
    std::string label;
    FailureKind kind = FailureKind::Permanent;
    /** Attempts actually made (distinguishes retry exhaustion from a
     *  first-try failure). */
    unsigned attempts = 1;
    /** Wall time across every attempt, backoff included. */
    double elapsedSeconds = 0.0;
    /** The last attempt's error message. */
    std::string message;

    /** "job 'gzip, design row 17' failed (permanent) after 1 attempt
     *  in 0.004 s: ..." */
    std::string toString() const;
};

/** Everything one engine batch produced under a FaultPolicy. */
struct BatchResult
{
    /** Responses in job order; quarantined slots are NaN. */
    std::vector<double> responses;
    /** Failures in ascending job order (empty = complete batch). */
    std::vector<JobFailure> failures;

    bool complete() const { return failures.empty(); }
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_FAULT_POLICY_HH
