/**
 * @file
 * Crash-safe append-only journal of completed simulation runs.
 *
 * A campaign that dies halfway — OOM kill, power cut, ctrl-C — must
 * not lose its completed cycles: the paper's methodology needs
 * *complete* PB columns, so partial results are only useful if they
 * can be resumed exactly. ResultJournal persists one record per
 * completed run, keyed by the run's cache identity (workload, config
 * hash, run length, warm-up, hook id — the same RunKey the RunCache
 * uses), appended atomically and fsync'd per record. Reopening the
 * journal replays every intact record; a torn final record (the
 * write the crash interrupted) is detected and ignored, so a resumed
 * campaign re-simulates only the jobs the journal does not cover and
 * reproduces the uninterrupted result bit for bit (the engine's
 * responses are written by job index, independent of which jobs came
 * from disk).
 *
 * The journal binds to the build that wrote it: record identity uses
 * ProcessorConfig::hash(), which is stable across processes of one
 * toolchain but not a cross-version interchange format. That is the
 * right trade for crash recovery (same binary, restarted); exchange
 * formats are the CSV exporters' job.
 */

#ifndef RIGOR_EXEC_JOURNAL_HH
#define RIGOR_EXEC_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "exec/fault_policy.hh"
#include "exec/run_cache.hh"

namespace rigor::exec
{

/**
 * Thrown by the journal's crash drill (simulateCrashAfter): models a
 * process dying mid-append. Derives from BatchAbort so the engine
 * cancels the batch and propagates it instead of quarantining the
 * job that happened to be appending.
 */
class SimulatedCrash : public BatchAbort
{
    using BatchAbort::BatchAbort;
};

/**
 * fsync the directory containing @p path, so a just-created file's
 * directory entry itself is durable — fsync on the file alone makes
 * the *data* durable, but a crash before the directory's metadata
 * reaches disk can lose the name, and with it the whole journal.
 * No-op (returns false) when the directory cannot be opened; returns
 * true after a successful directory fsync.
 */
bool fsyncParentDirectory(const std::string &path);

/** Append-only, fsync-per-record result journal. */
class ResultJournal
{
  public:
    /**
     * Open @p path for appending, creating it (with a version
     * header) if absent, and replay every intact existing record.
     * Throws std::runtime_error when the file cannot be opened or
     * carries a foreign header.
     */
    explicit ResultJournal(std::string path);
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    const std::string &path() const { return _path; }

    /** Records replayed from disk when the journal was opened. */
    std::size_t loadedRecords() const { return _loadedRecords; }
    /** Torn/corrupt trailing records skipped while loading. */
    std::size_t tornRecords() const { return _tornRecords; }
    /** Records currently held (loaded + appended this process). */
    std::size_t size() const;

    /** Replayed response for a run, or nullopt when not journaled. */
    std::optional<double> lookup(const RunKey &key) const;

    /**
     * Persist one completed run: single write() of the full record,
     * then fsync, so a crash leaves at most one torn trailing line.
     * Duplicate keys are ignored (first record wins, matching the
     * RunCache). Throws BatchAbort on I/O failure and SimulatedCrash
     * when the crash drill fires.
     */
    void append(const RunKey &key, double response);

    /**
     * Crash drill: after @p appends more successful appends, every
     * further append writes a deliberately torn record prefix (no
     * terminating newline) and throws SimulatedCrash — the on-disk
     * state a real mid-write crash leaves behind. Tests use this to
     * prove kill-and-resume works end to end.
     */
    void simulateCrashAfter(std::size_t appends);

  private:
    /** Stable composed identity of one run (not std::hash based). */
    static std::string recordKey(const RunKey &key);

    void loadExisting(const std::string &text);

    std::string _path;
    int _fd = -1;
    mutable std::mutex _mutex;
    std::unordered_map<std::string, double> _records;
    std::size_t _loadedRecords = 0;
    std::size_t _tornRecords = 0;
    /** Crash drill: appends remaining before the simulated crash;
     *  SIZE_MAX = disabled, 0 = crashing on every append. */
    std::size_t _appendsUntilCrash;
    /** The drill already wrote its torn record prefix. */
    bool _crashFired = false;
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_JOURNAL_HH
