#include "exec/journal.hh"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace rigor::exec
{

namespace
{

constexpr const char *kHeader = "rigor-journal v1";

/** Shortest round-trip rendering (mirrors the CSV exporter). */
std::string
formatResponse(double value)
{
    char buffer[64];
    const std::to_chars_result res =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    return std::string(buffer, res.ptr);
}

bool
hasWhitespace(const std::string &s)
{
    return s.find_first_of(" \t\n\r") != std::string::npos;
}

} // namespace

bool
fsyncParentDirectory(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd =
        ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

std::string
ResultJournal::recordKey(const RunKey &key)
{
    return key.toString();
}

ResultJournal::ResultJournal(std::string path)
    : _path(std::move(path)),
      _appendsUntilCrash(std::numeric_limits<std::size_t>::max())
{
    std::string existing;
    {
        std::ifstream in(_path, std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            existing = buffer.str();
        }
    }
    if (!existing.empty())
        loadExisting(existing);

    _fd = ::open(_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (_fd < 0)
        throw std::runtime_error("ResultJournal: cannot open '" +
                                 _path + "': " + std::strerror(errno));
    if (existing.empty()) {
        const std::string header = std::string(kHeader) + '\n';
        if (::write(_fd, header.data(), header.size()) !=
            static_cast<ssize_t>(header.size())) {
            ::close(_fd);
            throw std::runtime_error(
                "ResultJournal: cannot write header to '" + _path +
                "'");
        }
        ::fsync(_fd);
        // The file's data is durable, but on a fresh creation the
        // *name* lives in the directory — fsync that too, or a crash
        // right here can leave a journal nobody can find to resume.
        fsyncParentDirectory(_path);
    }
}

ResultJournal::~ResultJournal()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
ResultJournal::loadExisting(const std::string &text)
{
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            // Un-terminated final line: the write a crash interrupted.
            ++_tornRecords;
            break;
        }
        const std::string line = text.substr(pos, newline - pos);
        pos = newline + 1;

        if (first) {
            first = false;
            if (line != kHeader)
                throw std::runtime_error(
                    "ResultJournal: '" + _path +
                    "' is not a rigor journal (bad header)");
            continue;
        }
        if (line.empty())
            continue;

        // r <key> <response>, where <key> is the composed identity.
        std::istringstream fields(line);
        std::string tag, key, response_text;
        if (!(fields >> tag >> key >> response_text) || tag != "r") {
            ++_tornRecords;
            continue;
        }
        double response = 0.0;
        const std::from_chars_result parsed = std::from_chars(
            response_text.data(),
            response_text.data() + response_text.size(), response);
        if (parsed.ec != std::errc{} ||
            parsed.ptr != response_text.data() + response_text.size()) {
            ++_tornRecords;
            continue;
        }
        if (_records.try_emplace(std::move(key), response).second)
            ++_loadedRecords;
    }
}

std::size_t
ResultJournal::size() const
{
    const std::scoped_lock lock(_mutex);
    return _records.size();
}

std::optional<double>
ResultJournal::lookup(const RunKey &key) const
{
    const std::scoped_lock lock(_mutex);
    const auto it = _records.find(recordKey(key));
    if (it == _records.end())
        return std::nullopt;
    return it->second;
}

void
ResultJournal::append(const RunKey &key, double response)
{
    if (hasWhitespace(key.workload) || hasWhitespace(key.hookId))
        throw std::invalid_argument(
            "ResultJournal::append: workload/hook identity must not "
            "contain whitespace");

    const std::scoped_lock lock(_mutex);
    const std::string composed = recordKey(key);
    if (_records.contains(composed))
        return; // first record wins, matching the RunCache

    const std::string line =
        "r " + composed + ' ' + formatResponse(response) + '\n';

    if (_appendsUntilCrash == 0) {
        // Crash drill: leave the torn on-disk state a real mid-write
        // crash would — a record prefix with no terminating newline —
        // then die. Only the first firing writes; later appends of a
        // "dead" journal just keep throwing.
        if (!_crashFired) {
            _crashFired = true;
            const std::size_t torn = line.size() / 2;
            (void)!::write(_fd, line.data(), torn);
            ::fsync(_fd);
        }
        throw SimulatedCrash(
            "ResultJournal: simulated crash while appending to '" +
            _path + "'");
    }

    if (::write(_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size()))
        throw BatchAbort("ResultJournal: write to '" + _path +
                         "' failed: " + std::strerror(errno));
    if (::fsync(_fd) != 0)
        throw BatchAbort("ResultJournal: fsync of '" + _path +
                         "' failed: " + std::strerror(errno));

    _records.emplace(composed, response);
    if (_appendsUntilCrash !=
        std::numeric_limits<std::size_t>::max())
        --_appendsUntilCrash;
}

void
ResultJournal::simulateCrashAfter(std::size_t appends)
{
    const std::scoped_lock lock(_mutex);
    _appendsUntilCrash = appends;
}

} // namespace rigor::exec
