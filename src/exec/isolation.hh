/**
 * @file
 * Isolation mode of a campaign's attempt executor.
 *
 * Thread isolation runs every attempt on the engine's own worker
 * threads: fast (no IPC), but a segfault, abort, uncontrolled
 * allocation, or non-cooperative infinite loop in one attempt takes
 * the whole campaign process down with it. Process isolation runs
 * each attempt inside a forked sandbox worker supervised by
 * exec::proc::ProcWorkerPool: a crash, OOM kill, or hard-deadline
 * SIGKILL costs exactly one attempt of one job — the worker is
 * respawned and the campaign keeps its completed cells. Remote
 * isolation shards attempts across a TCP worker fleet through
 * exec::net::CampaignController: a dead or stalled machine costs one
 * lease, reclaimed and requeued onto a healthy worker.
 */

#ifndef RIGOR_EXEC_ISOLATION_HH
#define RIGOR_EXEC_ISOLATION_HH

#include <string>

namespace rigor::exec
{

/** Where a campaign's simulation attempts execute. */
enum class IsolationMode
{
    /** In-process, on the engine's worker threads (the default). */
    Thread,
    /** In forked sandbox workers behind pipe IPC (crash-proof). */
    Process,
    /** On a TCP worker fleet behind a lease-granting controller. */
    Remote,
};

/** Display name ("thread" / "process" / "remote"). */
std::string toString(IsolationMode mode);

/** Parse "thread" / "process" / "remote"; false on anything else. */
bool parseIsolationMode(const std::string &text, IsolationMode &mode);

} // namespace rigor::exec

#endif // RIGOR_EXEC_ISOLATION_HH
