#include "exec/isolation.hh"

namespace rigor::exec
{

std::string
toString(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::Thread:
        return "thread";
      case IsolationMode::Process:
        return "process";
      case IsolationMode::Remote:
        return "remote";
    }
    return "?";
}

bool
parseIsolationMode(const std::string &text, IsolationMode &mode)
{
    if (text == "thread") {
        mode = IsolationMode::Thread;
        return true;
    }
    if (text == "process") {
        mode = IsolationMode::Process;
        return true;
    }
    if (text == "remote") {
        mode = IsolationMode::Remote;
        return true;
    }
    return false;
}

} // namespace rigor::exec
