#include "exec/isolation.hh"

namespace rigor::exec
{

std::string
toString(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::Thread:
        return "thread";
      case IsolationMode::Process:
        return "process";
    }
    return "?";
}

bool
parseIsolationMode(const std::string &text, IsolationMode &mode)
{
    if (text == "thread") {
        mode = IsolationMode::Thread;
        return true;
    }
    if (text == "process") {
        mode = IsolationMode::Process;
        return true;
    }
    return false;
}

} // namespace rigor::exec
