#include "exec/run_cache.hh"

#include <functional>
#include <sstream>

namespace rigor::exec
{

std::size_t
RunKey::hash() const
{
    std::size_t seed = config.hash();
    const auto mix = [&seed](std::size_t h) {
        seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    };
    mix(std::hash<std::string>{}(workload));
    mix(std::hash<std::uint64_t>{}(instructions));
    mix(std::hash<std::uint64_t>{}(warmupInstructions));
    mix(std::hash<std::string>{}(hookId));
    mix(std::hash<std::string>{}(samplingId));
    return seed;
}

std::string
RunKey::toString() const
{
    std::ostringstream os;
    os << std::hex << config.hash() << std::dec << '|' << instructions
       << '|' << warmupInstructions << '|' << workload << '|'
       << hookId;
    // Appended only for sampled runs so full-run keys (and existing
    // journals of them) keep their historical shape.
    if (!samplingId.empty())
        os << '|' << samplingId;
    return os.str();
}

std::optional<double>
RunCache::lookup(const RunKey &key)
{
    {
        const std::scoped_lock lock(_mutex);
        const auto it = _entries.find(key);
        if (it != _entries.end()) {
            _hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    _misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void
RunCache::store(const RunKey &key, double response)
{
    const std::scoped_lock lock(_mutex);
    _entries.try_emplace(key, response);
}

std::size_t
RunCache::size() const
{
    const std::scoped_lock lock(_mutex);
    return _entries.size();
}

void
RunCache::clear()
{
    const std::scoped_lock lock(_mutex);
    _entries.clear();
    _hits.store(0, std::memory_order_relaxed);
    _misses.store(0, std::memory_order_relaxed);
}

} // namespace rigor::exec
