/**
 * @file
 * The shared campaign-execution options of every experiment driver.
 *
 * Before this struct existed, PbExperimentOptions, WorkflowOptions,
 * and the enhancement driver each re-declared the same execution
 * knobs (threads, foldover, skipPreflight, the FaultPolicy, the
 * journal, the shared engine, the degradation mode) — and every new
 * cross-cutting concern had to be added three times. CampaignOptions
 * is the single definition; the per-driver option structs embed one
 * (`options.campaign`) and keep only the knobs that are genuinely
 * theirs (run lengths, hook factories, critical-parameter caps).
 *
 * The observability sinks live here too: attach a MetricsRegistry, a
 * TraceWriter, and/or a CampaignManifest and every driver reports
 * through them — engine counters and per-run histograms into the
 * metrics, phase spans and per-worker job spans into the trace, and
 * design/cell/summary provenance records into the manifest. All sink
 * pointers are optional and not owned; null disables that sink with
 * zero overhead on the simulation fast path.
 */

#ifndef RIGOR_EXEC_CAMPAIGN_OPTIONS_HH
#define RIGOR_EXEC_CAMPAIGN_OPTIONS_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "check/campaign_check.hh"
#include "exec/fault_policy.hh"
#include "exec/isolation.hh"
#include "sample/sampling.hh"
#include "stats/bootstrap.hh"

namespace rigor::obs
{
class MetricsRegistry;
class TraceWriter;
class CampaignManifest;
} // namespace rigor::obs

namespace rigor::exec
{

class SimulationEngine;
class ResultJournal;

namespace proc
{
class ProcWorkerPool;
} // namespace proc

namespace net
{
class CampaignController;
} // namespace net

/** Execution knobs shared by every experiment driver. */
struct CampaignOptions
{
    /** Worker threads; 0 = hardware concurrency. Ignored when a
     *  shared engine is supplied (its pool is used instead). */
    unsigned threads = 0;
    /** Use the foldover design (2X runs) as the paper does. Drivers
     *  without a screening design ignore it. */
    bool foldover = true;
    /**
     * Escape hatch: skip the mandatory pre-flight static analysis
     * (design matrix, Tables 6-8 parameter space, workload profiles,
     * run lengths). Only for deliberately out-of-spec studies; the
     * resulting rank tables carry no statistical guarantee.
     */
    bool skipPreflight = false;
    /**
     * Per-job fault policy: bounded retries with exponential backoff
     * for transient faults, a cooperative per-attempt deadline that
     * converts hung simulations into diagnosable timeouts, and —
     * with collectFailures — quarantine instead of fail-fast. The
     * default is the historical fail-fast single attempt.
     */
    FaultPolicy faultPolicy;
    /**
     * Optional crash-safe result journal (not owned; must outlive
     * the call). Attached to the engine for the duration of the
     * experiment: every completed run is persisted with an fsync,
     * and a rerun against the same journal replays completed runs
     * from disk instead of re-simulating them (campaign resume).
     */
    ResultJournal *journal = nullptr;
    /**
     * Optional shared execution engine (not owned). Sharing one
     * engine across experiments shares its run cache — the paper's
     * enhancement analysis re-runs the base experiment verbatim, and
     * the workflow's screen and factorial overlap — and aggregates
     * the progress counters. When null, a private engine with
     * `threads` workers is used.
     */
    SimulationEngine *engine = nullptr;
    /**
     * What to do when quarantined cells leave a benchmark's response
     * column incomplete (only reachable with
     * faultPolicy.collectFailures): refuse to degrade (Abort, the
     * default — throws check::CampaignError), or drop affected
     * benchmarks whole and label the reduced rank table.
     */
    check::DegradationMode degradation =
        check::DegradationMode::Abort;

    /**
     * Where simulation attempts execute. Thread (the default) runs
     * them in-process on the engine's workers; Process ships each
     * attempt to a forked sandbox worker (exec/proc/), so a SIGSEGV,
     * OOM kill, or non-cooperative hang costs one attempt of one job
     * instead of the campaign. See exec/isolation.hh.
     */
    IsolationMode isolation = IsolationMode::Thread;
    /** Process isolation: per-worker RLIMIT_AS cap in MiB
     *  (0 = unlimited). Ignored under thread isolation. */
    std::uint64_t memLimitMb = 0;
    /**
     * Process isolation: hard per-attempt deadline — the pool's
     * watchdog SIGKILLs a sandbox worker busy past it, no cooperation
     * needed (the complement of faultPolicy.attemptDeadline, which is
     * polled cooperatively and still applies inside the sandbox).
     * Zero disables. Ignored under thread isolation.
     */
    std::chrono::milliseconds hardDeadline{0};
    /**
     * Optional pre-built sandbox pool (not owned; must outlive the
     * call). Multi-phase drivers (workflow screen + factorial,
     * enhancement base + enhanced legs) share one pool here so the
     * workers fork once; when null and isolation is Process, the
     * driver builds a private pool per phase. Ignored under thread
     * isolation.
     */
    proc::ProcWorkerPool *procPool = nullptr;

    /**
     * Remote isolation: the lease-granting controller that shards
     * cells across the TCP worker fleet (not owned; must outlive the
     * call). Required when isolation is Remote — the drivers swap the
     * engine's simulate function for controller->simulateFn() exactly
     * as they swap in a sandbox pool under Process isolation.
     */
    net::CampaignController *netController = nullptr;
    /**
     * Remote isolation: how long one handed-out cell may go without
     * its worker heartbeating before the lease is reclaimed and the
     * cell requeued elsewhere. Must comfortably exceed both the
     * heartbeat interval and any per-attempt deadline, or healthy
     * long-running cells get reclaimed spuriously — the pre-flight
     * rule campaign.lease-shorter-than-deadline enforces this.
     */
    std::chrono::milliseconds leaseDuration{10000};
    /** Remote isolation: expected worker heartbeat cadence
     *  (advertised to workers in the handshake). Must stay well
     *  under half of leaseDuration or transient silence reclaims
     *  healthy workers — the pre-flight rule
     *  campaign.heartbeat-too-coarse enforces this.  */
    std::chrono::milliseconds heartbeatInterval{1000};
    /**
     * Remote isolation: how long a disconnected worker's session
     * (and its leases) is parked awaiting a reconnect before its
     * cells fall back to reclaim/requeue. Zero disables parking —
     * every broken connection reclaims immediately.
     */
    std::chrono::milliseconds sessionGrace{0};
    /**
     * Remote isolation: shared fleet token. Non-empty makes the
     * controller demand an HMAC-SHA256 challenge-response in every
     * worker handshake before any lease is granted; empty disables
     * authentication (trusted-network deployments only).
     */
    std::string remoteAuthToken;
    /**
     * Remote isolation: worker count the campaign expects to be
     * served by (pre-flight rule campaign.no-workers rejects 0 — a
     * remote campaign with no fleet would queue cells forever).
     */
    unsigned remoteWorkers = 0;

    /**
     * SMARTS-style sampled simulation (see sample/sampling.hh). When
     * enabled, every run simulates only periodic units in detail —
     * detailed warm-up, measured unit, functional fast-forward — and
     * reports an extrapolated response with a per-run CPI confidence
     * interval instead of paying for the full stream.
     */
    sample::SamplingOptions sampling;

    /**
     * Workload-generation replication (see stats/bootstrap.hh and
     * methodology/rank_stability.hh). When enabled (replicates >= 1),
     * runReplicatedPbExperiment re-runs every benchmark under R
     * independently seeded workload realizations and bootstraps
     * confidence intervals over the resulting rank tables; the
     * pre-flight rejects plans below the configured replicate floor
     * (campaign.under-replicated). Disabled (0) keeps the historical
     * single-realization behavior.
     */
    stats::ReplicationOptions replication;

    /** Optional metrics sink (not owned): engine counters, per-run
     *  wall-time and throughput histograms, queue/steal stats. */
    obs::MetricsRegistry *metrics = nullptr;
    /** Optional Chrome trace sink (not owned): one span per driver
     *  phase, one span per simulated job on its worker lane. */
    obs::TraceWriter *trace = nullptr;
    /** Optional JSONL manifest sink (not owned): design identity,
     *  one record per (benchmark, row) cell, terminal summary. */
    obs::CampaignManifest *manifest = nullptr;
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_CAMPAIGN_OPTIONS_HH
