/**
 * @file
 * The shared simulation execution engine.
 *
 * Every multi-run experiment in this repository — the Plackett-Burman
 * screen, the recommended workflow's full factorial, the paired
 * base/enhanced enhancement analysis — reduces to the same schedulable
 * unit: a batch of independent (workload, configuration) simulations.
 * SimulationEngine runs such batches on a work-stealing thread pool
 * (SimJobQueue), memoizes pure runs in a RunCache, and feeds a
 * ProgressReporter, so the dominant cost of the reproduction scales
 * with cores and repeated configurations are free.
 *
 * Determinism: job results are written by job index, so the responses
 * are bit-identical regardless of thread count or scheduling order
 * (the simulator itself is deterministic).
 *
 * Fault tolerance: each batch runs under a FaultPolicy — bounded
 * retries with exponential backoff for transient faults, a
 * cooperative per-attempt deadline that converts hung simulations
 * into diagnosable timeouts, and an optional collect-all-failures
 * mode that quarantines failed jobs (NaN response + JobFailure
 * record) instead of cancelling the batch. The default policy is the
 * historical fail-fast behavior: the first failing job cancels the
 * batch and the rethrown error names the job's label plus its
 * attempt count and elapsed wall time.
 *
 * Durability: an attached ResultJournal persists every completed
 * cacheable run (fsync per record), and is consulted like a
 * second-level cache — an interrupted campaign resumed against the
 * same journal replays completed runs from disk instead of
 * re-simulating them.
 *
 * Isolation: the attempt executor is a swappable SimulateFn
 * (setSimulate / simulateFn). The default runs attempts in-process on
 * the worker threads; a campaign that must survive crashes, OOM
 * kills, and non-cooperative hangs swaps in the dispatch function of
 * an exec::proc::ProcWorkerPool, which ships each attempt to a forked
 * sandbox worker and maps its death back into the fault taxonomy
 * (see exec/isolation.hh).
 */

#ifndef RIGOR_EXEC_ENGINE_HH
#define RIGOR_EXEC_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/fault_policy.hh"
#include "exec/progress.hh"
#include "exec/run_cache.hh"
#include "sample/sampling.hh"
#include "sim/core.hh"
#include "trace/workload_profile.hh"

namespace rigor::obs
{
class MetricsRegistry;
class TraceWriter;
class Counter;
class Gauge;
class Histogram;
} // namespace rigor::obs

namespace rigor::exec
{

class ResultJournal;

/** One independent simulation in a batch. */
struct SimJob
{
    /** Workload to simulate; must outlive the batch. */
    const trace::WorkloadProfile *workload = nullptr;
    sim::ProcessorConfig config;
    /** Measured dynamic instructions. */
    std::uint64_t instructions = 0;
    /** Leading warm-up instructions (excluded from the response). */
    std::uint64_t warmupInstructions = 0;
    /**
     * Sampled-simulation schedule. When enabled, the run streams the
     * same instructions but simulates only periodic units in detail
     * (sample::runSampled); the response becomes the extrapolated
     * cycle count and the per-run CI is delivered via the job event.
     */
    sample::SamplingOptions sampling;
    /**
     * Optional enhancement-hook builder, already bound to the
     * workload; called once per executed run (never for cache hits).
     * Must be callable from any worker thread.
     */
    std::function<std::unique_ptr<sim::ExecutionHook>()> makeHook;
    /**
     * Stable cache identity of makeHook's product. A job with a hook
     * but an empty hookId is treated as impure and never cached.
     */
    std::string hookId;
    /** Failure context, e.g. "gzip, design row 17". */
    std::string label;

    /** Cache participation: pure, or hooked with a stable identity. */
    bool cacheable() const { return !makeHook || !hookId.empty(); }
};

/**
 * Executes one attempt of one job. Replaceable via EngineOptions for
 * fault injection and lightweight test stubs; implementations should
 * poll ctx.checkDeadline() if they run long. Must be thread-safe.
 */
using SimulateFn =
    std::function<double(const SimJob &job, const AttemptContext &ctx)>;

/** Where one completed job's response came from. */
enum class RunSource
{
    /** Actually simulated this batch. */
    Simulated,
    /** Served from the in-memory RunCache. */
    CacheHit,
    /** Replayed from the crash-safe ResultJournal (resume). */
    JournalReplay,
};

/** Display name ("simulated" / "cache" / "journal"). */
std::string toString(RunSource source);

/**
 * One job's terminal outcome, delivered to the engine's job observer
 * from the worker thread that finished it (observers must be
 * thread-safe). This is the manifest's per-cell feed and the campaign
 * CLI's replay progress line.
 */
struct JobEvent
{
    std::size_t jobIndex = 0;
    /** The job; valid only for the duration of the callback. */
    const SimJob *job = nullptr;
    RunSource source = RunSource::Simulated;
    /** False when the job terminally failed (quarantine/fail-fast). */
    bool ok = false;
    /** Attempts made; 0 for cache hits and journal replays. */
    unsigned attempts = 0;
    /** Wall time of this job on its worker (lookup + attempts). */
    double wallSeconds = 0.0;
    /** Response cycles; NaN when !ok. */
    double response = 0.0;
    /** Run-cache key (config hash first); empty if uncacheable. */
    std::string runKey;
    /** True when this event carries a fresh sampled-run summary
     *  (simulated with job.sampling enabled; cache and journal hits
     *  replay only the response). */
    bool sampled = false;
    /** Per-run sampling summary; meaningful only when sampled. */
    sample::SampleSummary sample;
    /** Name of the remote worker that served the run; empty for
     *  in-process execution, cache hits, and journal replays. */
    std::string host;
};

/** Per-job completion callback; must be thread-safe. */
using JobObserver = std::function<void(const JobEvent &)>;

/** Engine construction knobs. */
struct EngineOptions
{
    EngineOptions() = default;
    EngineOptions(unsigned num_threads, bool cache_enabled,
                  SimulateFn simulate_fn = {})
        : threads(num_threads), cacheEnabled(cache_enabled),
          simulate(std::move(simulate_fn))
    {
    }

    /** Worker threads; 0 = hardware concurrency (min 4 fallback). */
    unsigned threads = 0;
    /** Memoize pure runs across batches. */
    bool cacheEnabled = true;
    /**
     * Attempt executor; empty = the real deadline-guarded simulator
     * (SimulationEngine::simulateJob with cooperative watchdog).
     */
    SimulateFn simulate;
};

/** Reusable batch executor; share one per experiment to share the
 *  cache and the progress counters across phases. */
class SimulationEngine
{
  public:
    explicit SimulationEngine(const EngineOptions &options = {});

    /**
     * Run every job fail-fast (default FaultPolicy) and return the
     * responses (measured cycles) in job order. Throws
     * std::runtime_error naming the failing job's label, attempt
     * count, and elapsed time if any simulation fails.
     */
    std::vector<double> run(std::span<const SimJob> jobs);

    /**
     * Run every job under @p policy. With policy.collectFailures the
     * batch always completes: quarantined jobs come back as NaN
     * responses plus JobFailure records. Without it, the first
     * permanently failed job (retries exhausted) cancels the batch
     * and throws. BatchAbort (journal I/O failure, crash drill)
     * always cancels and propagates regardless of the policy.
     *
     * Not reentrant: one batch at a time. A nested or concurrent
     * run() call throws std::logic_error instead of silently
     * corrupting the progress counters.
     */
    BatchResult run(std::span<const SimJob> jobs,
                    const FaultPolicy &policy);

    /** Resolved worker-thread count. */
    unsigned threads() const { return _threads; }

    RunCache &cache() { return _cache; }
    const RunCache &cache() const { return _cache; }

    ProgressReporter &progress() { return _progress; }
    const ProgressReporter &progress() const { return _progress; }

    /**
     * Replace the attempt executor mid-lifetime (empty restores the
     * default in-process simulator). This is the isolation seam: a
     * campaign driver swaps in a ProcWorkerPool's dispatch function
     * to run attempts in sandboxed child processes, then restores the
     * previous executor when the scope ends. Must not be called while
     * a batch is running.
     */
    void setSimulate(SimulateFn simulate);

    /** The current attempt executor (never empty). */
    const SimulateFn &simulateFn() const { return _simulate; }

    /**
     * Attach (or detach, with nullptr) a crash-safe result journal.
     * Not owned; must outlive every subsequent run(). Journaled runs
     * are replayed like cache hits on later batches — including
     * after a process restart against the same journal file.
     */
    void setJournal(ResultJournal *journal) { _journal = journal; }
    ResultJournal *journal() const { return _journal; }

    /**
     * Attach (or detach, with nullptr) a metrics registry. The engine
     * resolves its instruments once here — per-event recording on the
     * worker fast path is pure relaxed atomics. Counters:
     * engine.runs.{completed,simulated,cache_hits,journal_replays,
     * failed,sampled}, engine.retries, engine.batches,
     * engine.queue.steals. Histograms: engine.run.wall_seconds,
     * sim.run.mips, sample.units, sample.rel_error. Gauges:
     * engine.workers.busy_fraction, engine.queue.initial_depth.
     * Not owned; must outlive every subsequent run().
     */
    void setMetrics(obs::MetricsRegistry *metrics);
    obs::MetricsRegistry *metrics() const { return _metrics; }

    /**
     * Attach (or detach) a Chrome trace sink: one "batch" span on
     * lane 0 per run() call, one span per job on its worker's lane
     * (tid = worker + 1). Not owned; must outlive every run().
     */
    void setTraceWriter(obs::TraceWriter *trace) { _trace = trace; }
    obs::TraceWriter *traceWriter() const { return _trace; }

    /**
     * Attach (or detach, with {}) a per-job completion observer,
     * invoked from worker threads as each job finishes (cache hit,
     * journal replay, simulated, or terminally failed).
     */
    void setJobObserver(JobObserver observer)
    {
        _observer = std::move(observer);
    }
    const JobObserver &jobObserver() const { return _observer; }

    /**
     * Execute one job unconditionally (no cache, no counters) — the
     * single-run primitive the batch path and simulateOnce share.
     */
    static double simulateJob(const SimJob &job);

    /**
     * Deadline-guarded variant: polls ctx.checkDeadline() from the
     * trace source every few thousand instructions, so a wedged run
     * surfaces as DeadlineExceeded. This is the engine's default
     * SimulateFn and the inner executor fault injectors wrap.
     */
    static double simulateJob(const SimJob &job,
                              const AttemptContext &ctx);

  private:
    /** Outcome of one job under the policy (internal). */
    struct RunOutcome
    {
        bool ok = false;
        double response = 0.0;
        RunSource source = RunSource::Simulated;
        /** Attempts made (0 for cache/journal hits). */
        unsigned attempts = 0;
        /** Composed cache identity; empty if uncacheable. */
        std::string runKey;
        /** Fresh sampled-run summary (see JobEvent::sampled). */
        bool sampled = false;
        sample::SampleSummary sample;
        /** Serving remote worker (see JobEvent::host). */
        std::string host;
        JobFailure failure;
    };

    /** Metric instruments resolved once per setMetrics() call, so
     *  the worker fast path never touches the registry lock. */
    struct Instruments
    {
        obs::Counter *completed = nullptr;
        obs::Counter *simulated = nullptr;
        obs::Counter *cacheHits = nullptr;
        obs::Counter *journalHits = nullptr;
        obs::Counter *retries = nullptr;
        obs::Counter *failed = nullptr;
        obs::Counter *batches = nullptr;
        obs::Counter *steals = nullptr;
        obs::Counter *sampledRuns = nullptr;
        obs::Histogram *runWallSeconds = nullptr;
        obs::Histogram *mips = nullptr;
        obs::Histogram *sampleUnits = nullptr;
        obs::Histogram *sampleRelError = nullptr;
        obs::Gauge *busyFraction = nullptr;
        obs::Gauge *queueDepth = nullptr;
    };

    /** Run one job through journal + cache + retry loop + counters. */
    RunOutcome runOne(const SimJob &job, std::size_t index,
                      const FaultPolicy &policy);

    unsigned _threads;
    bool _cacheEnabled;
    SimulateFn _simulate;
    RunCache _cache;
    ProgressReporter _progress;
    ResultJournal *_journal = nullptr;
    obs::MetricsRegistry *_metrics = nullptr;
    obs::TraceWriter *_trace = nullptr;
    JobObserver _observer;
    Instruments _instruments;
    /** Reentrancy guard: run() in progress. */
    std::atomic<bool> _running{false};
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_ENGINE_HH
