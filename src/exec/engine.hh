/**
 * @file
 * The shared simulation execution engine.
 *
 * Every multi-run experiment in this repository — the Plackett-Burman
 * screen, the recommended workflow's full factorial, the paired
 * base/enhanced enhancement analysis — reduces to the same schedulable
 * unit: a batch of independent (workload, configuration) simulations.
 * SimulationEngine runs such batches on a work-stealing thread pool
 * (SimJobQueue), memoizes pure runs in a RunCache, and feeds a
 * ProgressReporter, so the dominant cost of the reproduction scales
 * with cores and repeated configurations are free.
 *
 * Determinism: job results are written by job index, so the responses
 * are bit-identical regardless of thread count or scheduling order
 * (the simulator itself is deterministic).
 *
 * Failure: the first failing job cancels the batch; the rethrown
 * error names the job's label (benchmark and design row) so a bad
 * configuration is diagnosable.
 */

#ifndef RIGOR_EXEC_ENGINE_HH
#define RIGOR_EXEC_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/progress.hh"
#include "exec/run_cache.hh"
#include "sim/core.hh"
#include "trace/workload_profile.hh"

namespace rigor::exec
{

/** One independent simulation in a batch. */
struct SimJob
{
    /** Workload to simulate; must outlive the batch. */
    const trace::WorkloadProfile *workload = nullptr;
    sim::ProcessorConfig config;
    /** Measured dynamic instructions. */
    std::uint64_t instructions = 0;
    /** Leading warm-up instructions (excluded from the response). */
    std::uint64_t warmupInstructions = 0;
    /**
     * Optional enhancement-hook builder, already bound to the
     * workload; called once per executed run (never for cache hits).
     * Must be callable from any worker thread.
     */
    std::function<std::unique_ptr<sim::ExecutionHook>()> makeHook;
    /**
     * Stable cache identity of makeHook's product. A job with a hook
     * but an empty hookId is treated as impure and never cached.
     */
    std::string hookId;
    /** Failure context, e.g. "gzip, design row 17". */
    std::string label;

    /** Cache participation: pure, or hooked with a stable identity. */
    bool cacheable() const { return !makeHook || !hookId.empty(); }
};

/** Engine construction knobs. */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency (min 4 fallback). */
    unsigned threads = 0;
    /** Memoize pure runs across batches. */
    bool cacheEnabled = true;
};

/** Reusable batch executor; share one per experiment to share the
 *  cache and the progress counters across phases. */
class SimulationEngine
{
  public:
    explicit SimulationEngine(const EngineOptions &options = {});

    /**
     * Run every job and return the responses (measured cycles) in job
     * order. Throws std::runtime_error naming the failing job's label
     * if any simulation fails. Not reentrant: one batch at a time.
     */
    std::vector<double> run(std::span<const SimJob> jobs);

    /** Resolved worker-thread count. */
    unsigned threads() const { return _threads; }

    RunCache &cache() { return _cache; }
    const RunCache &cache() const { return _cache; }

    ProgressReporter &progress() { return _progress; }
    const ProgressReporter &progress() const { return _progress; }

    /**
     * Execute one job unconditionally (no cache, no counters) — the
     * single-run primitive the batch path and simulateOnce share.
     */
    static double simulateJob(const SimJob &job);

  private:
    /** Run one job through cache + simulation + counters. */
    double runOne(const SimJob &job);

    unsigned _threads;
    bool _cacheEnabled;
    RunCache _cache;
    ProgressReporter _progress;
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_ENGINE_HH
