#include "exec/fault_policy.hh"

#include <cstdio>

namespace rigor::exec
{

std::string
toString(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Transient:
        return "transient";
      case FailureKind::Permanent:
        return "permanent";
      case FailureKind::Timeout:
        return "timeout";
    }
    return "?";
}

std::chrono::milliseconds
FaultPolicy::backoffFor(unsigned k) const
{
    if (backoffBase.count() <= 0 || k == 0)
        return std::chrono::milliseconds{0};
    // Cap the shift so a misconfigured attempt count cannot overflow;
    // 2^20 * base is already far beyond any sane campaign backoff.
    const unsigned shift = k - 1 > 20 ? 20 : k - 1;
    return backoffBase * (1u << shift);
}

void
AttemptContext::checkDeadline() const
{
    if (expired())
        throw DeadlineExceeded(
            "attempt deadline of " +
            std::to_string(deadlineBudget.count()) + " ms exceeded");
}

std::string
JobFailure::toString() const
{
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", elapsedSeconds);
    return "job '" + label + "' failed (" + exec::toString(kind) +
           ") after " + std::to_string(attempts) +
           (attempts == 1 ? " attempt" : " attempts") + " in " +
           elapsed + " s: " + message;
}

} // namespace rigor::exec
