#include "exec/fault_policy.hh"

#include <cstdio>

namespace rigor::exec
{

std::string
toString(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Transient:
        return "transient";
      case FailureKind::Permanent:
        return "permanent";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::Resource:
        return "resource";
    }
    return "?";
}

std::chrono::milliseconds
FaultPolicy::backoffFor(unsigned k) const
{
    if (backoffBase.count() <= 0 || k == 0)
        return std::chrono::milliseconds{0};
    // Cap the shift so a misconfigured attempt count cannot overflow;
    // 2^20 * base is already far beyond any sane campaign backoff.
    const unsigned shift = k - 1 > 20 ? 20 : k - 1;
    return backoffBase * (1u << shift);
}

namespace
{

/** splitmix64: full-avalanche 64-bit mix (public-domain constant
 *  set), so adjacent streams land far apart in the jitter window. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::chrono::milliseconds
FaultPolicy::backoffFor(unsigned k, std::uint64_t stream) const
{
    const std::chrono::milliseconds base = backoffFor(k);
    if (base.count() <= 0 || backoffJitter <= 0.0)
        return base;
    const double jitter = backoffJitter > 1.0 ? 1.0 : backoffJitter;
    // Uniform in [0, 1) from the top 53 bits of the mixed hash; the
    // delay is base scaled into [base * (1 - jitter), base].
    const std::uint64_t h =
        mix64(mix64(backoffSeed ^ stream) ^ static_cast<std::uint64_t>(k));
    const double u =
        static_cast<double>(h >> 11) / 9007199254740992.0; // 2^53
    const double scaled =
        static_cast<double>(base.count()) * (1.0 - jitter * u);
    return std::chrono::milliseconds(
        static_cast<std::chrono::milliseconds::rep>(scaled));
}

void
AttemptContext::checkDeadline() const
{
    if (expired())
        throw DeadlineExceeded(
            "attempt deadline of " +
            std::to_string(deadlineBudget.count()) + " ms exceeded");
}

std::string
JobFailure::toString() const
{
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", elapsedSeconds);
    return "job '" + label + "' failed (" + exec::toString(kind) +
           ") after " + std::to_string(attempts) +
           (attempts == 1 ? " attempt" : " attempts") + " in " +
           elapsed + " s: " + message;
}

} // namespace rigor::exec
