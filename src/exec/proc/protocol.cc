#include "exec/proc/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace rigor::exec::proc
{

namespace
{

/** Write exactly @p size bytes, riding out EINTR and short writes. */
void
writeAll(int fd, const void *data, std::size_t size)
{
    const char *at = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, at, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("sandbox pipe write: ") +
                                std::strerror(errno));
        }
        at += n;
        size -= static_cast<std::size_t>(n);
    }
}

/**
 * Read up to @p size bytes, stopping early only at EOF. Returns the
 * byte count actually transferred so the caller can distinguish a
 * clean EOF at a frame boundary (0 of n) from a truncated frame
 * (0 < got < n) and report the offending counts; throws
 * ProtocolError only on a hard I/O error.
 */
std::size_t
readUpTo(int fd, void *data, std::size_t size)
{
    char *at = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, at + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("sandbox pipe read: ") +
                                std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    return got;
}

void
writeProfile(Writer &out, const trace::WorkloadProfile &p)
{
    out.str(p.name);
    out.pod(p.isFloatingPoint);
    out.pod(p.paperInstructionsMillions);
    out.pod(p.fracLoad);
    out.pod(p.fracStore);
    out.pod(p.fracIntMult);
    out.pod(p.fracIntDiv);
    out.pod(p.fracFpAlu);
    out.pod(p.fracFpMult);
    out.pod(p.fracFpDiv);
    out.pod(p.fracFpSqrt);
    out.pod(p.avgBlockInstrs);
    out.pod(p.takenBias);
    out.pod(p.branchPredictability);
    out.pod(p.callFraction);
    out.pod(p.avgCallDepth);
    out.pod(p.codeFootprintBytes);
    out.pod(p.hotCodeBytes);
    out.pod(p.dataFootprintBytes);
    out.pod(p.hotDataFraction);
    out.pod(p.fracPointerChase);
    out.pod(p.fracStrided);
    out.pod(p.strideBytes);
    out.pod(p.valueLocality);
    out.pod(p.avgDependencyDistance);
}

trace::WorkloadProfile
readProfile(Reader &in)
{
    trace::WorkloadProfile p;
    p.name = in.str();
    p.isFloatingPoint = in.pod<bool>();
    p.paperInstructionsMillions = in.pod<double>();
    p.fracLoad = in.pod<double>();
    p.fracStore = in.pod<double>();
    p.fracIntMult = in.pod<double>();
    p.fracIntDiv = in.pod<double>();
    p.fracFpAlu = in.pod<double>();
    p.fracFpMult = in.pod<double>();
    p.fracFpDiv = in.pod<double>();
    p.fracFpSqrt = in.pod<double>();
    p.avgBlockInstrs = in.pod<double>();
    p.takenBias = in.pod<double>();
    p.branchPredictability = in.pod<double>();
    p.callFraction = in.pod<double>();
    p.avgCallDepth = in.pod<double>();
    p.codeFootprintBytes = in.pod<std::uint64_t>();
    p.hotCodeBytes = in.pod<std::uint64_t>();
    p.dataFootprintBytes = in.pod<std::uint64_t>();
    p.hotDataFraction = in.pod<double>();
    p.fracPointerChase = in.pod<double>();
    p.fracStrided = in.pod<double>();
    p.strideBytes = in.pod<std::uint32_t>();
    p.valueLocality = in.pod<double>();
    p.avgDependencyDistance = in.pod<double>();
    return p;
}

} // namespace

void
JobRequest::serialize(Writer &out) const
{
    writeProfile(out, profile);
    static_assert(std::is_trivially_copyable_v<sim::ProcessorConfig>,
                  "ProcessorConfig is memcpy-serialized over the "
                  "sandbox pipe; a non-trivially-copyable member "
                  "needs explicit field-by-field handling here");
    out.pod(config);
    out.pod(instructions);
    out.pod(warmupInstructions);
    out.pod(hasHook);
    out.str(label);
    out.pod(jobIndex);
    out.pod(attempt);
    out.pod(static_cast<std::int64_t>(deadlineBudget.count()));
    out.pod(sampling);
}

JobRequest
JobRequest::deserialize(Reader &in)
{
    JobRequest req;
    req.profile = readProfile(in);
    req.config = in.pod<sim::ProcessorConfig>();
    req.instructions = in.pod<std::uint64_t>();
    req.warmupInstructions = in.pod<std::uint64_t>();
    req.hasHook = in.pod<bool>();
    req.label = in.str();
    req.jobIndex = in.pod<std::uint64_t>();
    req.attempt = in.pod<std::uint32_t>();
    req.deadlineBudget =
        std::chrono::milliseconds(in.pod<std::int64_t>());
    req.sampling = in.pod<sample::SamplingOptions>();
    return req;
}

void
JobResult::serialize(Writer &out) const
{
    out.pod(status);
    out.pod(cycles);
    out.pod(wallSeconds);
    out.str(message);
    out.pod(hasSample);
    out.pod(sample);
}

JobResult
JobResult::deserialize(Reader &in)
{
    JobResult result;
    result.status = in.pod<ResultStatus>();
    result.cycles = in.pod<double>();
    result.wallSeconds = in.pod<double>();
    result.message = in.str();
    result.hasSample = in.pod<bool>();
    result.sample = in.pod<sample::SampleSummary>();
    return result;
}

void
writeFrame(int fd, const std::vector<std::byte> &payload)
{
    const std::uint32_t size =
        static_cast<std::uint32_t>(payload.size());
    writeAll(fd, &size, sizeof(size));
    if (size > 0)
        writeAll(fd, payload.data(), size);
}

bool
readFrame(int fd, std::vector<std::byte> &payload)
{
    std::uint32_t size = 0;
    const std::size_t prefix = readUpTo(fd, &size, sizeof(size));
    if (prefix == 0)
        return false;
    if (prefix < sizeof(size))
        throw TruncatedFrame(
            "truncated frame length prefix: got " +
            std::to_string(prefix) + " of " +
            std::to_string(sizeof(size)) + " bytes before EOF");
    if (size > kMaxFramePayload)
        throw ProtocolError(
            "frame payload of " + std::to_string(size) +
            " bytes exceeds the " + std::to_string(kMaxFramePayload) +
            "-byte limit");
    payload.resize(size);
    if (size > 0) {
        const std::size_t got = readUpTo(fd, payload.data(), size);
        if (got < size)
            throw TruncatedFrame(
                "truncated frame payload: got " +
                std::to_string(got) + " of " + std::to_string(size) +
                " bytes before EOF");
    }
    return true;
}

} // namespace rigor::exec::proc
