#include "exec/proc/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace rigor::exec::proc
{

namespace
{

/** Write exactly @p size bytes, riding out EINTR and short writes. */
void
writeAll(int fd, const void *data, std::size_t size)
{
    const char *at = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, at, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("sandbox pipe write: ") +
                                std::strerror(errno));
        }
        at += n;
        size -= static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly @p size bytes. Returns false on EOF before the first
 * byte; throws ProtocolError on EOF mid-transfer or a hard error.
 */
bool
readAll(int fd, void *data, std::size_t size)
{
    char *at = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, at + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("sandbox pipe read: ") +
                                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0)
                return false;
            throw ProtocolError("sandbox pipe closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void
writeProfile(Writer &out, const trace::WorkloadProfile &p)
{
    out.str(p.name);
    out.pod(p.isFloatingPoint);
    out.pod(p.paperInstructionsMillions);
    out.pod(p.fracLoad);
    out.pod(p.fracStore);
    out.pod(p.fracIntMult);
    out.pod(p.fracIntDiv);
    out.pod(p.fracFpAlu);
    out.pod(p.fracFpMult);
    out.pod(p.fracFpDiv);
    out.pod(p.fracFpSqrt);
    out.pod(p.avgBlockInstrs);
    out.pod(p.takenBias);
    out.pod(p.branchPredictability);
    out.pod(p.callFraction);
    out.pod(p.avgCallDepth);
    out.pod(p.codeFootprintBytes);
    out.pod(p.hotCodeBytes);
    out.pod(p.dataFootprintBytes);
    out.pod(p.hotDataFraction);
    out.pod(p.fracPointerChase);
    out.pod(p.fracStrided);
    out.pod(p.strideBytes);
    out.pod(p.valueLocality);
    out.pod(p.avgDependencyDistance);
}

trace::WorkloadProfile
readProfile(Reader &in)
{
    trace::WorkloadProfile p;
    p.name = in.str();
    p.isFloatingPoint = in.pod<bool>();
    p.paperInstructionsMillions = in.pod<double>();
    p.fracLoad = in.pod<double>();
    p.fracStore = in.pod<double>();
    p.fracIntMult = in.pod<double>();
    p.fracIntDiv = in.pod<double>();
    p.fracFpAlu = in.pod<double>();
    p.fracFpMult = in.pod<double>();
    p.fracFpDiv = in.pod<double>();
    p.fracFpSqrt = in.pod<double>();
    p.avgBlockInstrs = in.pod<double>();
    p.takenBias = in.pod<double>();
    p.branchPredictability = in.pod<double>();
    p.callFraction = in.pod<double>();
    p.avgCallDepth = in.pod<double>();
    p.codeFootprintBytes = in.pod<std::uint64_t>();
    p.hotCodeBytes = in.pod<std::uint64_t>();
    p.dataFootprintBytes = in.pod<std::uint64_t>();
    p.hotDataFraction = in.pod<double>();
    p.fracPointerChase = in.pod<double>();
    p.fracStrided = in.pod<double>();
    p.strideBytes = in.pod<std::uint32_t>();
    p.valueLocality = in.pod<double>();
    p.avgDependencyDistance = in.pod<double>();
    return p;
}

} // namespace

void
JobRequest::serialize(Writer &out) const
{
    writeProfile(out, profile);
    static_assert(std::is_trivially_copyable_v<sim::ProcessorConfig>,
                  "ProcessorConfig is memcpy-serialized over the "
                  "sandbox pipe; a non-trivially-copyable member "
                  "needs explicit field-by-field handling here");
    out.pod(config);
    out.pod(instructions);
    out.pod(warmupInstructions);
    out.pod(hasHook);
    out.str(label);
    out.pod(jobIndex);
    out.pod(attempt);
    out.pod(static_cast<std::int64_t>(deadlineBudget.count()));
    out.pod(sampling);
}

JobRequest
JobRequest::deserialize(Reader &in)
{
    JobRequest req;
    req.profile = readProfile(in);
    req.config = in.pod<sim::ProcessorConfig>();
    req.instructions = in.pod<std::uint64_t>();
    req.warmupInstructions = in.pod<std::uint64_t>();
    req.hasHook = in.pod<bool>();
    req.label = in.str();
    req.jobIndex = in.pod<std::uint64_t>();
    req.attempt = in.pod<std::uint32_t>();
    req.deadlineBudget =
        std::chrono::milliseconds(in.pod<std::int64_t>());
    req.sampling = in.pod<sample::SamplingOptions>();
    return req;
}

void
JobResult::serialize(Writer &out) const
{
    out.pod(status);
    out.pod(cycles);
    out.pod(wallSeconds);
    out.str(message);
    out.pod(hasSample);
    out.pod(sample);
}

JobResult
JobResult::deserialize(Reader &in)
{
    JobResult result;
    result.status = in.pod<ResultStatus>();
    result.cycles = in.pod<double>();
    result.wallSeconds = in.pod<double>();
    result.message = in.str();
    result.hasSample = in.pod<bool>();
    result.sample = in.pod<sample::SampleSummary>();
    return result;
}

void
writeFrame(int fd, const std::vector<std::byte> &payload)
{
    const std::uint32_t size =
        static_cast<std::uint32_t>(payload.size());
    writeAll(fd, &size, sizeof(size));
    if (size > 0)
        writeAll(fd, payload.data(), size);
}

bool
readFrame(int fd, std::vector<std::byte> &payload)
{
    std::uint32_t size = 0;
    if (!readAll(fd, &size, sizeof(size)))
        return false;
    payload.resize(size);
    if (size > 0 && !readAll(fd, payload.data(), size))
        throw ProtocolError("sandbox pipe closed mid-frame");
    return true;
}

} // namespace rigor::exec::proc
