#include "exec/proc/sandbox_worker.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include "exec/fault_policy.hh"

namespace rigor::exec::proc
{

namespace
{

/**
 * Close every inherited descriptor except stdio and the child's own
 * two pipe ends. Scans /proc/self/fd; the scan's own directory fd is
 * skipped and closed by closedir. Without this sweep a child forked
 * while siblings exist keeps their result-pipe write ends (and the
 * journal fd, trace files, ...) open, so a sibling crash would never
 * surface as EOF in the parent.
 */
void
closeInheritedFds(int keep_a, int keep_b)
{
    DIR *dir = ::opendir("/proc/self/fd");
    if (dir == nullptr)
        return; // best effort; /proc is always there on target hosts
    const int dir_fd = ::dirfd(dir);
    while (const dirent *entry = ::readdir(dir)) {
        char *end = nullptr;
        const long fd = std::strtol(entry->d_name, &end, 10);
        if (end == entry->d_name || *end != '\0')
            continue;
        if (fd <= 2 || fd == dir_fd || fd == keep_a || fd == keep_b)
            continue;
        ::close(static_cast<int>(fd));
    }
    ::closedir(dir);
}

void
applyLimit(int resource, std::uint64_t value)
{
    rlimit limit;
    limit.rlim_cur = static_cast<rlim_t>(value);
    limit.rlim_max = static_cast<rlim_t>(value);
    ::setrlimit(resource, &limit); // best effort: a denied cap only
                                   // loses the sandbox's backstop
}

void
applyLimits(const SandboxContext &context)
{
    if (context.memLimitMb > 0)
        applyLimit(RLIMIT_AS, context.memLimitMb * 1024 * 1024);
    if (context.cpuLimitSeconds > 0)
        applyLimit(RLIMIT_CPU, context.cpuLimitSeconds);
}

} // namespace

int
runSandboxChild(int request_fd, int result_fd,
                const SandboxContext &context)
{
    const SimulateFn simulate =
        context.simulate
            ? context.simulate
            : [](const SimJob &job, const AttemptContext &ctx) {
                  return SimulationEngine::simulateJob(job, ctx);
              };

    std::vector<std::byte> frame;
    for (;;) {
        try {
            if (!readFrame(request_fd, frame))
                return 0; // parent closed the request pipe: shutdown
        } catch (const ProtocolError &) {
            return 1;
        }

        Reader reader(frame);
        const JobRequest request = JobRequest::deserialize(reader);

        SimJob job;
        job.workload = &request.profile;
        job.config = request.config;
        job.instructions = request.instructions;
        job.warmupInstructions = request.warmupInstructions;
        job.sampling = request.sampling;
        job.label = !request.label.empty() ? request.label
                                           : request.profile.name;
        if (request.hasHook && context.hookFactory) {
            const SandboxHookFactory &factory = context.hookFactory;
            const trace::WorkloadProfile &profile = request.profile;
            job.makeHook = [&factory, &profile] {
                return factory(profile);
            };
        }

        AttemptContext ctx;
        ctx.jobIndex = static_cast<std::size_t>(request.jobIndex);
        ctx.attempt = request.attempt;
        ctx.deadlineBudget = request.deadlineBudget;
        if (ctx.hasDeadline())
            ctx.deadline = std::chrono::steady_clock::now() +
                           request.deadlineBudget;
        sample::SampleSummary sample_summary;
        ctx.sampleOut = &sample_summary;

        JobResult result;
        const auto start = std::chrono::steady_clock::now();
        try {
            result.cycles = simulate(job, ctx);
            result.status = ResultStatus::Ok;
            if (request.sampling.enabled) {
                result.hasSample = true;
                result.sample = sample_summary;
            }
        } catch (const std::bad_alloc &) {
            // The memory cap is exhausted; composing a message could
            // throw again, so report through the exit code instead.
            std::_Exit(kExitOom);
        } catch (const TransientFault &e) {
            result.status = ResultStatus::Transient;
            result.message = e.what();
        } catch (const DeadlineExceeded &e) {
            result.status = ResultStatus::Deadline;
            result.message = e.what();
        } catch (const ResourceExhausted &e) {
            result.status = ResultStatus::Resource;
            result.message = e.what();
        } catch (const std::exception &e) {
            result.status = ResultStatus::Permanent;
            result.message = e.what();
        }
        result.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        Writer writer;
        result.serialize(writer);
        try {
            writeFrame(result_fd, writer.bytes());
        } catch (const ProtocolError &) {
            return 1; // parent is gone; nothing left to report to
        }
    }
}

SandboxWorker
spawnSandboxWorker(const SandboxContext &context)
{
    int request_pipe[2];
    int result_pipe[2];
    if (::pipe(request_pipe) != 0)
        throw std::runtime_error(
            std::string("sandbox request pipe: ") +
            std::strerror(errno));
    if (::pipe(result_pipe) != 0) {
        ::close(request_pipe[0]);
        ::close(request_pipe[1]);
        throw std::runtime_error(
            std::string("sandbox result pipe: ") +
            std::strerror(errno));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(request_pipe[0]);
        ::close(request_pipe[1]);
        ::close(result_pipe[0]);
        ::close(result_pipe[1]);
        throw std::runtime_error(std::string("sandbox fork: ") +
                                 std::strerror(errno));
    }

    if (pid == 0) {
        ::close(request_pipe[1]);
        ::close(result_pipe[0]);
        closeInheritedFds(request_pipe[0], result_pipe[1]);
        applyLimits(context);
        const int rc =
            runSandboxChild(request_pipe[0], result_pipe[1], context);
        std::_Exit(rc);
    }

    ::close(request_pipe[0]);
    ::close(result_pipe[1]);
    SandboxWorker worker;
    worker.pid = pid;
    worker.requestFd = request_pipe[1];
    worker.resultFd = result_pipe[0];
    return worker;
}

void
closeWorkerPipes(SandboxWorker &worker)
{
    if (worker.requestFd >= 0) {
        ::close(worker.requestFd);
        worker.requestFd = -1;
    }
    if (worker.resultFd >= 0) {
        ::close(worker.resultFd);
        worker.resultFd = -1;
    }
}

} // namespace rigor::exec::proc
