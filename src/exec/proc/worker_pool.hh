/**
 * @file
 * Process-isolated attempt executor: a supervised pool of sandbox
 * workers behind the engine's SimulateFn seam.
 *
 * Thread isolation cannot survive the failure modes that matter most
 * in a 1144-run overnight campaign: a SIGSEGV in one attempt kills
 * the whole process and every completed cell with it, a
 * non-cooperative infinite loop never polls the cooperative deadline,
 * and a runaway allocation invites the kernel OOM killer to shoot the
 * campaign itself. ProcWorkerPool forks N sandbox workers
 * (sandbox_worker.hh) and ships each attempt over pipe IPC
 * (protocol.hh); the blast radius of any crash, hang, or OOM is one
 * attempt of one job.
 *
 * Supervision is a monitor thread on a heartbeat tick: it SIGKILLs
 * any worker that outlives the hard per-attempt deadline (no
 * cooperation needed — the kill lands mid-instruction), and reaps and
 * respawns workers that died while idle. Deaths observed by the
 * dispatching thread (EOF on the result pipe) are classified from the
 * wait status back into the engine's fault taxonomy:
 *
 *   watchdog SIGKILL           -> DeadlineExceeded   (retryable)
 *   SIGXCPU (RLIMIT_CPU)       -> DeadlineExceeded   (retryable)
 *   exit(kExitOom) / bad_alloc -> ResourceExhausted  (permanent)
 *   SIGKILL not from watchdog  -> ResourceExhausted  (kernel OOM)
 *   SIGSEGV/SIGABRT/SIGBUS/... -> PermanentFault     (with run key)
 *
 * so FaultPolicy retries, quarantine, degradation arbitration, and
 * journal resume behave identically under either isolation mode. The
 * dead worker is respawned before the classified fault is thrown, so
 * the pool never shrinks. Counters (engine.proc.respawns / sigkills /
 * oom_kills) and one trace span per worker lifetime make the
 * supervision auditable.
 */

#ifndef RIGOR_EXEC_PROC_WORKER_POOL_HH
#define RIGOR_EXEC_PROC_WORKER_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hh"
#include "exec/proc/sandbox_worker.hh"

namespace rigor::obs
{
class MetricsRegistry;
class TraceWriter;
class Counter;
} // namespace rigor::obs

namespace rigor::exec::proc
{

/** Supervised pool of forked sandbox workers. */
class ProcWorkerPool
{
  public:
    struct Options
    {
        /** Sandbox worker processes; 0 is treated as 1. */
        unsigned workers = 1;
        /** Attempt executor run *inside* the children (inherited at
         *  fork); empty = the engine's default simulator. Fault
         *  injectors wrapped here therefore drill inside the
         *  sandbox. */
        SimulateFn simulate;
        /** Hook builder for jobs with makeHook; the children rebuild
         *  hooks from this instead of shipping closures over IPC. */
        SandboxHookFactory hookFactory;
        /** Per-worker RLIMIT_AS cap in MiB; 0 = unlimited. */
        std::uint64_t memLimitMb = 0;
        /** Per-worker RLIMIT_CPU cap in seconds; 0 = unlimited. */
        std::uint64_t cpuLimitSeconds = 0;
        /**
         * Hard per-attempt deadline: the monitor SIGKILLs a worker
         * busy past it. Needs no cooperation from the simulated code,
         * unlike FaultPolicy::attemptDeadline (which still works
         * inside the sandbox and yields nicer diagnostics — use both:
         * cooperative slightly below hard). Zero disables.
         */
        std::chrono::milliseconds hardDeadline{0};
        /** Monitor tick: watchdog check + idle-death reaping. */
        std::chrono::milliseconds heartbeat{20};
    };

    /** Spawns the workers and starts the monitor thread. SIGPIPE is
     *  ignored for the process lifetime (a dead child must surface
     *  as EPIPE, not kill the campaign). */
    explicit ProcWorkerPool(Options options);

    /** Shuts the monitor down, closes the request pipes (children
     *  exit their loops), and reaps every worker. */
    ~ProcWorkerPool();

    ProcWorkerPool(const ProcWorkerPool &) = delete;
    ProcWorkerPool &operator=(const ProcWorkerPool &) = delete;

    /**
     * The dispatch adapter to install via
     * SimulationEngine::setSimulate. The pool must outlive every
     * batch run through it.
     */
    SimulateFn simulateFn();

    /**
     * Ship one attempt to a free worker and block for its outcome.
     * Returns measured cycles, or throws the classified fault
     * (TransientFault / DeadlineExceeded / ResourceExhausted /
     * PermanentFault — see the file comment). Thread-safe; callers
     * beyond the worker count queue on a condition variable.
     */
    double execute(const SimJob &job, const AttemptContext &ctx);

    unsigned workers() const
    {
        return static_cast<unsigned>(_slots.size());
    }

    /** Workers respawned after any death (all causes). */
    std::uint64_t respawns() const
    {
        return _respawns.load(std::memory_order_relaxed);
    }
    /** Watchdog hard-deadline SIGKILLs issued. */
    std::uint64_t sigkills() const
    {
        return _sigkills.load(std::memory_order_relaxed);
    }
    /** Deaths classified as memory exhaustion (kExitOom exits plus
     *  non-watchdog SIGKILLs). */
    std::uint64_t oomKills() const
    {
        return _oomKills.load(std::memory_order_relaxed);
    }

    /** Attach engine.proc.{respawns,sigkills,oom_kills} counters
     *  (not owned; nullptr detaches). */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** Attach a trace sink: one "proc.worker" span per worker
     *  lifetime, closed at death or shutdown with its exit reason
     *  and jobs served (not owned; nullptr detaches). */
    void setTraceWriter(obs::TraceWriter *trace);

  private:
    struct Slot
    {
        SandboxWorker worker;
        unsigned index = 0;
        bool busy = false;
        /** The watchdog SIGKILLed this worker's current attempt. */
        bool watchdogKilled = false;
        /** Hard-deadline expiry of the current attempt. */
        std::chrono::steady_clock::time_point deadline{};
        /** Jobs answered by this incarnation (trace span arg). */
        std::uint64_t jobsDone = 0;
        /** Trace clock at spawn (span start). */
        std::uint64_t spawnTs = 0;
    };

    /** Close the dead worker's pipes and span, fork a replacement.
     *  Caller holds _mutex and has already reaped the pid. */
    void respawnLocked(Slot &slot, const std::string &exit_reason);
    /** Close @p slot's lifetime trace span. Caller holds _mutex. */
    void closeSpanLocked(const Slot &slot,
                         const std::string &exit_reason);
    /** Throw the fault classified from @p status. Never returns. */
    [[noreturn]] void throwClassified(int status, bool watchdog_killed,
                                      const std::string &identity);
    void monitorLoop();

    Options _options;
    SandboxContext _context;
    std::vector<Slot> _slots;

    std::mutex _mutex;
    std::condition_variable _freeCv;
    std::condition_variable _monitorCv;
    bool _stopping = false;
    std::thread _monitor;

    std::atomic<std::uint64_t> _respawns{0};
    std::atomic<std::uint64_t> _sigkills{0};
    std::atomic<std::uint64_t> _oomKills{0};
    obs::Counter *_respawnCounter = nullptr;
    obs::Counter *_sigkillCounter = nullptr;
    obs::Counter *_oomCounter = nullptr;
    obs::TraceWriter *_trace = nullptr;
};

} // namespace rigor::exec::proc

#endif // RIGOR_EXEC_PROC_WORKER_POOL_HH
