/**
 * @file
 * Wire protocol between the campaign parent and its sandbox workers.
 *
 * One sandbox worker is a forked child connected by two pipes. Every
 * message is a length-prefixed frame (u32 payload size, then the
 * payload), written and read with EINTR-safe full-transfer loops —
 * a short read at a frame boundary is a clean EOF (the peer died or
 * closed), a short read inside a frame is a torn protocol error.
 *
 * Payloads are flat byte buffers built by Writer / consumed by
 * Reader: trivially-copyable values are memcpy'd (ProcessorConfig is
 * statically asserted to qualify), strings are u32-length-prefixed,
 * and WorkloadProfile — which owns a std::string name — is serialized
 * field by field. Both ends are the same binary (fork, no exec), so
 * the format never crosses an ABI boundary and needs no versioning.
 *
 * A JobRequest ships everything one attempt needs: the workload
 * profile, the processor configuration, run lengths, the attempt
 * identity, the cooperative deadline budget, and whether to rebuild
 * the enhancement hook from the pool's hook factory. A JobResult is
 * either measured cycles (plus the child's wall time) or a classified
 * failure message. A worker that cannot even allocate the failure
 * message (memory-limit exhaustion) skips the result frame and exits
 * with kExitOom instead.
 */

#ifndef RIGOR_EXEC_PROC_PROTOCOL_HH
#define RIGOR_EXEC_PROC_PROTOCOL_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "sample/sampling.hh"
#include "sim/config.hh"
#include "trace/workload_profile.hh"

namespace rigor::exec::proc
{

/** A torn frame or hard pipe I/O error (not a clean peer EOF). */
class ProtocolError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * A frame cut off mid-transfer: the peer died or closed inside a
 * frame instead of at a frame boundary. The message always carries
 * the got/expected byte counts, so a truncated final frame (torn
 * pipe, half-written socket, corrupt-frame drill) is diagnosable
 * from the log alone. Shared by the pipe (exec/proc) and TCP
 * (exec/net) transports.
 */
class TruncatedFrame : public ProtocolError
{
    using ProtocolError::ProtocolError;
};

/**
 * Upper bound on one frame's payload. Pipe peers are forked from the
 * same binary and never send more than a JobRequest, but a TCP peer
 * is untrusted input: without the bound, a corrupt or hostile length
 * prefix would make readFrame allocate gigabytes before the first
 * payload byte arrives.
 */
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/**
 * Exit code of a sandbox worker that hit std::bad_alloc so hard it
 * could not allocate a result frame: the parent classifies it as
 * ResourceExhausted without needing any payload.
 */
inline constexpr int kExitOom = 42;

/** How one attempt ended inside the sandbox worker. */
enum class ResultStatus : std::uint8_t
{
    Ok = 0,
    Transient = 1,
    Deadline = 2,
    Resource = 3,
    Permanent = 4,
};

/** Append-only payload builder. */
class Writer
{
  public:
    template <typename T>
    void pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::size_t at = _bytes.size();
        _bytes.resize(at + sizeof(T));
        std::memcpy(_bytes.data() + at, &value, sizeof(T));
    }

    void str(const std::string &value)
    {
        pod(static_cast<std::uint32_t>(value.size()));
        const std::size_t at = _bytes.size();
        _bytes.resize(at + value.size());
        std::memcpy(_bytes.data() + at, value.data(), value.size());
    }

    const std::vector<std::byte> &bytes() const { return _bytes; }

  private:
    std::vector<std::byte> _bytes;
};

/** Bounds-checked payload consumer; throws ProtocolError on
 *  truncation. */
class Reader
{
  public:
    explicit Reader(const std::vector<std::byte> &bytes)
        : _bytes(bytes)
    {
    }

    template <typename T>
    T pod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        need(sizeof(T));
        T value;
        std::memcpy(&value, _bytes.data() + _at, sizeof(T));
        _at += sizeof(T);
        return value;
    }

    std::string str()
    {
        const std::uint32_t size = pod<std::uint32_t>();
        need(size);
        std::string value(
            reinterpret_cast<const char *>(_bytes.data() + _at), size);
        _at += size;
        return value;
    }

    bool done() const { return _at == _bytes.size(); }

  private:
    void need(std::size_t n) const
    {
        if (_at + n > _bytes.size())
            throw TruncatedFrame(
                "truncated protocol payload: need " +
                std::to_string(n) + " bytes at offset " +
                std::to_string(_at) + ", only " +
                std::to_string(_bytes.size() - _at) + " remain of " +
                std::to_string(_bytes.size()));
    }

    const std::vector<std::byte> &_bytes;
    std::size_t _at = 0;
};

/** One attempt shipped to a sandbox worker. */
struct JobRequest
{
    trace::WorkloadProfile profile;
    sim::ProcessorConfig config;
    std::uint64_t instructions = 0;
    std::uint64_t warmupInstructions = 0;
    /** Rebuild the enhancement hook via the pool's hook factory. */
    bool hasHook = false;
    /** Failure-context label ("gzip, design row 17"); shipped so
     *  label-keyed fault drills match inside the sandbox too. */
    std::string label;
    /** Attempt identity (mirrors AttemptContext). */
    std::uint64_t jobIndex = 0;
    std::uint32_t attempt = 1;
    /** Cooperative per-attempt deadline; zero = none. */
    std::chrono::milliseconds deadlineBudget{0};
    /** Sampled-simulation schedule (trivially copyable pod). */
    sample::SamplingOptions sampling;

    void serialize(Writer &out) const;
    static JobRequest deserialize(Reader &in);
};

/** One attempt's outcome shipped back to the parent. */
struct JobResult
{
    ResultStatus status = ResultStatus::Permanent;
    /** Measured cycles; meaningful only for Ok. */
    double cycles = 0.0;
    /** Child-side wall seconds of the attempt. */
    double wallSeconds = 0.0;
    /** Failure message; empty for Ok. */
    std::string message;
    /** True when sample holds a sampled-run summary (Ok + sampling
     *  enabled in the request). */
    bool hasSample = false;
    /** Sampled-run summary (trivially copyable pod). */
    sample::SampleSummary sample;

    void serialize(Writer &out) const;
    static JobResult deserialize(Reader &in);
};

/**
 * Write one frame (u32 length + payload); throws ProtocolError on any
 * I/O failure, including EPIPE from a dead peer (the pool ignores
 * SIGPIPE so the error surfaces here instead of killing the process).
 */
void writeFrame(int fd, const std::vector<std::byte> &payload);

/**
 * Read one frame into @p payload. Returns false on clean EOF at a
 * frame boundary (peer closed or died); throws ProtocolError on a
 * torn frame or hard I/O error.
 */
bool readFrame(int fd, std::vector<std::byte> &payload);

} // namespace rigor::exec::proc

#endif // RIGOR_EXEC_PROC_PROTOCOL_HH
