#include "exec/proc/worker_pool.hh"

#include <csignal>
#include <stdexcept>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "exec/run_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace rigor::exec::proc
{

namespace
{

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGILL:
        return "SIGILL";
      case SIGFPE:
        return "SIGFPE";
      case SIGKILL:
        return "SIGKILL";
      case SIGXCPU:
        return "SIGXCPU";
      case SIGTERM:
        return "SIGTERM";
      default:
        return "signal " + std::to_string(sig);
    }
}

std::string
describeWaitStatus(int status)
{
    if (WIFEXITED(status))
        return "exit:" + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal:" + signalName(WTERMSIG(status));
    return "unknown";
}

/** The failing run's identity for fault messages: label plus the
 *  run-cache key (the journal/manifest key), so a quarantined cell
 *  can be traced to the exact configuration that crashed. */
std::string
jobIdentity(const SimJob &job)
{
    const std::string label =
        !job.label.empty()
            ? "'" + job.label + "'"
            : (job.workload != nullptr ? "'" + job.workload->name + "'"
                                       : "<unlabeled job>");
    if (!job.cacheable() || job.workload == nullptr)
        return label;
    RunKey key;
    key.workload = job.workload->name;
    key.config = job.config;
    key.instructions = job.instructions;
    key.warmupInstructions = job.warmupInstructions;
    key.hookId = job.hookId;
    key.samplingId = job.sampling.id();
    return label + " (run key " + key.toString() + ")";
}

} // namespace

ProcWorkerPool::ProcWorkerPool(Options options)
    : _options(std::move(options))
{
    if (_options.workers == 0)
        _options.workers = 1;
    if (_options.heartbeat.count() <= 0)
        _options.heartbeat = std::chrono::milliseconds(20);

    // A worker that dies holding the far end of a pipe must surface
    // as EPIPE in writeFrame, not as a fatal SIGPIPE to the campaign.
    ::signal(SIGPIPE, SIG_IGN);

    _context.simulate = _options.simulate;
    _context.hookFactory = _options.hookFactory;
    _context.memLimitMb = _options.memLimitMb;
    _context.cpuLimitSeconds = _options.cpuLimitSeconds;

    _slots.resize(_options.workers);
    for (unsigned i = 0; i < _options.workers; ++i) {
        _slots[i].index = i;
        _slots[i].worker = spawnSandboxWorker(_context);
    }

    _monitor = std::thread([this] { monitorLoop(); });
}

ProcWorkerPool::~ProcWorkerPool()
{
    {
        const std::scoped_lock lock(_mutex);
        _stopping = true;
    }
    _monitorCv.notify_all();
    _freeCv.notify_all();
    if (_monitor.joinable())
        _monitor.join();

    for (Slot &slot : _slots) {
        if (!slot.worker.alive())
            continue;
        closeWorkerPipes(slot.worker); // request EOF: child exits
        int status = 0;
        ::waitpid(slot.worker.pid, &status, 0);
        closeSpanLocked(slot, "shutdown");
        slot.worker.pid = -1;
    }
}

void
ProcWorkerPool::setMetrics(obs::MetricsRegistry *metrics)
{
    const std::scoped_lock lock(_mutex);
    if (metrics == nullptr) {
        _respawnCounter = nullptr;
        _sigkillCounter = nullptr;
        _oomCounter = nullptr;
        return;
    }
    _respawnCounter = &metrics->counter("engine.proc.respawns");
    _sigkillCounter = &metrics->counter("engine.proc.sigkills");
    _oomCounter = &metrics->counter("engine.proc.oom_kills");
}

void
ProcWorkerPool::setTraceWriter(obs::TraceWriter *trace)
{
    const std::scoped_lock lock(_mutex);
    _trace = trace;
    if (_trace != nullptr) {
        // Workers spawned before the sink attached get their span
        // opened now, so every lifetime is covered from here on.
        const std::uint64_t now = _trace->nowMicros();
        for (Slot &slot : _slots)
            slot.spawnTs = now;
    }
}

SimulateFn
ProcWorkerPool::simulateFn()
{
    return [this](const SimJob &job, const AttemptContext &ctx) {
        return execute(job, ctx);
    };
}

void
ProcWorkerPool::closeSpanLocked(const Slot &slot,
                                const std::string &exit_reason)
{
    if (_trace == nullptr)
        return;
    obs::TraceWriter::Args args;
    args.emplace_back("worker", std::to_string(slot.index));
    args.emplace_back("jobs", std::to_string(slot.jobsDone));
    args.emplace_back("exit", exit_reason);
    _trace->addCompleteEvent("proc.worker", "proc", slot.spawnTs,
                             _trace->nowMicros() - slot.spawnTs,
                             slot.index + 1, std::move(args));
}

void
ProcWorkerPool::respawnLocked(Slot &slot,
                              const std::string &exit_reason)
{
    closeWorkerPipes(slot.worker);
    closeSpanLocked(slot, exit_reason);
    slot.worker = spawnSandboxWorker(_context);
    slot.jobsDone = 0;
    slot.watchdogKilled = false;
    slot.spawnTs = _trace != nullptr ? _trace->nowMicros() : 0;
    _respawns.fetch_add(1, std::memory_order_relaxed);
    if (_respawnCounter != nullptr)
        _respawnCounter->add();
}

void
ProcWorkerPool::throwClassified(int status, bool watchdog_killed,
                                const std::string &identity)
{
    if (watchdog_killed)
        throw DeadlineExceeded(
            "sandbox worker exceeded the " +
            std::to_string(_options.hardDeadline.count()) +
            " ms hard deadline and was SIGKILLed by the watchdog "
            "while simulating " +
            identity);
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == kExitOom) {
            _oomKills.fetch_add(1, std::memory_order_relaxed);
            if (_oomCounter != nullptr)
                _oomCounter->add();
            throw ResourceExhausted(
                "sandbox worker exhausted its memory limit (" +
                std::to_string(_options.memLimitMb) +
                " MiB) while simulating " + identity);
        }
        throw PermanentFault(
            "sandbox worker exited with code " + std::to_string(code) +
            " without answering while simulating " + identity);
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGKILL) {
            // Not our watchdog, so the kernel's OOM killer is the
            // usual suspect: permanent, like any resource exhaustion.
            _oomKills.fetch_add(1, std::memory_order_relaxed);
            if (_oomCounter != nullptr)
                _oomCounter->add();
            throw ResourceExhausted(
                "sandbox worker was SIGKILLed outside the watchdog "
                "(kernel OOM killer?) while simulating " +
                identity);
        }
        if (sig == SIGXCPU)
            throw DeadlineExceeded(
                "sandbox worker exceeded its CPU time limit "
                "(SIGXCPU) while simulating " +
                identity);
        throw PermanentFault("sandbox worker crashed with " +
                             signalName(sig) + " while simulating " +
                             identity);
    }
    throw PermanentFault(
        "sandbox worker died with unrecognized wait status while "
        "simulating " +
        identity);
}

double
ProcWorkerPool::execute(const SimJob &job, const AttemptContext &ctx)
{
    if (job.workload == nullptr)
        throw PermanentFault("sandbox job carries no workload");
    if (job.makeHook && !_context.hookFactory)
        throw PermanentFault(
            "job " + jobIdentity(job) +
            " has an enhancement hook but the process pool was built "
            "without a hook factory to rebuild it in the sandbox");

    JobRequest request;
    request.profile = *job.workload;
    request.config = job.config;
    request.instructions = job.instructions;
    request.warmupInstructions = job.warmupInstructions;
    request.hasHook = static_cast<bool>(job.makeHook);
    request.label = job.label;
    request.jobIndex = ctx.jobIndex;
    request.attempt = ctx.attempt;
    request.deadlineBudget = ctx.deadlineBudget;
    request.sampling = job.sampling;
    Writer writer;
    request.serialize(writer);

    const std::string identity = jobIdentity(job);

    std::unique_lock<std::mutex> lock(_mutex);
    Slot *checked_out = nullptr;
    _freeCv.wait(lock, [&] {
        if (_stopping)
            return true;
        for (Slot &slot : _slots) {
            if (!slot.busy && slot.worker.alive()) {
                checked_out = &slot;
                return true;
            }
        }
        return false;
    });
    if (_stopping || checked_out == nullptr)
        throw std::logic_error(
            "ProcWorkerPool::execute during pool shutdown");
    Slot &slot = *checked_out;
    slot.busy = true;
    slot.watchdogKilled = false;
    if (_options.hardDeadline.count() > 0)
        slot.deadline =
            std::chrono::steady_clock::now() + _options.hardDeadline;

    // Dispatch. A request frame is far below the pipe's buffer, so
    // the write never blocks; EPIPE means the worker died idle — an
    // incident of the *worker*, not this job, so respawn and retry.
    for (int dispatch = 0;; ++dispatch) {
        try {
            writeFrame(slot.worker.requestFd, writer.bytes());
            break;
        } catch (const ProtocolError &) {
            int status = 0;
            ::waitpid(slot.worker.pid, &status, 0);
            respawnLocked(slot, describeWaitStatus(status));
            if (dispatch >= 2) {
                slot.busy = false;
                lock.unlock();
                _freeCv.notify_one();
                throw TransientFault(
                    "sandbox workers kept dying before accepting "
                    "job " +
                    identity);
            }
        }
    }

    const int result_fd = slot.worker.resultFd;
    const pid_t pid = slot.worker.pid;
    lock.unlock();

    // Block for the outcome with the lock released: the monitor must
    // be able to SIGKILL this very worker while we sit in read().
    std::vector<std::byte> frame;
    bool answered = false;
    try {
        answered = readFrame(result_fd, frame);
    } catch (const ProtocolError &) {
        answered = false; // torn frame: classify from the wait status
    }

    lock.lock();
    if (answered) {
        ++slot.jobsDone;
        if (slot.watchdogKilled) {
            // The answer raced the watchdog's SIGKILL; honor the
            // result, but the worker is dead — replace it.
            int status = 0;
            ::waitpid(pid, &status, 0);
            respawnLocked(slot, "watchdog-sigkill");
        }
        slot.busy = false;
        lock.unlock();
        _freeCv.notify_one();

        Reader reader(frame);
        const JobResult result = JobResult::deserialize(reader);
        switch (result.status) {
          case ResultStatus::Ok:
            if (result.hasSample && ctx.sampleOut != nullptr)
                *ctx.sampleOut = result.sample;
            return result.cycles;
          case ResultStatus::Transient:
            throw TransientFault(result.message);
          case ResultStatus::Deadline:
            throw DeadlineExceeded(result.message);
          case ResultStatus::Resource:
            throw ResourceExhausted(result.message);
          case ResultStatus::Permanent:
            break;
        }
        throw PermanentFault(result.message);
    }

    // EOF without an answer: the worker died mid-attempt. Reap it,
    // refill the pool, then translate the death into the taxonomy.
    const bool watchdog = slot.watchdogKilled;
    int status = 0;
    ::waitpid(pid, &status, 0);
    respawnLocked(slot,
                  watchdog ? "watchdog-sigkill"
                           : describeWaitStatus(status));
    slot.busy = false;
    lock.unlock();
    _freeCv.notify_one();
    throwClassified(status, watchdog, identity);
}

void
ProcWorkerPool::monitorLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_stopping) {
        _monitorCv.wait_for(lock, _options.heartbeat);
        if (_stopping)
            break;
        const auto now = std::chrono::steady_clock::now();
        for (Slot &slot : _slots) {
            if (!slot.worker.alive())
                continue;
            if (slot.busy) {
                if (_options.hardDeadline.count() > 0 &&
                    !slot.watchdogKilled && now >= slot.deadline) {
                    ::kill(slot.worker.pid, SIGKILL);
                    slot.watchdogKilled = true;
                    _sigkills.fetch_add(1, std::memory_order_relaxed);
                    if (_sigkillCounter != nullptr)
                        _sigkillCounter->add();
                }
                continue;
            }
            // Idle-death heartbeat: a worker that died between jobs
            // (external kill, latent corruption) is reaped and
            // replaced here instead of poisoning the next dispatch.
            int status = 0;
            const pid_t reaped =
                ::waitpid(slot.worker.pid, &status, WNOHANG);
            if (reaped == slot.worker.pid)
                respawnLocked(slot, describeWaitStatus(status));
        }
    }
}

} // namespace rigor::exec::proc
