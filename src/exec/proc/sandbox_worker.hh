/**
 * @file
 * One forked sandbox worker: spawn mechanics and the child main loop.
 *
 * A SandboxWorker is a child process connected by a request pipe
 * (parent writes JobRequest frames) and a result pipe (child writes
 * JobResult frames). The child is a pure fork — no exec — so it
 * inherits the pool's simulate function, hook factory, and the whole
 * binary; spawn() only has to plumb the two pipes, drop every other
 * inherited descriptor, and apply the resource caps:
 *
 *  - The fd sweep (/proc/self/fd) is load-bearing, not hygiene: a
 *    child forked while sibling workers exist inherits the write ends
 *    of *their* result pipes, and as long as anyone holds a write end
 *    open the parent's blocking read never sees EOF — a sibling's
 *    crash would then hang the campaign instead of being classified.
 *  - setrlimit(RLIMIT_AS) caps the child's address space so a runaway
 *    allocation dies as std::bad_alloc (clean kExitOom exit) or an
 *    OOM kill inside the sandbox, never by taking down the parent.
 *  - setrlimit(RLIMIT_CPU) backstops compute runaways with SIGXCPU /
 *    SIGKILL from the kernel, independent of the parent's watchdog.
 *
 * The child main loop reads requests until EOF (parent closed the
 * request pipe = orderly shutdown), executes each attempt with the
 * configured simulate function, and maps C++ failures onto
 * ResultStatus. Anything the child cannot catch — SIGSEGV, SIGABRT,
 * the kernel OOM killer, the watchdog's SIGKILL — is classified by
 * the parent from the wait status instead.
 */

#ifndef RIGOR_EXEC_PROC_SANDBOX_WORKER_HH
#define RIGOR_EXEC_PROC_SANDBOX_WORKER_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "exec/engine.hh"
#include "exec/proc/protocol.hh"
#include "sim/core.hh"
#include "trace/workload_profile.hh"

#include <sys/types.h>

namespace rigor::exec::proc
{

/**
 * Builds the enhancement hook for one run inside the child (same
 * shape as methodology::HookFactory; duplicated here because exec
 * must not depend on the methodology layer).
 */
using SandboxHookFactory =
    std::function<std::unique_ptr<sim::ExecutionHook>(
        const trace::WorkloadProfile &profile)>;

/** Everything the child main loop needs (inherited through fork). */
struct SandboxContext
{
    /** Attempt executor; empty = the engine's default simulator. */
    SimulateFn simulate;
    /** Hook builder for requests with hasHook; may be empty. */
    SandboxHookFactory hookFactory;
    /** RLIMIT_AS cap in MiB; 0 = unlimited. */
    std::uint64_t memLimitMb = 0;
    /** RLIMIT_CPU cap in seconds; 0 = unlimited. */
    std::uint64_t cpuLimitSeconds = 0;
};

/** Parent-side handle of one spawned worker process. */
struct SandboxWorker
{
    pid_t pid = -1;
    /** Parent's write end of the request pipe. */
    int requestFd = -1;
    /** Parent's read end of the result pipe. */
    int resultFd = -1;

    bool alive() const { return pid > 0; }
};

/**
 * Fork one sandbox worker running runSandboxChild over @p context.
 * Throws std::runtime_error if pipe() or fork() fails. The returned
 * handle owns both descriptors; close them with closeWorkerPipes().
 */
SandboxWorker spawnSandboxWorker(const SandboxContext &context);

/** Close the parent-side pipe ends (idempotent). Closing requestFd
 *  is what tells the child to exit its request loop. */
void closeWorkerPipes(SandboxWorker &worker);

/**
 * The child main loop (exposed for white-box testing; normally only
 * called by spawnSandboxWorker inside the fork). Reads JobRequest
 * frames from @p request_fd until EOF, answers each on @p result_fd.
 * Returns the child's exit code.
 */
int runSandboxChild(int request_fd, int result_fd,
                    const SandboxContext &context);

} // namespace rigor::exec::proc

#endif // RIGOR_EXEC_PROC_SANDBOX_WORKER_HH
