/**
 * @file
 * Work-stealing distribution of simulation job indices.
 *
 * Simulation batches are embarrassingly parallel but far from
 * uniform: a low-level memory-bound configuration simulates several
 * times slower than a high-level one, so a static block partition
 * leaves workers idle at the tail of every batch. SimJobQueue deals
 * contiguous index ranges to per-worker deques (preserving whatever
 * locality adjacent jobs share) and lets an empty worker steal the
 * back half of the fullest remaining deque — the classic
 * work-stealing shape, with plain mutexes per deque because each job
 * is milliseconds of simulation, not nanoseconds of arithmetic.
 */

#ifndef RIGOR_EXEC_SIM_JOB_QUEUE_HH
#define RIGOR_EXEC_SIM_JOB_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace rigor::exec
{

/** Distributes the indices [0, num_jobs) across workers. */
class SimJobQueue
{
  public:
    /**
     * @param num_jobs total job count in the batch
     * @param num_workers worker count; each worker passes its id
     *        (0-based) to pop()
     */
    SimJobQueue(std::size_t num_jobs, unsigned num_workers);

    /**
     * Take the next job for @p worker — from its own deque, else by
     * stealing from the most loaded other deque.
     *
     * @return false when the whole batch is drained
     */
    bool pop(unsigned worker, std::size_t &job);

    /** Successful steal operations so far (observability). */
    std::uint64_t steals() const
    {
        return _steals.load(std::memory_order_relaxed);
    }

    /** Jobs the queue was seeded with (initial depth). */
    std::size_t initialDepth() const { return _initialDepth; }

  private:
    struct Shard
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
        /** Relaxed mirror of jobs.size() for lock-free victim picks. */
        std::atomic<std::size_t> approxSize{0};
    };

    /** Steal roughly half of the fullest victim into local storage. */
    bool steal(unsigned thief, std::vector<std::size_t> &loot);

    std::vector<std::unique_ptr<Shard>> _shards;
    std::atomic<std::uint64_t> _steals{0};
    std::size_t _initialDepth = 0;
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_SIM_JOB_QUEUE_HH
