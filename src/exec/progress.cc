#include "exec/progress.hh"

#include <sstream>

namespace rigor::exec
{

std::string
ProgressSnapshot::toString() const
{
    std::ostringstream os;
    os << runsCompleted << "/" << runsTotal << " runs, " << cacheHits
       << " cache hits, ";
    if (journalHits != 0)
        os << journalHits << " journal replays, ";
    if (retries != 0)
        os << retries << " retries, ";
    if (failedJobs != 0)
        os << failedJobs << " failed, ";
    os << simulatedInstructions << " instructions simulated, "
       << wallSeconds << " s wall";
    return os.str();
}

ProgressSnapshot
ProgressReporter::snapshot() const
{
    ProgressSnapshot s;
    s.runsTotal = _runsTotal.load(std::memory_order_relaxed);
    s.runsCompleted = _runsCompleted.load(std::memory_order_relaxed);
    s.cacheHits = _cacheHits.load(std::memory_order_relaxed);
    s.journalHits = _journalHits.load(std::memory_order_relaxed);
    s.retries = _retries.load(std::memory_order_relaxed);
    s.failedJobs = _failedJobs.load(std::memory_order_relaxed);
    s.simulatedInstructions =
        _simulatedInstructions.load(std::memory_order_relaxed);
    s.wallSeconds =
        static_cast<double>(
            _wallNanos.load(std::memory_order_relaxed)) *
        1e-9;
    return s;
}

void
ProgressReporter::reset()
{
    _runsTotal.store(0, std::memory_order_relaxed);
    _runsCompleted.store(0, std::memory_order_relaxed);
    _cacheHits.store(0, std::memory_order_relaxed);
    _journalHits.store(0, std::memory_order_relaxed);
    _retries.store(0, std::memory_order_relaxed);
    _failedJobs.store(0, std::memory_order_relaxed);
    _simulatedInstructions.store(0, std::memory_order_relaxed);
    _wallNanos.store(0, std::memory_order_relaxed);
}

} // namespace rigor::exec
