#include "exec/progress.hh"

#include <sstream>

namespace rigor::exec
{

std::string
ProgressSnapshot::toString() const
{
    std::ostringstream os;
    os << runsCompleted << "/" << runsTotal << " runs, " << cacheHits
       << " cache hits, " << simulatedInstructions
       << " instructions simulated, " << wallSeconds << " s wall";
    return os.str();
}

ProgressSnapshot
ProgressReporter::snapshot() const
{
    ProgressSnapshot s;
    s.runsTotal = _runsTotal.load(std::memory_order_relaxed);
    s.runsCompleted = _runsCompleted.load(std::memory_order_relaxed);
    s.cacheHits = _cacheHits.load(std::memory_order_relaxed);
    s.simulatedInstructions =
        _simulatedInstructions.load(std::memory_order_relaxed);
    s.wallSeconds =
        static_cast<double>(
            _wallNanos.load(std::memory_order_relaxed)) *
        1e-9;
    return s;
}

void
ProgressReporter::reset()
{
    _runsTotal.store(0, std::memory_order_relaxed);
    _runsCompleted.store(0, std::memory_order_relaxed);
    _cacheHits.store(0, std::memory_order_relaxed);
    _simulatedInstructions.store(0, std::memory_order_relaxed);
    _wallNanos.store(0, std::memory_order_relaxed);
}

} // namespace rigor::exec
