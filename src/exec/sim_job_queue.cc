#include "exec/sim_job_queue.hh"

#include <algorithm>

namespace rigor::exec
{

SimJobQueue::SimJobQueue(std::size_t num_jobs, unsigned num_workers)
    : _initialDepth(num_jobs)
{
    const unsigned shards = std::max(1u, num_workers);
    _shards.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        _shards.push_back(std::make_unique<Shard>());

    // Contiguous ranges: worker s owns jobs [s*chunk, ...).
    const std::size_t chunk =
        std::max<std::size_t>((num_jobs + shards - 1) / shards, 1);
    for (std::size_t job = 0; job < num_jobs; ++job) {
        Shard &shard =
            *_shards[std::min<std::size_t>(job / chunk, shards - 1)];
        shard.jobs.push_back(job);
    }
    for (const std::unique_ptr<Shard> &shard : _shards)
        shard->approxSize.store(shard->jobs.size(),
                                std::memory_order_relaxed);
}

bool
SimJobQueue::pop(unsigned worker, std::size_t &job)
{
    Shard &own = *_shards[worker % _shards.size()];
    {
        const std::scoped_lock lock(own.mutex);
        if (!own.jobs.empty()) {
            job = own.jobs.front();
            own.jobs.pop_front();
            own.approxSize.store(own.jobs.size(),
                                 std::memory_order_relaxed);
            return true;
        }
    }

    // Own deque drained: steal half of the fullest victim. The loot
    // is taken under the victim's lock only, then re-homed under our
    // own lock — never two locks at once, so no ordering issues.
    std::vector<std::size_t> loot;
    if (!steal(static_cast<unsigned>(worker % _shards.size()), loot))
        return false;
    job = loot.front();
    if (loot.size() > 1) {
        const std::scoped_lock lock(own.mutex);
        own.jobs.insert(own.jobs.end(), loot.begin() + 1, loot.end());
        own.approxSize.store(own.jobs.size(),
                             std::memory_order_relaxed);
    }
    return true;
}

bool
SimJobQueue::steal(unsigned thief, std::vector<std::size_t> &loot)
{
    for (;;) {
        // Pick the victim with the most remaining work. The sizes are
        // sampled from the relaxed mirrors (the deques themselves are
        // only touched under their locks); staleness just means a
        // slightly suboptimal victim.
        std::size_t victim = _shards.size();
        std::size_t victim_size = 0;
        for (std::size_t s = 0; s < _shards.size(); ++s) {
            if (s == thief)
                continue;
            const std::size_t size =
                _shards[s]->approxSize.load(std::memory_order_relaxed);
            if (size > victim_size) {
                victim = s;
                victim_size = size;
            }
        }
        if (victim == _shards.size())
            return false;

        Shard &target = *_shards[victim];
        const std::scoped_lock lock(target.mutex);
        if (target.jobs.empty())
            continue; // raced to empty; re-scan for another victim
        const std::size_t take = (target.jobs.size() + 1) / 2;
        loot.assign(target.jobs.end() - static_cast<std::ptrdiff_t>(take),
                    target.jobs.end());
        target.jobs.erase(
            target.jobs.end() - static_cast<std::ptrdiff_t>(take),
            target.jobs.end());
        target.approxSize.store(target.jobs.size(),
                                std::memory_order_relaxed);
        _steals.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
}

} // namespace rigor::exec
