/**
 * @file
 * Thread-safe progress accounting for batched simulation runs.
 *
 * Every simulation driver in this repository ultimately pushes jobs
 * through exec::SimulationEngine; the engine feeds a ProgressReporter
 * so that long experiments (the 1144-run Table 9 sweep, the workflow's
 * full factorial) can expose live counters to the bench harnesses and
 * examples without any locking on the simulation fast path.
 */

#ifndef RIGOR_EXEC_PROGRESS_HH
#define RIGOR_EXEC_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace rigor::exec
{

/** One consistent-enough view of the counters (snapshot semantics). */
struct ProgressSnapshot
{
    /** Jobs submitted across all batches. */
    std::uint64_t runsTotal = 0;
    /** Jobs finished (simulated or served from cache). */
    std::uint64_t runsCompleted = 0;
    /** Jobs satisfied by the RunCache without simulating. */
    std::uint64_t cacheHits = 0;
    /** Jobs replayed from a crash-safe ResultJournal (resume). */
    std::uint64_t journalHits = 0;
    /** Extra attempts made after transient/timeout failures. */
    std::uint64_t retries = 0;
    /** Jobs that ended in a terminal failure (quarantined or
     *  batch-cancelling, depending on the FaultPolicy). */
    std::uint64_t failedJobs = 0;
    /** Dynamic instructions actually simulated (warm-up included;
     *  cache hits contribute nothing). */
    std::uint64_t simulatedInstructions = 0;
    /** Wall-clock seconds spent inside engine batches. */
    double wallSeconds = 0.0;

    /** One-line rendering for bench/example status output. */
    std::string toString() const;
};

/** Lock-free counter set shared by the engine's workers. */
class ProgressReporter
{
  public:
    void addSubmitted(std::uint64_t jobs)
    {
        _runsTotal.fetch_add(jobs, std::memory_order_relaxed);
    }

    void addCompleted()
    {
        _runsCompleted.fetch_add(1, std::memory_order_relaxed);
    }

    void addCacheHit()
    {
        _cacheHits.fetch_add(1, std::memory_order_relaxed);
    }

    void addJournalHit()
    {
        _journalHits.fetch_add(1, std::memory_order_relaxed);
    }

    void addRetry()
    {
        _retries.fetch_add(1, std::memory_order_relaxed);
    }

    void addFailed()
    {
        _failedJobs.fetch_add(1, std::memory_order_relaxed);
    }

    void addSimulatedInstructions(std::uint64_t instructions)
    {
        _simulatedInstructions.fetch_add(instructions,
                                         std::memory_order_relaxed);
    }

    void addWallNanos(std::uint64_t nanos)
    {
        _wallNanos.fetch_add(nanos, std::memory_order_relaxed);
    }

    ProgressSnapshot snapshot() const;

    /** Zero every counter (fresh experiment on a reused engine). */
    void reset();

  private:
    std::atomic<std::uint64_t> _runsTotal{0};
    std::atomic<std::uint64_t> _runsCompleted{0};
    std::atomic<std::uint64_t> _cacheHits{0};
    std::atomic<std::uint64_t> _journalHits{0};
    std::atomic<std::uint64_t> _retries{0};
    std::atomic<std::uint64_t> _failedJobs{0};
    std::atomic<std::uint64_t> _simulatedInstructions{0};
    std::atomic<std::uint64_t> _wallNanos{0};
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_PROGRESS_HH
