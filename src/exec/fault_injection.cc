#include "exec/fault_injection.hh"

#include <chrono>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include <csignal>

namespace rigor::exec
{

std::string
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Transient:
        return "transient";
      case FaultKind::Permanent:
        return "permanent";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::Segfault:
        return "segfault";
      case FaultKind::Abort:
        return "abort";
      case FaultKind::BusyLoop:
        return "busy-loop";
      case FaultKind::AllocBomb:
        return "alloc-bomb";
      case FaultKind::KillWorker:
        return "kill";
      case FaultKind::DropConnection:
        return "drop-connection";
      case FaultKind::StallHeartbeat:
        return "stall-heartbeat";
      case FaultKind::CorruptFrame:
        return "corrupt-frame";
      case FaultKind::Partition:
        return "partition";
      case FaultKind::ReconnectStorm:
        return "reconnect-storm";
      case FaultKind::SlowLoris:
        return "slow-loris";
      case FaultKind::DuplicateSession:
        return "duplicate-session";
      case FaultKind::TokenMismatch:
        return "token-mismatch";
    }
    return "unknown";
}

namespace
{

/** Kinds that must fire once per planned entry: their drills requeue
 *  the same (job, attempt) locally, which would match the plan again
 *  on re-execution and loop forever. */
bool
isOneShot(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Partition:
      case FaultKind::ReconnectStorm:
      case FaultKind::SlowLoris:
      case FaultKind::DuplicateSession:
      case FaultKind::TokenMismatch:
        return true;
      default:
        return false;
    }
}

} // namespace

void
FaultInjector::addFault(std::size_t jobIndex, unsigned attempt,
                        FaultKind kind)
{
    if (attempt == 0)
        throw std::invalid_argument(
            "FaultInjector::addFault: attempts are 1-based");
    _byIndex[{jobIndex, attempt}] = kind;
}

void
FaultInjector::addLabelFault(std::string labelSubstring,
                             unsigned attempt, FaultKind kind)
{
    if (attempt == 0)
        throw std::invalid_argument(
            "FaultInjector::addLabelFault: attempts are 1-based");
    if (labelSubstring.empty())
        throw std::invalid_argument(
            "FaultInjector::addLabelFault: empty substring would "
            "fault every job");
    _byLabel.push_back(
        {std::move(labelSubstring), attempt, kind});
}

void
FaultInjector::planRandomTransients(std::size_t numJobs,
                                    unsigned attempts,
                                    double transientRate,
                                    std::uint64_t seed)
{
    if (attempts < 2)
        throw std::invalid_argument(
            "FaultInjector::planRandomTransients: a healable plan "
            "needs a policy with at least 2 attempts");
    if (transientRate < 0.0 || transientRate > 1.0)
        throw std::invalid_argument(
            "FaultInjector::planRandomTransients: transientRate must "
            "be in [0, 1]");
    // mt19937_64 + explicit seed: the plan is a pure function of the
    // arguments, so a failing CI run is replayable locally.
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (std::size_t job = 0; job < numJobs; ++job) {
        if (coin(rng) >= transientRate)
            continue;
        // Fault every attempt but the last, so the plan as a whole is
        // survivable under a policy granting `attempts` attempts.
        for (unsigned a = 1; a < attempts; ++a)
            _byIndex[{job, a}] = FaultKind::Transient;
    }
}

void
FaultInjector::raise(FaultKind kind, const SimJob &job,
                     const AttemptContext &ctx) const
{
    switch (kind) {
      case FaultKind::Transient:
        _transientsRaised.fetch_add(1, std::memory_order_relaxed);
        throw TransientFault("injected transient fault (job " +
                             std::to_string(ctx.jobIndex) +
                             ", attempt " +
                             std::to_string(ctx.attempt) + ")");
      case FaultKind::Permanent:
        _permanentsRaised.fetch_add(1, std::memory_order_relaxed);
        throw PermanentFault("injected permanent fault (job " +
                             std::to_string(ctx.jobIndex) +
                             ", attempt " +
                             std::to_string(ctx.attempt) + ")");
      case FaultKind::Hang:
        if (!ctx.hasDeadline())
            throw std::logic_error(
                "FaultInjector: hang injected for job '" + job.label +
                "' but the FaultPolicy sets no attemptDeadline — the "
                "hang would wedge the worker forever");
        _hangsRaised.fetch_add(1, std::memory_order_relaxed);
        // Simulate a wedged run: make no progress until the
        // cooperative watchdog path (checkDeadline) fires.
        for (;;) {
            ctx.checkDeadline();
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
      case FaultKind::Segfault: {
        _processFaultsRaised.fetch_add(1, std::memory_order_relaxed);
        volatile int *null_cell = nullptr;
        *null_cell = 1; // SIGSEGV
        break;
      }
      case FaultKind::Abort:
        _processFaultsRaised.fetch_add(1, std::memory_order_relaxed);
        std::abort();
      case FaultKind::BusyLoop: {
        _processFaultsRaised.fetch_add(1, std::memory_order_relaxed);
        // Deliberately never polls ctx.checkDeadline(): only a hard
        // kill (the process pool's watchdog) can end this. The
        // volatile sink keeps the loop observable — an empty
        // side-effect-free infinite loop is undefined behavior.
        volatile std::uint64_t sink = 0;
        for (;;)
            sink = sink + 1;
      }
      case FaultKind::AllocBomb: {
        _processFaultsRaised.fetch_add(1, std::memory_order_relaxed);
        // Touch every page so the allocation is real, not a lazy
        // mapping the kernel never backs; ends in std::bad_alloc
        // (sandbox RLIMIT_AS) or an OOM kill.
        std::vector<std::unique_ptr<char[]>> hoard;
        constexpr std::size_t kChunk = 16u * 1024 * 1024;
        for (;;) {
            hoard.push_back(std::make_unique<char[]>(kChunk));
            char *chunk = hoard.back().get();
            for (std::size_t at = 0; at < kChunk; at += 4096)
                chunk[at] = static_cast<char>(at);
        }
      }
      case FaultKind::KillWorker:
        _processFaultsRaised.fetch_add(1, std::memory_order_relaxed);
        ::raise(SIGKILL);
        break;
      case FaultKind::DropConnection:
      case FaultKind::StallHeartbeat:
      case FaultKind::CorruptFrame:
      case FaultKind::Partition:
      case FaultKind::ReconnectStorm:
      case FaultKind::SlowLoris:
      case FaultKind::DuplicateSession:
      case FaultKind::TokenMismatch:
        _netDrillsRaised.fetch_add(1, std::memory_order_relaxed);
        // The remote worker's executor catches this and performs the
        // actual network misbehavior; anywhere else it propagates as
        // a permanent fault (a net drill needs a remote worker).
        throw NetDrillFault(
            kind, "injected network drill " + toString(kind) +
                      " (job " + std::to_string(ctx.jobIndex) +
                      ", attempt " + std::to_string(ctx.attempt) +
                      ")");
    }
}

bool
FaultInjector::armOneShot(FaultKind kind, std::size_t entry) const
{
    if (!isOneShot(kind))
        return true;
    const std::lock_guard<std::mutex> lock(_firedMutex);
    return _fired.insert(entry).second;
}

SimulateFn
FaultInjector::wrap(SimulateFn inner) const
{
    if (!inner)
        inner = [](const SimJob &job, const AttemptContext &ctx) {
            return SimulationEngine::simulateJob(job, ctx);
        };
    return [this, inner = std::move(inner)](
               const SimJob &job, const AttemptContext &ctx) {
        const auto it = _byIndex.find({ctx.jobIndex, ctx.attempt});
        if (it != _byIndex.end() &&
            armOneShot(it->second,
                       _byLabel.size() +
                           static_cast<std::size_t>(std::distance(
                               _byIndex.begin(), it)))) {
            raise(it->second, job, ctx);
        }
        for (std::size_t entry = 0; entry < _byLabel.size();
             ++entry) {
            const LabelFault &fault = _byLabel[entry];
            if (fault.attempt == ctx.attempt &&
                job.label.find(fault.substring) !=
                    std::string::npos &&
                armOneShot(fault.kind, entry))
                raise(fault.kind, job, ctx);
        }
        return inner(job, ctx);
    };
}

} // namespace rigor::exec
