/**
 * @file
 * Deterministic seeded fault injection for the execution engine.
 *
 * Every recovery path of the fault-tolerance layer — retry healing,
 * backoff, deadline trips, quarantine, degradation — must be
 * testable without flaky real-world failures. FaultInjector wraps a
 * SimulateFn and raises chosen faults on chosen (job, attempt)
 * pairs:
 *
 *  - Transient: throws TransientFault (healed by a retry when the
 *    policy allows one);
 *  - Permanent: throws PermanentFault (never retried);
 *  - Hang: spins cooperatively until the attempt deadline trips,
 *    then lets DeadlineExceeded propagate — exactly the path a
 *    wedged real simulation takes through the watchdog.
 *
 * The process-level kinds drill the sandbox backend (exec/proc/):
 * they take the executing process down with them, so they are only
 * survivable under IsolationMode::Process, where the drill lands in a
 * forked worker and the pool classifies the death:
 *
 *  - Segfault: write through a null pointer (SIGSEGV);
 *  - Abort: std::abort() (SIGABRT);
 *  - BusyLoop: a non-cooperative infinite loop that never polls the
 *    attempt deadline — only the watchdog's SIGKILL ends it;
 *  - AllocBomb: allocate without bound until std::bad_alloc (the
 *    sandbox memory cap) or the kernel OOM killer intervenes;
 *  - KillWorker: raise(SIGKILL) — an externally shot worker.
 *
 * The network kinds drill the distributed backend (exec/net/): they
 * throw NetDrillFault, which the remote worker's executor intercepts
 * and converts into the real network misbehavior — an abruptly
 * dropped connection, a stalled heartbeat that outlives the lease, a
 * deliberately truncated frame — so lease reclaim, requeue, and
 * late-result rejection are testable without real network flakes.
 * Raised outside a remote worker, a NetDrillFault propagates as an
 * ordinary exception and is classified permanent.
 *
 * Faults are keyed by batch job index or by a substring of the job's
 * label ("gzip, factorial cell 0"), so a test or a campaign drill
 * can target one (benchmark, design row) cell precisely. planRandom
 * seeds a reproducible storm of transient faults: the same seed
 * always faults the same (job, attempt) pairs.
 */

#ifndef RIGOR_EXEC_FAULT_INJECTION_HH
#define RIGOR_EXEC_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "exec/engine.hh"

namespace rigor::exec
{

/** What an injected fault does to the attempt. */
enum class FaultKind
{
    /** Throw TransientFault (retry heals it). */
    Transient,
    /** Throw PermanentFault (no retry is made). */
    Permanent,
    /** Spin until the attempt deadline trips (DeadlineExceeded). */
    Hang,
    /** Crash the executing process with SIGSEGV (null write). */
    Segfault,
    /** Crash the executing process with SIGABRT (std::abort). */
    Abort,
    /** Non-cooperative infinite loop: never polls the deadline, so
     *  only the process pool's hard-deadline SIGKILL ends it. */
    BusyLoop,
    /** Allocate without bound until bad_alloc / the OOM killer. */
    AllocBomb,
    /** raise(SIGKILL): the worker is shot from outside. */
    KillWorker,
    /** Remote worker: abruptly close the controller connection
     *  mid-lease (the controller reclaims and requeues). */
    DropConnection,
    /** Remote worker: stop heartbeating past the lease, then send
     *  the stale result late (drills reclaim + late rejection). */
    StallHeartbeat,
    /** Remote worker: send a deliberately truncated frame and close
     *  (drills the controller's TruncatedFrame handling). */
    CorruptFrame,
    /** Remote worker: drop the connection but keep the job for the
     *  resumed session — the cell completes under its original lease
     *  (drills session parking / lease handback). One-shot. */
    Partition,
    /** Remote worker: a partition followed by rapid connect/resume/
     *  hang-up cycles (drills repeated park/resume). One-shot. */
    ReconnectStorm,
    /** Remote worker: trickle a valid result frame a few bytes at a
     *  time (drills the controller's blocking reader). One-shot. */
    SlowLoris,
    /** Remote worker: probe the controller with a second handshake
     *  reusing the live session id; expect SessionRejected, then run
     *  the job normally (drills split-brain protection). One-shot. */
    DuplicateSession,
    /** Remote worker: probe the controller with a wrong-token
     *  handshake; expect AuthRejected, then run the job normally
     *  (drills the auth gate). One-shot. */
    TokenMismatch,
};

/** Display name ("transient" / "permanent" / "hang" / "segfault" /
 *  "abort" / "busy-loop" / "alloc-bomb" / "kill" / "drop-connection"
 *  / "stall-heartbeat" / "corrupt-frame" / "partition" /
 *  "reconnect-storm" / "slow-loris" / "duplicate-session" /
 *  "token-mismatch"). */
std::string toString(FaultKind kind);

/**
 * An injected network drill in flight. Thrown by the injector for the
 * net-level kinds and caught by the remote worker's job executor,
 * which performs the actual misbehavior on its controller connection.
 * Any other executor lets it propagate: it is not a TransientFault,
 * so the engine classifies it permanent — a net drill landing outside
 * a remote worker is a configuration error worth surfacing loudly.
 */
class NetDrillFault : public std::runtime_error
{
  public:
    NetDrillFault(FaultKind kind, const std::string &message)
        : std::runtime_error(message), _kind(kind)
    {
    }

    FaultKind kind() const { return _kind; }

  private:
    FaultKind _kind;
};

/** Deterministic (job, attempt) -> fault plan around a SimulateFn. */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Fault attempt @p attempt (1-based) of batch job @p jobIndex. */
    void addFault(std::size_t jobIndex, unsigned attempt,
                  FaultKind kind);

    /**
     * Fault attempt @p attempt of every job whose label contains
     * @p labelSubstring — the way to target "gzip, design row 17"
     * across batches whose job indexing differs.
     */
    void addLabelFault(std::string labelSubstring, unsigned attempt,
                       FaultKind kind);

    /**
     * Seeded storm: for each job in [0, numJobs), with probability
     * @p transientRate, inject transient faults on attempts
     * 1..(attempts-1) — every planned fault is healed by a policy
     * allowing @p attempts attempts. Identical (seed, numJobs,
     * attempts, rate) always plans identical faults.
     */
    void planRandomTransients(std::size_t numJobs, unsigned attempts,
                              double transientRate,
                              std::uint64_t seed);

    /**
     * The engine-facing executor: checks the plan, raises the fault
     * or defers to @p inner (default: the engine's deadline-guarded
     * real simulator). The injector must outlive the engine runs
     * using the returned function.
     */
    SimulateFn wrap(SimulateFn inner = {}) const;

    /** Faults actually raised so far, by kind. */
    std::uint64_t transientsRaised() const
    {
        return _transientsRaised.load(std::memory_order_relaxed);
    }
    std::uint64_t permanentsRaised() const
    {
        return _permanentsRaised.load(std::memory_order_relaxed);
    }
    std::uint64_t hangsRaised() const
    {
        return _hangsRaised.load(std::memory_order_relaxed);
    }
    /** Process-level drills triggered (Segfault/Abort/BusyLoop/
     *  AllocBomb/KillWorker). Only observable when the injector runs
     *  in the counting process — under process isolation the drill
     *  fires inside a forked worker, whose counter dies with it. */
    std::uint64_t processFaultsRaised() const
    {
        return _processFaultsRaised.load(std::memory_order_relaxed);
    }
    /** Network drills thrown (DropConnection/StallHeartbeat/
     *  CorruptFrame) — counted where the injector runs, i.e. in the
     *  remote worker process for a distributed campaign. */
    std::uint64_t netDrillsRaised() const
    {
        return _netDrillsRaised.load(std::memory_order_relaxed);
    }

    /** Planned fault count (index- plus label-keyed). */
    std::size_t plannedFaults() const
    {
        return _byIndex.size() + _byLabel.size();
    }

  private:
    struct LabelFault
    {
        std::string substring;
        unsigned attempt;
        FaultKind kind;
    };

    void raise(FaultKind kind, const SimJob &job,
               const AttemptContext &ctx) const;
    /** One-shot arming: true the first time this planned entry is
     *  hit, false on every later match. The session-resume drills
     *  re-execute the same (job, attempt) after a local requeue, so
     *  without this they would refire forever. */
    bool armOneShot(FaultKind kind, std::size_t entry) const;

    std::map<std::pair<std::size_t, unsigned>, FaultKind> _byIndex;
    std::vector<LabelFault> _byLabel;
    mutable std::mutex _firedMutex;
    /** Consumed one-shot entries: label-fault index, or vector size
     *  plus the by-index entry's ordinal. */
    mutable std::set<std::size_t> _fired;
    mutable std::atomic<std::uint64_t> _transientsRaised{0};
    mutable std::atomic<std::uint64_t> _permanentsRaised{0};
    mutable std::atomic<std::uint64_t> _hangsRaised{0};
    mutable std::atomic<std::uint64_t> _processFaultsRaised{0};
    mutable std::atomic<std::uint64_t> _netDrillsRaised{0};
};

} // namespace rigor::exec

#endif // RIGOR_EXEC_FAULT_INJECTION_HH
