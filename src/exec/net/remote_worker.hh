/**
 * @file
 * Worker side of the distributed campaign backend.
 *
 * runRemoteWorker connects to a CampaignController, handshakes
 * (Hello/HelloAck, an HMAC AuthProof when the controller demands one,
 * SessionAck), and serves leased jobs until the controller says
 * Shutdown or the connection dies: a heartbeat thread beacons at the
 * cadence the controller advertised, and `slots` executor threads
 * pull JobAssign frames off the session queue, run them through the
 * configured SimulateFn (the in-process simulator by default; a
 * ProcWorkerPool dispatch function for sandboxed execution; a
 * FaultInjector wrap for drills), and answer JobDone with the same
 * classified JobResult the sandbox pipes use.
 *
 * Session resume. The worker presents a durable session id in every
 * Hello. When the connection breaks mid-lease (network flake, drill)
 * and reconnectAttempts allows it, runRemoteWorker reconnects with
 * the same id and declares the leases it still holds: queued
 * assignments keep executing under their original leases, and results
 * computed during the partition are handed back on the new connection
 * — the controller sees zero requeues. Only when the controller
 * refuses to resume (grace window lapsed) is the carried-over state
 * discarded; the controller has requeued those cells elsewhere.
 *
 * Drain. A caller-owned atomic flag (options.drainFlag, typically
 * flipped by a SIGTERM handler) makes the worker announce Drain to
 * the controller — which stops granting it leases — finish whatever
 * it already holds, and close the session with SessionEnd::Drained.
 *
 * Network fault drills: a NetDrillFault thrown by the injector is
 * intercepted here and turned into the real misbehavior on the live
 * connection — DropConnection slams the socket shut mid-lease,
 * StallHeartbeat goes silent for twice the lease and then answers on
 * the (by now reclaimed) stale lease, CorruptFrame sends a
 * deliberately truncated frame, Partition drops the connection but
 * keeps the job for the resumed session, ReconnectStorm follows a
 * partition with rapid connect/resume/disconnect cycles, SlowLoris
 * trickles a result frame byte by byte, DuplicateSession and
 * TokenMismatch probe the controller with rogue handshakes — so the
 * controller's reclaim, resume, auth, and late-result paths are all
 * testable deterministically.
 */

#ifndef RIGOR_EXEC_NET_REMOTE_WORKER_HH
#define RIGOR_EXEC_NET_REMOTE_WORKER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "exec/engine.hh"
#include "exec/proc/sandbox_worker.hh"

namespace rigor::exec::net
{

/** One worker session's knobs. */
struct RemoteWorkerOptions
{
    /** Controller address. */
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Concurrent jobs to hold (executor threads). */
    unsigned slots = 1;
    /** Worker identity recorded as cell provenance; empty =
     *  "hostname:pid". */
    std::string name;
    /**
     * Attempt executor; empty = the engine's deadline-guarded
     * in-process simulator. Pass a ProcWorkerPool::simulateFn() for
     * sandboxed execution, or a FaultInjector::wrap() for drills.
     */
    SimulateFn simulate;
    /** Rebuilds enhancement hooks for hasHook requests; a hooked
     *  request without one fails permanent. */
    proc::SandboxHookFactory hookFactory;
    /** Durable session identity presented in every Hello; empty =
     *  generated once per runRemoteWorker call ("<name>/<nonce>"). */
    std::string sessionId;
    /** Shared fleet token for the HMAC challenge-response; must
     *  match the controller's when it requires authentication. */
    std::string authToken;
    /** Reconnect-and-resume tries after a lost connection (the
     *  initial connect failure still throws). 0 = the pre-session
     *  behavior: one connection, then report ConnectionLost. */
    unsigned reconnectAttempts = 0;
    /** Pause between reconnect tries. */
    std::chrono::milliseconds reconnectDelay{200};
    /** Caller-owned drain signal (e.g. flipped on SIGTERM): announce
     *  Drain, finish held cells, end with SessionEnd::Drained. */
    std::atomic<bool> *drainFlag = nullptr;
};

/** Why the session ended. */
enum class SessionEnd
{
    /** The controller sent Shutdown: clean campaign end. */
    Shutdown,
    /** EOF / I/O / protocol failure on the connection (after any
     *  allowed reconnects were used up). */
    ConnectionLost,
    /** The controller rejected the handshake. */
    Rejected,
    /** The drain flag was honored: held cells finished, session
     *  closed deliberately. */
    Drained,
};

/** Display name ("shutdown" / "connection-lost" / "rejected" /
 *  "drained"). */
std::string toString(SessionEnd end);

/** What one runRemoteWorker call did (across reconnects). */
struct RemoteWorkerSession
{
    SessionEnd end = SessionEnd::ConnectionLost;
    /** Jobs answered (accepted leases, any result status), summed
     *  over every connection of this call. */
    std::uint64_t jobsServed = 0;
    /** Successful session resumes (controller kept our leases). */
    unsigned resumes = 0;
    /** Rejection reason / connection error; empty on Shutdown. */
    std::string error;
};

/**
 * Serve one controller session to completion (blocking), reconnecting
 * and resuming up to options.reconnectAttempts times when the
 * connection breaks. Throws std::runtime_error only when the initial
 * connect fails; everything after that is reported in the returned
 * session record.
 */
RemoteWorkerSession runRemoteWorker(const RemoteWorkerOptions &options);

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_REMOTE_WORKER_HH
