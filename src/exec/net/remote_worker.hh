/**
 * @file
 * Worker side of the distributed campaign backend.
 *
 * runRemoteWorker connects to a CampaignController, handshakes
 * (Hello/HelloAck), and serves leased jobs until the controller says
 * Shutdown or the connection dies: a heartbeat thread beacons at the
 * cadence the controller advertised, and `slots` executor threads
 * pull JobAssign frames off the session queue, run them through the
 * configured SimulateFn (the in-process simulator by default; a
 * ProcWorkerPool dispatch function for sandboxed execution; a
 * FaultInjector wrap for drills), and answer JobDone with the same
 * classified JobResult the sandbox pipes use.
 *
 * Network fault drills: a NetDrillFault thrown by the injector is
 * intercepted here and turned into the real misbehavior on the live
 * connection — DropConnection slams the socket shut mid-lease,
 * StallHeartbeat goes silent for twice the lease and then answers on
 * the (by now reclaimed) stale lease, CorruptFrame sends a
 * deliberately truncated frame — so the controller's reclaim,
 * requeue, and late-result paths are testable deterministically.
 */

#ifndef RIGOR_EXEC_NET_REMOTE_WORKER_HH
#define RIGOR_EXEC_NET_REMOTE_WORKER_HH

#include <cstdint>
#include <string>

#include "exec/engine.hh"
#include "exec/proc/sandbox_worker.hh"

namespace rigor::exec::net
{

/** One worker session's knobs. */
struct RemoteWorkerOptions
{
    /** Controller address. */
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Concurrent jobs to hold (executor threads). */
    unsigned slots = 1;
    /** Worker identity recorded as cell provenance; empty =
     *  "hostname:pid". */
    std::string name;
    /**
     * Attempt executor; empty = the engine's deadline-guarded
     * in-process simulator. Pass a ProcWorkerPool::simulateFn() for
     * sandboxed execution, or a FaultInjector::wrap() for drills.
     */
    SimulateFn simulate;
    /** Rebuilds enhancement hooks for hasHook requests; a hooked
     *  request without one fails permanent. */
    proc::SandboxHookFactory hookFactory;
};

/** Why the session ended. */
enum class SessionEnd
{
    /** The controller sent Shutdown: clean campaign end. */
    Shutdown,
    /** EOF / I/O / protocol failure on the connection. */
    ConnectionLost,
    /** The controller rejected the handshake. */
    Rejected,
};

/** Display name ("shutdown" / "connection-lost" / "rejected"). */
std::string toString(SessionEnd end);

/** What one session did. */
struct RemoteWorkerSession
{
    SessionEnd end = SessionEnd::ConnectionLost;
    /** Jobs answered (accepted leases, any result status). */
    std::uint64_t jobsServed = 0;
    /** Rejection reason / connection error; empty on Shutdown. */
    std::string error;
};

/**
 * Serve one controller session to completion (blocking). Throws
 * std::runtime_error only when the initial connect fails; everything
 * after that is reported in the returned session record.
 */
RemoteWorkerSession runRemoteWorker(const RemoteWorkerOptions &options);

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_REMOTE_WORKER_HH
