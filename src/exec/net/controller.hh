/**
 * @file
 * The lease-granting campaign controller of the distributed backend.
 *
 * CampaignController is to IsolationMode::Remote what ProcWorkerPool
 * is to Process: an attempt executor behind the engine's SimulateFn
 * seam. execute() serializes one attempt as a proc::JobRequest,
 * queues it, and blocks until a worker's proc::JobResult classifies
 * it — so retries, backoff, quarantine, journaling, and bit-identical
 * resume all keep working unchanged on top.
 *
 * Fault model. Each handed-out cell is covered by a time-bounded
 * lease: a worker that goes silent for longer than the lease duration
 * (missed heartbeats) or whose connection breaks has all of its
 * leases reclaimed and the cells requeued onto healthy workers —
 * invisible to the engine, whose attempt is still in flight. Only
 * when the same cell loses its lease on more than maxMigrations
 * distinct workers does the controller give up and throw
 * TransientFault, handing escalation to the existing FaultPolicy
 * retry/backoff machinery (and, with collectFailures, quarantine). A
 * result arriving on a reclaimed lease — the stalled worker woke up
 * late, or a lost worker reconnected — is counted and dropped, never
 * double-recorded: the fsync'd ResultJournal upstream stays the
 * single source of truth and no cell runs twice into it.
 *
 * Liveness bookkeeping is purely heartbeat-driven: a healthy worker
 * may hold one cell for longer than the lease duration as long as it
 * keeps heartbeating — the lease clock measures silence, not runtime
 * — so legitimately slow cells are never reclaimed spuriously.
 */

#ifndef RIGOR_EXEC_NET_CONTROLLER_HH
#define RIGOR_EXEC_NET_CONTROLLER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hh"
#include "exec/net/socket.hh"
#include "exec/proc/protocol.hh"

namespace rigor::obs
{
class MetricsRegistry;
class Counter;
class Gauge;
} // namespace rigor::obs

namespace rigor::exec::net
{

/** Controller construction knobs. */
struct ControllerOptions
{
    /** Listen address; localhost by default (tests, CI smoke). */
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;
    /** Silence budget per worker: a worker heard nothing from for
     *  this long has its leases reclaimed and cells requeued. */
    std::chrono::milliseconds lease{10000};
    /** Heartbeat cadence advertised to workers in the handshake. */
    std::chrono::milliseconds heartbeat{1000};
    /** Distinct-worker lease losses per cell before the controller
     *  stops migrating it and throws TransientFault. */
    unsigned maxMigrations = 3;
};

/** Fleet/lease lifecycle event, delivered to the lease observer from
 *  controller threads (observers must be thread-safe). */
struct LeaseEvent
{
    enum class Kind
    {
        /** A worker completed the handshake. */
        WorkerJoined,
        /** A worker's connection broke (EOF / protocol error). */
        WorkerLost,
        /** A worker went silent past the lease duration; it gets no
         *  new cells until its next heartbeat. */
        WorkerLapsed,
        /** One cell's lease was reclaimed and the cell requeued. */
        LeaseReclaimed,
        /** A result arrived on an already-reclaimed lease and was
         *  rejected (duplicate/late-result protection). */
        LateResult,
    };

    Kind kind = Kind::WorkerJoined;
    /** Worker the event concerns. */
    std::string worker;
    /** Lease id (LeaseReclaimed / LateResult; 0 otherwise). */
    std::uint64_t leaseId = 0;
    /** Cell label (LeaseReclaimed; empty otherwise). */
    std::string label;
    /** Human-readable cause ("heartbeat lapse", "connection lost"). */
    std::string detail;
    /** The cell's lease losses so far (LeaseReclaimed). */
    unsigned requeues = 0;
};

/** Display name of an event kind ("worker-joined", ...). */
std::string toString(LeaseEvent::Kind kind);

/** Per-event callback; must be thread-safe. */
using LeaseObserver = std::function<void(const LeaseEvent &)>;

/** Shards campaign cells across a TCP worker fleet under leases. */
class CampaignController
{
  public:
    explicit CampaignController(const ControllerOptions &options = {});
    ~CampaignController();

    CampaignController(const CampaignController &) = delete;
    CampaignController &operator=(const CampaignController &) = delete;

    /** The port actually bound (resolves port 0). */
    std::uint16_t port() const { return _port; }

    /** Workers currently connected and accepted. */
    unsigned connectedWorkers() const;

    /** Block until @p count workers are connected; false on
     *  timeout. */
    bool waitForWorkers(unsigned count,
                        std::chrono::milliseconds timeout);

    /**
     * Attach (or detach, with nullptr) a metrics registry. Counters:
     * net.workers.joined, net.workers.lost, net.leases.granted,
     * net.leases.reclaimed, net.results.late. Gauge:
     * net.workers.connected. Not owned.
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** Attach (or detach, with {}) the fleet/lease event observer. */
    void setLeaseObserver(LeaseObserver observer);

    /**
     * Execute one attempt on the fleet (blocks until a worker's
     * result or migration exhaustion). Throws the same taxonomy as
     * the sandbox pool: TransientFault / DeadlineExceeded /
     * ResourceExhausted / PermanentFault.
     */
    double execute(const SimJob &job, const AttemptContext &ctx);

    /** Engine-facing adapter around execute() — the distributed
     *  counterpart of ProcWorkerPool::simulateFn(). */
    SimulateFn simulateFn();

    /** Lifetime totals (for tests and drills). */
    std::uint64_t leasesGranted() const;
    std::uint64_t leasesReclaimed() const;
    std::uint64_t lateResults() const;

  private:
    struct Pending;
    struct Worker;
    struct Lease;

    void acceptLoop();
    void serveConnection(int rawFd);
    void monitorLoop();
    /** Grant queued cells to free, live, un-lapsed workers. */
    void pumpLocked();
    /** Reclaim every lease of @p worker and requeue its cells. */
    void reclaimLeasesLocked(const std::shared_ptr<Worker> &worker,
                             const std::string &reason);
    void workerGoneLocked(const std::shared_ptr<Worker> &worker,
                          const std::string &reason);
    void handleJobDoneLocked(const std::shared_ptr<Worker> &worker,
                             proc::Reader &in);
    void emitLocked(LeaseEvent event);
    void updateConnectedGaugeLocked();

    ControllerOptions _options;
    OwnedFd _listener;
    std::uint16_t _port = 0;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    bool _shutdown = false;
    std::deque<std::shared_ptr<Pending>> _queue;
    std::map<std::uint64_t, Lease> _leases;
    std::vector<std::shared_ptr<Worker>> _workers;
    std::uint64_t _nextLeaseId = 1;
    std::uint64_t _leasesGranted = 0;
    std::uint64_t _leasesReclaimed = 0;
    std::uint64_t _lateResults = 0;
    LeaseObserver _observer;
    obs::Counter *_joinedCounter = nullptr;
    obs::Counter *_lostCounter = nullptr;
    obs::Counter *_grantedCounter = nullptr;
    obs::Counter *_reclaimedCounter = nullptr;
    obs::Counter *_lateCounter = nullptr;
    obs::Gauge *_connectedGauge = nullptr;

    std::thread _acceptThread;
    std::thread _monitorThread;
    std::vector<std::thread> _connectionThreads;
};

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_CONTROLLER_HH
