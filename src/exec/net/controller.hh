/**
 * @file
 * The lease-granting campaign controller of the distributed backend.
 *
 * CampaignController is to IsolationMode::Remote what ProcWorkerPool
 * is to Process: an attempt executor behind the engine's SimulateFn
 * seam. execute() serializes one attempt as a proc::JobRequest,
 * queues it, and blocks until a worker's proc::JobResult classifies
 * it — so retries, backoff, quarantine, journaling, and bit-identical
 * resume all keep working unchanged on top.
 *
 * Fault model. Each handed-out cell is covered by a time-bounded
 * lease: a worker that goes silent for longer than the lease duration
 * (missed heartbeats) or whose connection breaks has all of its
 * leases reclaimed and the cells requeued onto healthy workers —
 * invisible to the engine, whose attempt is still in flight. Only
 * when the same cell loses its lease on more than maxMigrations
 * distinct workers does the controller give up and throw
 * TransientFault, handing escalation to the existing FaultPolicy
 * retry/backoff machinery (and, with collectFailures, quarantine). A
 * result arriving on a reclaimed lease — the stalled worker woke up
 * late, or a lost worker reconnected — is counted and dropped, never
 * double-recorded: the fsync'd ResultJournal upstream stays the
 * single source of truth and no cell runs twice into it.
 *
 * Liveness bookkeeping is purely heartbeat-driven: a healthy worker
 * may hold one cell for longer than the lease duration as long as it
 * keeps heartbeating — the lease clock measures silence, not runtime
 * — so legitimately slow cells are never reclaimed spuriously.
 *
 * Session resume. A broken connection is not always a dead worker:
 * on a flaky network the same process usually comes right back. Each
 * worker presents a durable session id in its Hello; when its
 * connection breaks while it holds leases, the controller *parks*
 * the session for `sessionGrace` instead of reclaiming — the leases
 * stay live, no cell is requeued. A reconnect with the same session
 * id inside the grace window adopts the parked session: leases the
 * worker still holds (declared in Hello::heldLeases) survive, and
 * results the worker computed during the partition are handed back
 * on the new connection under their original lease ids. Leases the
 * worker no longer remembers, or whose grace window lapsed, fall
 * back to the ordinary reclaim/requeue/migration path. A session id
 * that is already live is rejected (split-brain protection).
 *
 * Authentication. With a non-empty authToken the handshake becomes a
 * challenge-response: HelloAck carries a fresh random nonce and the
 * worker must answer AuthProof = HMAC-SHA256(token, nonce || session
 * id || name) before it is registered or granted anything. Bad,
 * missing, or replayed proofs (a stale proof covers a stale nonce)
 * are counted in net.auth.rejected and the connection is dropped.
 *
 * Drain. beginDrain() stops granting leases, waits (bounded) for
 * in-flight cells to finish, then fails whatever remains with
 * TransientFault — so a SIGTERM'd campaign exits with a journal that
 * resumes exactly where the drain cut it off.
 */

#ifndef RIGOR_EXEC_NET_CONTROLLER_HH
#define RIGOR_EXEC_NET_CONTROLLER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hh"
#include "exec/net/socket.hh"
#include "exec/proc/protocol.hh"

namespace rigor::obs
{
class MetricsRegistry;
class Counter;
class Gauge;
} // namespace rigor::obs

namespace rigor::exec::net
{

/** Controller construction knobs. */
struct ControllerOptions
{
    /** Listen address; localhost by default (tests, CI smoke). */
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;
    /** Silence budget per worker: a worker heard nothing from for
     *  this long has its leases reclaimed and cells requeued. */
    std::chrono::milliseconds lease{10000};
    /** Heartbeat cadence advertised to workers in the handshake. */
    std::chrono::milliseconds heartbeat{1000};
    /** Distinct-worker lease losses per cell before the controller
     *  stops migrating it and throws TransientFault. */
    unsigned maxMigrations = 3;
    /**
     * How long a disconnected worker's session (and its leases) is
     * parked awaiting a reconnect before the leases fall back to
     * reclaim/requeue. Zero disables parking: every broken
     * connection reclaims immediately (the pre-session behavior).
     */
    std::chrono::milliseconds sessionGrace{0};
    /**
     * Shared fleet token. Empty disables authentication; non-empty
     * demands an HMAC challenge-response in every handshake before
     * a worker is registered or granted a lease.
     */
    std::string authToken;
};

/** Fleet/lease lifecycle event, delivered to the lease observer from
 *  controller threads (observers must be thread-safe). */
struct LeaseEvent
{
    enum class Kind
    {
        /** A worker completed the handshake. */
        WorkerJoined,
        /** A worker's connection broke (EOF / protocol error). */
        WorkerLost,
        /** A worker went silent past the lease duration; it gets no
         *  new cells until its next heartbeat. */
        WorkerLapsed,
        /** One cell's lease was reclaimed and the cell requeued. */
        LeaseReclaimed,
        /** A result arrived on an already-reclaimed lease and was
         *  rejected (duplicate/late-result protection). */
        LateResult,
        /** A handshake failed authentication (bad/missing/replayed
         *  proof, malformed hello) and was dropped leaseless. */
        AuthRejected,
        /** A handshake presented a session id that is already live
         *  and was dropped (split-brain protection). */
        SessionRejected,
        /** A connection broke while its worker held leases; the
         *  session is parked for the grace window. */
        SessionParked,
        /** A parked session's worker reconnected in time; its
         *  surviving leases stay live (no requeues). */
        SessionResumed,
        /** A parked session outlived the grace window; its leases
         *  fall back to reclaim/requeue. */
        SessionExpired,
        /** A worker announced it is draining; it gets no further
         *  leases while its in-flight cells finish. */
        WorkerDraining,
    };

    Kind kind = Kind::WorkerJoined;
    /** Worker the event concerns. */
    std::string worker;
    /** Durable session id of that worker ("" pre-handshake). */
    std::string session;
    /** Lease id (LeaseReclaimed / LateResult; 0 otherwise). */
    std::uint64_t leaseId = 0;
    /** Cell label (LeaseReclaimed; empty otherwise). */
    std::string label;
    /** Human-readable cause ("heartbeat lapse", "connection lost"). */
    std::string detail;
    /** The cell's lease losses so far (LeaseReclaimed). */
    unsigned requeues = 0;
};

/** Display name of an event kind ("worker-joined", ...). */
std::string toString(LeaseEvent::Kind kind);

/** Per-event callback; must be thread-safe. */
using LeaseObserver = std::function<void(const LeaseEvent &)>;

/** Shards campaign cells across a TCP worker fleet under leases. */
class CampaignController
{
  public:
    explicit CampaignController(const ControllerOptions &options = {});
    ~CampaignController();

    CampaignController(const CampaignController &) = delete;
    CampaignController &operator=(const CampaignController &) = delete;

    /** The port actually bound (resolves port 0). */
    std::uint16_t port() const { return _port; }

    /** Workers currently connected and accepted. */
    unsigned connectedWorkers() const;

    /** Block until @p count workers are connected; false on
     *  timeout. */
    bool waitForWorkers(unsigned count,
                        std::chrono::milliseconds timeout);

    /**
     * Attach (or detach, with nullptr) a metrics registry. Counters:
     * net.workers.joined, net.workers.lost, net.leases.granted,
     * net.leases.reclaimed, net.results.late, net.sessions.parked,
     * net.sessions.resumed, net.sessions.expired,
     * net.sessions.rejected, net.auth.accepted, net.auth.rejected.
     * Gauge: net.workers.connected. Not owned.
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** Attach (or detach, with {}) the fleet/lease event observer. */
    void setLeaseObserver(LeaseObserver observer);

    /**
     * Execute one attempt on the fleet (blocks until a worker's
     * result or migration exhaustion). Throws the same taxonomy as
     * the sandbox pool: TransientFault / DeadlineExceeded /
     * ResourceExhausted / PermanentFault.
     */
    double execute(const SimJob &job, const AttemptContext &ctx);

    /** Engine-facing adapter around execute() — the distributed
     *  counterpart of ProcWorkerPool::simulateFn(). */
    SimulateFn simulateFn();

    /**
     * Stop granting leases, wait up to @p waitInFlight for in-flight
     * cells to finish (the lease clock bounds how long a silent
     * worker can stall this), then fail every remaining cell with
     * TransientFault so the campaign unwinds with a resumable
     * journal. Idempotent; safe from a signal-watcher thread.
     */
    void beginDrain(std::chrono::milliseconds waitInFlight);

    /** True once beginDrain() has been called. */
    bool draining() const;

    /** Lifetime totals (for tests and drills). */
    std::uint64_t leasesGranted() const;
    std::uint64_t leasesReclaimed() const;
    std::uint64_t lateResults() const;
    std::uint64_t sessionsParked() const;
    std::uint64_t sessionsResumed() const;
    std::uint64_t sessionsExpired() const;
    std::uint64_t sessionsRejected() const;
    std::uint64_t authAccepted() const;
    std::uint64_t authRejected() const;

  private:
    struct Pending;
    struct Worker;
    struct Lease;

    void acceptLoop();
    void serveConnection(int rawFd);
    /** Run the v2 handshake (validation, auth challenge, session
     *  resume/registration). Returns the registered worker, or
     *  nullptr when the connection was rejected (already counted and
     *  emitted). Throws on transport errors mid-handshake. */
    std::shared_ptr<Worker> performHandshake(OwnedFd &fd);
    void monitorLoop();
    /** Grant queued cells to free, live, un-lapsed workers. */
    void pumpLocked();
    /** Reclaim one lease (erase, count, requeue or escalate).
     *  Returns the iterator past the erased lease. */
    std::map<std::uint64_t, Lease>::iterator
    reclaimLeaseLocked(std::map<std::uint64_t, Lease>::iterator it,
                       const std::string &reason);
    /** Reclaim every lease of @p worker and requeue its cells. */
    void reclaimLeasesLocked(const std::shared_ptr<Worker> &worker,
                             const std::string &reason);
    void workerGoneLocked(const std::shared_ptr<Worker> &worker,
                          const std::string &reason);
    void handleJobDoneLocked(const std::shared_ptr<Worker> &worker,
                             proc::Reader &in);
    /** Count + emit a leaseless handshake rejection. */
    void authRejectedLocked(const std::string &name,
                            const std::string &session,
                            const std::string &reason);
    void emitLocked(LeaseEvent event);
    void updateConnectedGaugeLocked();

    ControllerOptions _options;
    OwnedFd _listener;
    std::uint16_t _port = 0;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    bool _shutdown = false;
    bool _draining = false;
    std::deque<std::shared_ptr<Pending>> _queue;
    std::map<std::uint64_t, Lease> _leases;
    std::vector<std::shared_ptr<Worker>> _workers;
    /** Disconnected-but-parked sessions, keyed by session id. */
    std::map<std::string, std::shared_ptr<Worker>> _parked;
    /** Fds still inside performHandshake, so the destructor can
     *  unblock their reads. */
    std::set<int> _handshakeFds;
    std::uint64_t _nextLeaseId = 1;
    std::uint64_t _leasesGranted = 0;
    std::uint64_t _leasesReclaimed = 0;
    std::uint64_t _lateResults = 0;
    std::uint64_t _sessionsParked = 0;
    std::uint64_t _sessionsResumed = 0;
    std::uint64_t _sessionsExpired = 0;
    std::uint64_t _sessionsRejected = 0;
    std::uint64_t _authAccepted = 0;
    std::uint64_t _authRejected = 0;
    LeaseObserver _observer;
    obs::Counter *_joinedCounter = nullptr;
    obs::Counter *_lostCounter = nullptr;
    obs::Counter *_grantedCounter = nullptr;
    obs::Counter *_reclaimedCounter = nullptr;
    obs::Counter *_lateCounter = nullptr;
    obs::Counter *_parkedCounter = nullptr;
    obs::Counter *_resumedCounter = nullptr;
    obs::Counter *_expiredCounter = nullptr;
    obs::Counter *_sessionRejectedCounter = nullptr;
    obs::Counter *_authAcceptedCounter = nullptr;
    obs::Counter *_authRejectedCounter = nullptr;
    obs::Gauge *_connectedGauge = nullptr;

    std::thread _acceptThread;
    std::thread _monitorThread;
    std::vector<std::thread> _connectionThreads;
};

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_CONTROLLER_HH
