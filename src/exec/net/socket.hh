/**
 * @file
 * Minimal TCP plumbing for the distributed campaign backend.
 *
 * The controller and the workers speak the same length-prefixed frame
 * protocol as the sandbox pipes (exec/proc/protocol.hh) — a connected
 * TCP socket is just another fd to writeFrame/readFrame — so all this
 * layer adds is listen/accept/connect with errno turned into
 * exceptions, plus an OwnedFd RAII guard so every error path closes
 * its socket.
 *
 * IPv4 only, by design: the intended deployments are localhost worker
 * fleets (tests, CI smoke) and trusted lab networks; the address
 * parser accepts dotted quads and "localhost".
 *
 * Every socket here is opened close-on-exec (SOCK_CLOEXEC on
 * socket(), accept4() for accepted connections): the
 * process-isolation backend forks sandbox workers from the same
 * process, and a forked child must not inherit the controller's
 * listening fd or any live session socket. All blocking calls are
 * EINTR-safe; an interrupted connect() is completed via
 * poll(POLLOUT) + SO_ERROR rather than re-calling connect (which
 * would misreport the in-progress attempt as EALREADY). Frame
 * writes live in exec/proc/protocol.cc, whose writeAll already
 * loops over partial writes and EINTR.
 */

#ifndef RIGOR_EXEC_NET_SOCKET_HH
#define RIGOR_EXEC_NET_SOCKET_HH

#include <cstdint>
#include <string>

namespace rigor::exec::net
{

/** Close-on-destruction fd guard (move-only). */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd)
        : _fd(fd)
    {
    }
    OwnedFd(OwnedFd &&other) noexcept
        : _fd(other.release())
    {
    }
    OwnedFd &operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset(other.release());
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;
    ~OwnedFd() { reset(); }

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    int release()
    {
        const int fd = _fd;
        _fd = -1;
        return fd;
    }
    void reset(int fd = -1);

  private:
    int _fd = -1;
};

/**
 * Bind and listen on @p address:@p port (port 0 = kernel-assigned
 * ephemeral port; read it back with boundPort). SO_REUSEADDR is set
 * so an immediately restarted controller can rebind. Throws
 * std::runtime_error with the errno text on failure.
 */
OwnedFd listenTcp(const std::string &address, std::uint16_t port,
                  int backlog = 16);

/** The local port a listening/bound socket actually got. */
std::uint16_t boundPort(int fd);

/** Accept one connection (blocking, EINTR-safe). Returns an invalid
 *  fd when the listener has been shut down. */
OwnedFd acceptClient(int listenFd);

/** Connect to @p address:@p port (blocking). Throws
 *  std::runtime_error with the errno text on failure. */
OwnedFd connectTcp(const std::string &address, std::uint16_t port);

/** Half-close both directions so a blocked peer read wakes with EOF
 *  (used to interrupt reader threads; safe on any socket fd). */
void shutdownSocket(int fd);

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_SOCKET_HH
