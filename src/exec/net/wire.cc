#include "exec/net/wire.hh"

namespace rigor::exec::net
{

std::string
toString(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "hello";
      case MsgType::HelloAck:
        return "hello-ack";
      case MsgType::JobAssign:
        return "job-assign";
      case MsgType::JobDone:
        return "job-done";
      case MsgType::Heartbeat:
        return "heartbeat";
      case MsgType::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

void
Hello::serialize(proc::Writer &out) const
{
    out.pod(magic);
    out.pod(version);
    out.pod(slots);
    out.str(name);
}

Hello
Hello::deserialize(proc::Reader &in)
{
    Hello hello;
    hello.magic = in.pod<std::uint32_t>();
    hello.version = in.pod<std::uint16_t>();
    hello.slots = in.pod<std::uint16_t>();
    hello.name = in.str();
    return hello;
}

void
HelloAck::serialize(proc::Writer &out) const
{
    out.pod(accepted);
    out.str(reason);
    out.pod(leaseMs);
    out.pod(heartbeatMs);
}

HelloAck
HelloAck::deserialize(proc::Reader &in)
{
    HelloAck ack;
    ack.accepted = in.pod<bool>();
    ack.reason = in.str();
    ack.leaseMs = in.pod<std::uint64_t>();
    ack.heartbeatMs = in.pod<std::uint64_t>();
    return ack;
}

void
sendMessage(int fd, MsgType type, const std::vector<std::byte> &body)
{
    std::vector<std::byte> payload;
    payload.reserve(1 + body.size());
    payload.push_back(static_cast<std::byte>(type));
    payload.insert(payload.end(), body.begin(), body.end());
    proc::writeFrame(fd, payload);
}

bool
recvMessage(int fd, std::vector<std::byte> &payload)
{
    if (!proc::readFrame(fd, payload))
        return false;
    if (payload.empty())
        throw proc::ProtocolError("empty message frame (no tag byte)");
    return true;
}

MsgType
readType(proc::Reader &in)
{
    const auto raw = in.pod<std::uint8_t>();
    if (raw < static_cast<std::uint8_t>(MsgType::Hello) ||
        raw > static_cast<std::uint8_t>(MsgType::Shutdown))
        throw proc::ProtocolError("unknown message tag " +
                                  std::to_string(raw));
    return static_cast<MsgType>(raw);
}

} // namespace rigor::exec::net
