#include "exec/net/wire.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

namespace rigor::exec::net
{

namespace
{

/**
 * Write exactly @p size bytes to a socket, riding out EINTR and
 * short writes. Unlike the pipe-oriented proc::writeFrame, this
 * sends with MSG_NOSIGNAL: a peer that vanished mid-frame surfaces
 * as an EPIPE ProtocolError the caller can catch, not as a SIGPIPE
 * that kills the whole controller (or worker) process.
 */
void
sendAll(int fd, const void *data, std::size_t size)
{
    const char *at = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd, at, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw proc::ProtocolError(
                std::string("fleet socket write: ") +
                std::strerror(errno));
        }
        at += n;
        size -= static_cast<std::size_t>(n);
    }
}

} // namespace

std::string
toString(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "hello";
      case MsgType::HelloAck:
        return "hello-ack";
      case MsgType::JobAssign:
        return "job-assign";
      case MsgType::JobDone:
        return "job-done";
      case MsgType::Heartbeat:
        return "heartbeat";
      case MsgType::Shutdown:
        return "shutdown";
      case MsgType::AuthProof:
        return "auth-proof";
      case MsgType::SessionAck:
        return "session-ack";
      case MsgType::Drain:
        return "drain";
    }
    return "unknown";
}

void
Hello::serialize(proc::Writer &out) const
{
    out.pod(magic);
    out.pod(version);
    out.pod(slots);
    out.str(name);
    out.str(sessionId);
    out.pod(static_cast<std::uint32_t>(heldLeases.size()));
    for (const std::uint64_t lease : heldLeases)
        out.pod(lease);
}

Hello
Hello::deserialize(proc::Reader &in)
{
    Hello hello;
    hello.magic = in.pod<std::uint32_t>();
    hello.version = in.pod<std::uint16_t>();
    hello.slots = in.pod<std::uint16_t>();
    hello.name = in.str();
    hello.sessionId = in.str();
    const auto count = in.pod<std::uint32_t>();
    hello.heldLeases.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        hello.heldLeases.push_back(in.pod<std::uint64_t>());
    return hello;
}

void
HelloAck::serialize(proc::Writer &out) const
{
    out.pod(accepted);
    out.str(reason);
    out.pod(leaseMs);
    out.pod(heartbeatMs);
    out.pod(authRequired);
    out.str(challenge);
}

HelloAck
HelloAck::deserialize(proc::Reader &in)
{
    HelloAck ack;
    ack.accepted = in.pod<bool>();
    ack.reason = in.str();
    ack.leaseMs = in.pod<std::uint64_t>();
    ack.heartbeatMs = in.pod<std::uint64_t>();
    ack.authRequired = in.pod<bool>();
    ack.challenge = in.str();
    return ack;
}

void
AuthProofMsg::serialize(proc::Writer &out) const
{
    out.str(proof);
}

AuthProofMsg
AuthProofMsg::deserialize(proc::Reader &in)
{
    AuthProofMsg msg;
    msg.proof = in.str();
    return msg;
}

void
SessionAck::serialize(proc::Writer &out) const
{
    out.pod(accepted);
    out.str(reason);
    out.pod(resumed);
    out.pod(retainedLeases);
}

SessionAck
SessionAck::deserialize(proc::Reader &in)
{
    SessionAck ack;
    ack.accepted = in.pod<bool>();
    ack.reason = in.str();
    ack.resumed = in.pod<bool>();
    ack.retainedLeases = in.pod<std::uint32_t>();
    return ack;
}

void
sendMessage(int fd, MsgType type, const std::vector<std::byte> &body)
{
    std::vector<std::byte> payload;
    payload.reserve(1 + body.size());
    payload.push_back(static_cast<std::byte>(type));
    payload.insert(payload.end(), body.begin(), body.end());
    if (payload.size() > proc::kMaxFramePayload)
        throw proc::ProtocolError("frame payload too large to send");
    const auto length = static_cast<std::uint32_t>(payload.size());
    sendAll(fd, &length, sizeof(length));
    sendAll(fd, payload.data(), payload.size());
}

bool
recvMessage(int fd, std::vector<std::byte> &payload)
{
    if (!proc::readFrame(fd, payload))
        return false;
    if (payload.empty())
        throw proc::ProtocolError("empty message frame (no tag byte)");
    return true;
}

MsgType
readType(proc::Reader &in)
{
    const auto raw = in.pod<std::uint8_t>();
    if (raw < static_cast<std::uint8_t>(MsgType::Hello) ||
        raw > static_cast<std::uint8_t>(MsgType::Drain))
        throw proc::ProtocolError("unknown message tag " +
                                  std::to_string(raw));
    return static_cast<MsgType>(raw);
}

} // namespace rigor::exec::net
