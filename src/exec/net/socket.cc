#include "exec/net/socket.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rigor::exec::net
{

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

in_addr
parseAddress(const std::string &address)
{
    in_addr parsed{};
    const std::string resolved =
        address == "localhost" ? "127.0.0.1" : address;
    if (::inet_pton(AF_INET, resolved.c_str(), &parsed) != 1)
        throw std::runtime_error(
            "cannot parse IPv4 address '" + address +
            "' (dotted quad or 'localhost' expected)");
    return parsed;
}

sockaddr_in
makeEndpoint(const std::string &address, std::uint16_t port)
{
    sockaddr_in endpoint{};
    endpoint.sin_family = AF_INET;
    endpoint.sin_port = htons(port);
    endpoint.sin_addr = parseAddress(address);
    return endpoint;
}

} // namespace

void
OwnedFd::reset(int fd)
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = fd;
}

OwnedFd
listenTcp(const std::string &address, std::uint16_t port, int backlog)
{
    // SOCK_CLOEXEC everywhere: the process-isolation backend forks
    // sandbox children from the same process that may hold the
    // controller's listening socket, and an inherited listener would
    // keep the port alive (and accept connections into a dead
    // process) after the controller exits.
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        fail("socket");
    const int on = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &on,
                     sizeof(on)) != 0)
        fail("setsockopt(SO_REUSEADDR)");
    const sockaddr_in endpoint = makeEndpoint(address, port);
    if (::bind(fd.get(),
               reinterpret_cast<const sockaddr *>(&endpoint),
               sizeof(endpoint)) != 0)
        fail("bind " + address + ":" + std::to_string(port));
    if (::listen(fd.get(), backlog) != 0)
        fail("listen");
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in endpoint{};
    socklen_t size = sizeof(endpoint);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&endpoint),
                      &size) != 0)
        fail("getsockname");
    return ntohs(endpoint.sin_port);
}

OwnedFd
acceptClient(int listenFd)
{
    for (;;) {
        const int fd =
            ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0)
            return OwnedFd(fd);
        if (errno == EINTR)
            continue;
        // The listener was closed or shut down under us: the
        // controller is winding down, not an error worth throwing.
        return OwnedFd();
    }
}

OwnedFd
connectTcp(const std::string &address, std::uint16_t port)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        fail("socket");
    // Frames are small (a JobRequest is a few hundred bytes) and
    // latency-sensitive: never batch them behind Nagle.
    const int on = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &on,
                       sizeof(on));
    const sockaddr_in endpoint = makeEndpoint(address, port);
    if (::connect(fd.get(),
                  reinterpret_cast<const sockaddr *>(&endpoint),
                  sizeof(endpoint)) == 0)
        return fd;
    if (errno != EINTR)
        fail("connect " + address + ":" + std::to_string(port));
    // A signal interrupted connect(). The attempt keeps going in the
    // kernel, and calling connect() again would report EALREADY (or
    // EISCONN once it lands) — not a retry. The POSIX-blessed path
    // is to wait for writability and read the final verdict from
    // SO_ERROR.
    for (;;) {
        pollfd waiter{};
        waiter.fd = fd.get();
        waiter.events = POLLOUT;
        const int ready = ::poll(&waiter, 1, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fail("poll during connect " + address + ":" +
                 std::to_string(port));
        }
        break;
    }
    int err = 0;
    socklen_t err_size = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err,
                     &err_size) != 0)
        fail("getsockopt(SO_ERROR) after connect");
    if (err != 0) {
        errno = err;
        fail("connect " + address + ":" + std::to_string(port));
    }
    return fd;
}

void
shutdownSocket(int fd)
{
    if (fd >= 0)
        (void)::shutdown(fd, SHUT_RDWR);
}

} // namespace rigor::exec::net
