#include "exec/net/socket.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rigor::exec::net
{

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

in_addr
parseAddress(const std::string &address)
{
    in_addr parsed{};
    const std::string resolved =
        address == "localhost" ? "127.0.0.1" : address;
    if (::inet_pton(AF_INET, resolved.c_str(), &parsed) != 1)
        throw std::runtime_error(
            "cannot parse IPv4 address '" + address +
            "' (dotted quad or 'localhost' expected)");
    return parsed;
}

sockaddr_in
makeEndpoint(const std::string &address, std::uint16_t port)
{
    sockaddr_in endpoint{};
    endpoint.sin_family = AF_INET;
    endpoint.sin_port = htons(port);
    endpoint.sin_addr = parseAddress(address);
    return endpoint;
}

} // namespace

void
OwnedFd::reset(int fd)
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = fd;
}

OwnedFd
listenTcp(const std::string &address, std::uint16_t port, int backlog)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fail("socket");
    const int on = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &on,
                     sizeof(on)) != 0)
        fail("setsockopt(SO_REUSEADDR)");
    const sockaddr_in endpoint = makeEndpoint(address, port);
    if (::bind(fd.get(),
               reinterpret_cast<const sockaddr *>(&endpoint),
               sizeof(endpoint)) != 0)
        fail("bind " + address + ":" + std::to_string(port));
    if (::listen(fd.get(), backlog) != 0)
        fail("listen");
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in endpoint{};
    socklen_t size = sizeof(endpoint);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&endpoint),
                      &size) != 0)
        fail("getsockname");
    return ntohs(endpoint.sin_port);
}

OwnedFd
acceptClient(int listenFd)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0)
            return OwnedFd(fd);
        if (errno == EINTR)
            continue;
        // The listener was closed or shut down under us: the
        // controller is winding down, not an error worth throwing.
        return OwnedFd();
    }
}

OwnedFd
connectTcp(const std::string &address, std::uint16_t port)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fail("socket");
    // Frames are small (a JobRequest is a few hundred bytes) and
    // latency-sensitive: never batch them behind Nagle.
    const int on = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &on,
                       sizeof(on));
    const sockaddr_in endpoint = makeEndpoint(address, port);
    for (;;) {
        if (::connect(fd.get(),
                      reinterpret_cast<const sockaddr *>(&endpoint),
                      sizeof(endpoint)) == 0)
            return fd;
        if (errno == EINTR)
            continue;
        fail("connect " + address + ":" + std::to_string(port));
    }
}

void
shutdownSocket(int fd)
{
    if (fd >= 0)
        (void)::shutdown(fd, SHUT_RDWR);
}

} // namespace rigor::exec::net
