#include "exec/net/remote_worker.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "exec/fault_injection.hh"
#include "exec/net/auth.hh"
#include "exec/net/socket.hh"
#include "exec/net/wire.hh"

namespace rigor::exec::net
{

namespace
{

std::string
defaultWorkerName()
{
    char host[256] = "worker";
    (void)::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

/** One leased job pulled off the connection. */
struct Assignment
{
    std::uint64_t leaseId = 0;
    proc::JobRequest request;
};

/** State carried across reconnects of one runRemoteWorker call. */
struct ResumeState
{
    /** Assignments not yet executed when the connection broke; they
     *  still hold their leases and run under the resumed session. */
    std::deque<Assignment> assignments;
    /** Results computed but not delivered (connection died first);
     *  handed back as JobDone frames right after a resume. */
    std::vector<std::pair<std::uint64_t, proc::JobResult>> unsent;
    /** Pending reconnect-storm drill cycles. */
    unsigned stormRounds = 0;
};

/** Client side of the v2 handshake. */
struct ClientHandshake
{
    /** False = transport closed mid-handshake (retryable). */
    bool connected = false;
    bool accepted = false;
    bool resumed = false;
    std::string reason;
    HelloAck ack;
};

ClientHandshake
clientHandshake(int fd, const std::string &name,
                const std::string &sessionId, unsigned slots,
                const std::vector<std::uint64_t> &heldLeases,
                const std::string &authToken)
{
    ClientHandshake out;
    Hello hello;
    hello.slots =
        static_cast<std::uint16_t>(std::min(slots, 65535u));
    hello.name = name;
    hello.sessionId = sessionId;
    hello.heldLeases = heldLeases;
    proc::Writer hello_body;
    hello.serialize(hello_body);
    sendMessage(fd, MsgType::Hello, hello_body.bytes());

    std::vector<std::byte> payload;
    if (!recvMessage(fd, payload))
        return out;
    proc::Reader in(payload);
    if (readType(in) != MsgType::HelloAck)
        throw proc::ProtocolError(
            "expected hello-ack from the controller");
    out.ack = HelloAck::deserialize(in);
    out.connected = true;
    if (!out.ack.accepted) {
        out.reason = out.ack.reason;
        return out;
    }

    if (out.ack.authRequired) {
        // Empty token still answers (with a proof that cannot
        // verify): the controller's rejection is the clear error.
        AuthProofMsg proof;
        proof.proof =
            authProof(authToken, out.ack.challenge, sessionId, name);
        proc::Writer proof_body;
        proof.serialize(proof_body);
        sendMessage(fd, MsgType::AuthProof, proof_body.bytes());
    }

    std::vector<std::byte> verdict_payload;
    if (!recvMessage(fd, verdict_payload)) {
        out.connected = false;
        return out;
    }
    proc::Reader verdict_in(verdict_payload);
    if (readType(verdict_in) != MsgType::SessionAck)
        throw proc::ProtocolError(
            "expected session-ack from the controller");
    const SessionAck verdict = SessionAck::deserialize(verdict_in);
    out.accepted = verdict.accepted;
    out.resumed = verdict.resumed;
    out.reason = verdict.reason;
    return out;
}

/** Shared state of one worker connection. */
class Session
{
  public:
    Session(const RemoteWorkerOptions &options, OwnedFd fd,
            const HelloAck &ack, ResumeState *resume,
            std::string sessionId, std::string name)
        : _options(options), _fd(std::move(fd)), _resume(resume),
          _sessionId(std::move(sessionId)), _name(std::move(name)),
          _lease(std::chrono::milliseconds(ack.leaseMs)),
          _heartbeat(std::chrono::milliseconds(ack.heartbeatMs))
    {
        // Carried-over assignments still hold their leases: they run
        // first, on this connection.
        _assignments.swap(_resume->assignments);
        _heartbeatThread = std::thread(&Session::heartbeatLoop, this);
        const unsigned slots = std::max(1u, options.slots);
        _executors.reserve(slots);
        for (unsigned i = 0; i < slots; ++i)
            _executors.emplace_back(&Session::executorLoop, this);
    }

    ~Session()
    {
        stop();
        if (_heartbeatThread.joinable())
            _heartbeatThread.join();
        for (std::thread &executor : _executors)
            if (executor.joinable())
                executor.join();
        // Whatever never ran carries over to the next connection
        // (single-threaded now: every worker thread is joined).
        while (!_assignments.empty()) {
            _resume->assignments.push_back(
                std::move(_assignments.front()));
            _assignments.pop_front();
        }
    }

    /** Read frames until Shutdown / EOF; returns how it ended. */
    RemoteWorkerSession serve(bool resumedSession)
    {
        if (resumedSession)
            flushUnsent();
        RemoteWorkerSession outcome;
        try {
            for (;;) {
                std::vector<std::byte> payload;
                if (!recvMessage(_fd.get(), payload)) {
                    if (_drainClosed.load()) {
                        outcome.end = SessionEnd::Drained;
                        break;
                    }
                    outcome.end = SessionEnd::ConnectionLost;
                    outcome.error = _dropped.load()
                                        ? "drill dropped the connection"
                                        : "controller closed the "
                                          "connection";
                    break;
                }
                proc::Reader in(payload);
                const MsgType type = readType(in);
                if (type == MsgType::Shutdown) {
                    outcome.end = SessionEnd::Shutdown;
                    break;
                }
                if (type != MsgType::JobAssign)
                    throw proc::ProtocolError(
                        "unexpected " + net::toString(type) +
                        " from the controller");
                Assignment assignment;
                assignment.leaseId = in.pod<std::uint64_t>();
                assignment.request = proc::JobRequest::deserialize(in);
                {
                    const std::lock_guard<std::mutex> lock(_mutex);
                    _assignments.push_back(std::move(assignment));
                }
                // notify_all: the heartbeat thread shares this cv, so
                // a notify_one could wake it instead of an executor
                // and strand the assignment in the queue.
                _wake.notify_all();
            }
        } catch (const std::exception &e) {
            if (_drainClosed.load()) {
                outcome.end = SessionEnd::Drained;
            } else {
                outcome.end = SessionEnd::ConnectionLost;
                outcome.error = e.what();
            }
        }
        stop();
        outcome.jobsServed = _jobsServed.load();
        return outcome;
    }

  private:
    void stop()
    {
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_stopping)
                return;
            _stopping = true;
        }
        _wake.notify_all();
    }

    /** Hand back results computed while disconnected. */
    void flushUnsent()
    {
        std::vector<std::pair<std::uint64_t, proc::JobResult>> unsent;
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            unsent.swap(_resume->unsent);
        }
        for (const auto &entry : unsent)
            sendResult(entry.first, entry.second);
    }

    void heartbeatLoop()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        for (;;) {
            _wake.wait_for(lock, _heartbeat);
            if (_stopping)
                return;
            if (std::chrono::steady_clock::now() < _stallUntil)
                continue; // stall-heartbeat drill: stay silent
            const bool draining = _options.drainFlag != nullptr &&
                                  _options.drainFlag->load();
            const bool idle =
                _assignments.empty() && _active.load() == 0;
            lock.unlock();
            try {
                const std::lock_guard<std::mutex> write(_writeMutex);
                if (draining && !_drainSent) {
                    sendMessage(_fd.get(), MsgType::Drain);
                    _drainSent = true;
                }
                sendMessage(_fd.get(), MsgType::Heartbeat);
            } catch (const std::exception &) {
                // Connection gone; the reader loop notices too.
            }
            if (draining && _drainSent && idle) {
                // Every held cell is answered: close deliberately so
                // the reader loop reports a drained session.
                _drainClosed.store(true);
                shutdownSocket(_fd.get());
                lock.lock();
                return;
            }
            lock.lock();
        }
    }

    void executorLoop()
    {
        for (;;) {
            Assignment assignment;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _wake.wait(lock, [this] {
                    return _stopping || !_assignments.empty();
                });
                if (_stopping)
                    return;
                assignment = std::move(_assignments.front());
                _assignments.pop_front();
                _active.fetch_add(1);
            }
            runAssignment(assignment);
            _active.fetch_sub(1);
        }
    }

    void runAssignment(const Assignment &assignment)
    {
        const proc::JobRequest &request = assignment.request;
        proc::JobResult result;
        const auto begin = std::chrono::steady_clock::now();
        try {
            result = executeRequest(request);
        } catch (const NetDrillFault &drill) {
            if (!performDrill(drill, assignment))
                return; // drill consumed the response frame
            result.status = proc::ResultStatus::Transient;
            result.message = std::string(drill.what()) +
                             " — stalled worker answered late";
        } catch (const TransientFault &e) {
            result.status = proc::ResultStatus::Transient;
            result.message = e.what();
        } catch (const DeadlineExceeded &e) {
            result.status = proc::ResultStatus::Deadline;
            result.message = e.what();
        } catch (const ResourceExhausted &e) {
            result.status = proc::ResultStatus::Resource;
            result.message = e.what();
        } catch (const std::exception &e) {
            result.status = proc::ResultStatus::Permanent;
            result.message = e.what();
        }
        result.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - begin)
                .count();
        sendResult(assignment.leaseId, result);
    }

    proc::JobResult executeRequest(const proc::JobRequest &request)
    {
        SimJob job;
        job.workload = &request.profile;
        job.config = request.config;
        job.instructions = request.instructions;
        job.warmupInstructions = request.warmupInstructions;
        job.sampling = request.sampling;
        job.label = request.label;
        if (request.hasHook) {
            if (!_options.hookFactory)
                throw PermanentFault(
                    "worker has no hook factory for hooked job '" +
                    request.label + "'");
            job.makeHook = [this, &request] {
                return _options.hookFactory(request.profile);
            };
        }

        AttemptContext ctx;
        ctx.jobIndex = request.jobIndex;
        ctx.attempt = request.attempt;
        ctx.deadlineBudget = request.deadlineBudget;
        if (ctx.hasDeadline())
            ctx.deadline = std::chrono::steady_clock::now() +
                           ctx.deadlineBudget;
        sample::SampleSummary summary;
        ctx.sampleOut = &summary;

        proc::JobResult result;
        result.cycles = _options.simulate
                            ? _options.simulate(job, ctx)
                            : SimulationEngine::simulateJob(job, ctx);
        result.status = proc::ResultStatus::Ok;
        if (request.sampling.enabled) {
            result.hasSample = true;
            result.sample = summary;
        }
        return result;
    }

    /** Park the job for the next (resumed) connection and slam this
     *  one shut: the drill half of a network partition. */
    void partitionNow(const Assignment &assignment,
                      unsigned stormRounds)
    {
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            _resume->assignments.push_back(assignment);
            _resume->stormRounds = stormRounds;
        }
        _dropped.store(true);
        shutdownSocket(_fd.get());
        stop();
    }

    /** Put the job back on the live queue (the one-shot drill will
     *  not refire; the rerun executes for real). */
    void requeueLive(const Assignment &assignment)
    {
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            _assignments.push_back(assignment);
        }
        _wake.notify_all();
    }

    /**
     * Probe the controller with a hostile second handshake — same
     * session id (split-brain probe) or a wrong token (auth probe).
     * The rejection is asserted controller-side via the
     * net.sessions.rejected / net.auth.rejected counters; whatever
     * happens, the probe must not harm the real session.
     */
    void rogueConnect(bool duplicateSession)
    {
        try {
            OwnedFd rogue = connectTcp(_options.host, _options.port);
            const std::string session = duplicateSession
                                            ? _sessionId
                                            : _sessionId + "/rogue";
            const std::string token = duplicateSession
                                          ? _options.authToken
                                          : "not-the-fleet-token";
            (void)clientHandshake(rogue.get(), _name + "/rogue",
                                  session, 1, {}, token);
        } catch (const std::exception &) {
            // The controller dropped the probe — the expected end.
        }
    }

    /**
     * Act out a network drill. Returns true when the caller should
     * still send a (late) JobDone, false when the drill consumed the
     * response frame (or the connection) itself.
     */
    bool performDrill(const NetDrillFault &drill,
                      const Assignment &assignment)
    {
        switch (drill.kind()) {
          case FaultKind::DropConnection:
            // Slam the connection mid-lease: the controller reclaims
            // every lease this worker held and requeues the cells.
            _dropped.store(true);
            shutdownSocket(_fd.get());
            stop();
            return false;
          case FaultKind::StallHeartbeat: {
            // Go silent past the lease so the controller reclaims and
            // reruns the cell elsewhere, then answer on the stale
            // lease — drilling late-result rejection end to end.
            const auto until = std::chrono::steady_clock::now() +
                               2 * _lease + _heartbeat;
            {
                const std::lock_guard<std::mutex> lock(_mutex);
                _stallUntil = until;
            }
            std::this_thread::sleep_until(until);
            return true;
          }
          case FaultKind::CorruptFrame: {
            // A length prefix promising more payload than follows:
            // the controller's bounds-checked reader classifies it as
            // a TruncatedFrame with the byte counts.
            const std::lock_guard<std::mutex> write(_writeMutex);
            const std::uint32_t claimed = 64;
            char torn[sizeof(claimed) + 8];
            std::memcpy(torn, &claimed, sizeof(claimed));
            std::memset(torn + sizeof(claimed), 0xab, 8);
            (void)!::send(_fd.get(), torn, sizeof(torn),
                          MSG_NOSIGNAL);
            shutdownSocket(_fd.get());
            stop();
            return false;
          }
          case FaultKind::Partition:
            // The job survives the partition: it rides ResumeState
            // into the reconnected session and completes under its
            // original lease — zero requeues if the controller's
            // grace window holds.
            partitionNow(assignment, 0);
            return false;
          case FaultKind::ReconnectStorm:
            // A partition followed by rapid connect/resume/hang-up
            // cycles (run by runRemoteWorker between sessions),
            // hammering the park/resume bookkeeping.
            partitionNow(assignment, 3);
            return false;
          case FaultKind::SlowLoris: {
            // A perfectly valid JobDone frame — delivered a few bytes
            // at a time, the way a congested or malicious peer would.
            // The controller's blocking reader must ride it out; the
            // Transient verdict makes the engine rerun the attempt.
            proc::JobResult result;
            result.status = proc::ResultStatus::Transient;
            result.message = std::string(drill.what()) +
                             " — frame trickled byte by byte";
            proc::Writer body;
            body.pod(assignment.leaseId);
            result.serialize(body);
            std::vector<std::byte> payload;
            payload.reserve(1 + body.bytes().size());
            payload.push_back(
                static_cast<std::byte>(MsgType::JobDone));
            payload.insert(payload.end(), body.bytes().begin(),
                           body.bytes().end());
            const auto size =
                static_cast<std::uint32_t>(payload.size());
            std::vector<char> frame(sizeof(size) + payload.size());
            std::memcpy(frame.data(), &size, sizeof(size));
            std::memcpy(frame.data() + sizeof(size), payload.data(),
                        payload.size());
            const std::lock_guard<std::mutex> write(_writeMutex);
            for (std::size_t at = 0; at < frame.size();) {
                const std::size_t chunk =
                    std::min<std::size_t>(7, frame.size() - at);
                const ssize_t wrote = ::send(
                    _fd.get(), frame.data() + at, chunk,
                    MSG_NOSIGNAL);
                if (wrote < 0) {
                    if (errno == EINTR)
                        continue;
                    break; // connection died; reader loop reports it
                }
                at += static_cast<std::size_t>(wrote);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            _jobsServed.fetch_add(1);
            return false;
          }
          case FaultKind::DuplicateSession:
            rogueConnect(true);
            requeueLive(assignment);
            return false;
          case FaultKind::TokenMismatch:
            rogueConnect(false);
            requeueLive(assignment);
            return false;
          default:
            // Not a net kind (cannot happen: the injector only wraps
            // net kinds in NetDrillFault).
            return true;
        }
    }

    void sendResult(std::uint64_t leaseId,
                    const proc::JobResult &result)
    {
        proc::Writer body;
        body.pod(leaseId);
        result.serialize(body);
        try {
            const std::lock_guard<std::mutex> write(_writeMutex);
            sendMessage(_fd.get(), MsgType::JobDone, body.bytes());
            _jobsServed.fetch_add(1);
        } catch (const std::exception &) {
            // Connection died under us: keep the result for the
            // resumed session's handback (the reader loop reports
            // the loss).
            const std::lock_guard<std::mutex> lock(_mutex);
            _resume->unsent.emplace_back(leaseId, result);
        }
    }

    const RemoteWorkerOptions &_options;
    OwnedFd _fd;
    ResumeState *_resume;
    const std::string _sessionId;
    const std::string _name;
    const std::chrono::milliseconds _lease;
    const std::chrono::milliseconds _heartbeat;

    std::mutex _mutex;
    std::condition_variable _wake;
    bool _stopping = false;
    std::deque<Assignment> _assignments;
    std::chrono::steady_clock::time_point _stallUntil{};

    std::mutex _writeMutex;
    bool _drainSent = false;
    std::atomic<unsigned> _active{0};
    std::atomic<std::uint64_t> _jobsServed{0};
    std::atomic<bool> _dropped{false};
    std::atomic<bool> _drainClosed{false};

    std::thread _heartbeatThread;
    std::vector<std::thread> _executors;
};

} // namespace

std::string
toString(SessionEnd end)
{
    switch (end) {
      case SessionEnd::Shutdown:
        return "shutdown";
      case SessionEnd::ConnectionLost:
        return "connection-lost";
      case SessionEnd::Rejected:
        return "rejected";
      case SessionEnd::Drained:
        return "drained";
    }
    return "unknown";
}

RemoteWorkerSession
runRemoteWorker(const RemoteWorkerOptions &options)
{
    const std::string name =
        options.name.empty() ? defaultWorkerName() : options.name;
    const std::string session_id =
        options.sessionId.empty() ? name + "/" + randomNonce()
                                  : options.sessionId;
    const unsigned slots = options.slots == 0 ? 1u : options.slots;

    ResumeState resume;
    RemoteWorkerSession total;
    unsigned reconnects_left = options.reconnectAttempts;

    // Only the first connect throws: once a session existed, every
    // failure is reported in the session record instead.
    OwnedFd fd = connectTcp(options.host, options.port);

    for (;;) {
        RemoteWorkerSession outcome;
        try {
            std::vector<std::uint64_t> held;
            held.reserve(resume.assignments.size() +
                         resume.unsent.size());
            for (const Assignment &assignment : resume.assignments)
                held.push_back(assignment.leaseId);
            for (const auto &entry : resume.unsent)
                held.push_back(entry.first);
            const ClientHandshake shake =
                clientHandshake(fd.get(), name, session_id, slots,
                                held, options.authToken);
            if (!shake.connected) {
                outcome.end = SessionEnd::ConnectionLost;
                outcome.error = "controller closed during handshake";
            } else if (!shake.accepted) {
                // A reconnect can race the controller noticing the
                // old connection's EOF: "already active" is the one
                // retryable rejection.
                const bool racing_old_self =
                    shake.reason.find("already active") !=
                        std::string::npos &&
                    reconnects_left > 0;
                if (!racing_old_self) {
                    total.end = SessionEnd::Rejected;
                    total.error = shake.reason;
                    return total;
                }
                outcome.end = SessionEnd::ConnectionLost;
                outcome.error = shake.reason;
            } else {
                if (shake.resumed) {
                    total.resumes += 1;
                } else {
                    // Not resumed: the controller requeued whatever
                    // we carried; those lease ids are dead.
                    resume.assignments.clear();
                    resume.unsent.clear();
                }
                Session session(options, std::move(fd), shake.ack,
                                &resume, session_id, name);
                outcome = session.serve(shake.resumed);
            }
        } catch (const std::exception &e) {
            outcome.end = SessionEnd::ConnectionLost;
            outcome.error = e.what();
        }
        total.jobsServed += outcome.jobsServed;
        total.end = outcome.end;
        total.error = outcome.error;
        if (outcome.end != SessionEnd::ConnectionLost)
            return total; // Shutdown or Drained: deliberate ends

        // Reconnect-storm drill: rapid connect/resume/hang-up cycles
        // before the real reconnect, hammering park/resume.
        while (resume.stormRounds > 0) {
            resume.stormRounds -= 1;
            try {
                OwnedFd storm =
                    connectTcp(options.host, options.port);
                std::vector<std::uint64_t> held;
                for (const Assignment &assignment :
                     resume.assignments)
                    held.push_back(assignment.leaseId);
                for (const auto &entry : resume.unsent)
                    held.push_back(entry.first);
                (void)clientHandshake(storm.get(), name, session_id,
                                      slots, held, options.authToken);
                // Hang up immediately: the controller parks us again.
            } catch (const std::exception &) {
                break;
            }
        }

        if (reconnects_left == 0)
            return total;
        reconnects_left -= 1;
        std::this_thread::sleep_for(options.reconnectDelay);
        try {
            fd = connectTcp(options.host, options.port);
        } catch (const std::exception &e) {
            total.error = e.what();
            return total;
        }
    }
}

} // namespace rigor::exec::net
