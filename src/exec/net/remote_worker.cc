#include "exec/net/remote_worker.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/fault_injection.hh"
#include "exec/net/socket.hh"
#include "exec/net/wire.hh"

namespace rigor::exec::net
{

namespace
{

std::string
defaultWorkerName()
{
    char host[256] = "worker";
    (void)::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

/** One leased job pulled off the connection. */
struct Assignment
{
    std::uint64_t leaseId = 0;
    proc::JobRequest request;
};

/** Shared state of one worker session. */
class Session
{
  public:
    Session(const RemoteWorkerOptions &options, OwnedFd fd,
            const HelloAck &ack)
        : _options(options), _fd(std::move(fd)),
          _lease(std::chrono::milliseconds(ack.leaseMs)),
          _heartbeat(std::chrono::milliseconds(ack.heartbeatMs))
    {
        _heartbeatThread = std::thread(&Session::heartbeatLoop, this);
        const unsigned slots = std::max(1u, options.slots);
        _executors.reserve(slots);
        for (unsigned i = 0; i < slots; ++i)
            _executors.emplace_back(&Session::executorLoop, this);
    }

    ~Session()
    {
        stop();
        if (_heartbeatThread.joinable())
            _heartbeatThread.join();
        for (std::thread &executor : _executors)
            if (executor.joinable())
                executor.join();
    }

    /** Read frames until Shutdown / EOF; returns how it ended. */
    RemoteWorkerSession serve()
    {
        RemoteWorkerSession outcome;
        try {
            for (;;) {
                std::vector<std::byte> payload;
                if (!recvMessage(_fd.get(), payload)) {
                    outcome.end = SessionEnd::ConnectionLost;
                    outcome.error = _dropped.load()
                                        ? "drill dropped the connection"
                                        : "controller closed the "
                                          "connection";
                    break;
                }
                proc::Reader in(payload);
                const MsgType type = readType(in);
                if (type == MsgType::Shutdown) {
                    outcome.end = SessionEnd::Shutdown;
                    break;
                }
                if (type != MsgType::JobAssign)
                    throw proc::ProtocolError(
                        "unexpected " + net::toString(type) +
                        " from the controller");
                Assignment assignment;
                assignment.leaseId = in.pod<std::uint64_t>();
                assignment.request = proc::JobRequest::deserialize(in);
                {
                    const std::lock_guard<std::mutex> lock(_mutex);
                    _assignments.push_back(std::move(assignment));
                }
                // notify_all: the heartbeat thread shares this cv, so
                // a notify_one could wake it instead of an executor
                // and strand the assignment in the queue.
                _wake.notify_all();
            }
        } catch (const std::exception &e) {
            outcome.end = SessionEnd::ConnectionLost;
            outcome.error = e.what();
        }
        stop();
        outcome.jobsServed = _jobsServed.load();
        return outcome;
    }

  private:
    void stop()
    {
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_stopping)
                return;
            _stopping = true;
        }
        _wake.notify_all();
    }

    void heartbeatLoop()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        for (;;) {
            _wake.wait_for(lock, _heartbeat);
            if (_stopping)
                return;
            if (std::chrono::steady_clock::now() < _stallUntil)
                continue; // stall-heartbeat drill: stay silent
            lock.unlock();
            try {
                const std::lock_guard<std::mutex> write(_writeMutex);
                sendMessage(_fd.get(), MsgType::Heartbeat);
            } catch (const std::exception &) {
                // Connection gone; the reader loop notices too.
            }
            lock.lock();
        }
    }

    void executorLoop()
    {
        for (;;) {
            Assignment assignment;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _wake.wait(lock, [this] {
                    return _stopping || !_assignments.empty();
                });
                if (_stopping)
                    return;
                assignment = std::move(_assignments.front());
                _assignments.pop_front();
            }
            runAssignment(assignment);
        }
    }

    void runAssignment(const Assignment &assignment)
    {
        const proc::JobRequest &request = assignment.request;
        proc::JobResult result;
        const auto begin = std::chrono::steady_clock::now();
        try {
            result = executeRequest(request);
        } catch (const NetDrillFault &drill) {
            if (!performDrill(drill))
                return; // drill consumed the response frame
            result.status = proc::ResultStatus::Transient;
            result.message = std::string(drill.what()) +
                             " — stalled worker answered late";
        } catch (const TransientFault &e) {
            result.status = proc::ResultStatus::Transient;
            result.message = e.what();
        } catch (const DeadlineExceeded &e) {
            result.status = proc::ResultStatus::Deadline;
            result.message = e.what();
        } catch (const ResourceExhausted &e) {
            result.status = proc::ResultStatus::Resource;
            result.message = e.what();
        } catch (const std::exception &e) {
            result.status = proc::ResultStatus::Permanent;
            result.message = e.what();
        }
        result.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - begin)
                .count();
        sendResult(assignment.leaseId, result);
    }

    proc::JobResult executeRequest(const proc::JobRequest &request)
    {
        SimJob job;
        job.workload = &request.profile;
        job.config = request.config;
        job.instructions = request.instructions;
        job.warmupInstructions = request.warmupInstructions;
        job.sampling = request.sampling;
        job.label = request.label;
        if (request.hasHook) {
            if (!_options.hookFactory)
                throw PermanentFault(
                    "worker has no hook factory for hooked job '" +
                    request.label + "'");
            job.makeHook = [this, &request] {
                return _options.hookFactory(request.profile);
            };
        }

        AttemptContext ctx;
        ctx.jobIndex = request.jobIndex;
        ctx.attempt = request.attempt;
        ctx.deadlineBudget = request.deadlineBudget;
        if (ctx.hasDeadline())
            ctx.deadline = std::chrono::steady_clock::now() +
                           ctx.deadlineBudget;
        sample::SampleSummary summary;
        ctx.sampleOut = &summary;

        proc::JobResult result;
        result.cycles = _options.simulate
                            ? _options.simulate(job, ctx)
                            : SimulationEngine::simulateJob(job, ctx);
        result.status = proc::ResultStatus::Ok;
        if (request.sampling.enabled) {
            result.hasSample = true;
            result.sample = summary;
        }
        return result;
    }

    /**
     * Act out a network drill. Returns true when the caller should
     * still send a (late) JobDone, false when the drill ate the
     * connection and no response frame must follow.
     */
    bool performDrill(const NetDrillFault &drill)
    {
        switch (drill.kind()) {
          case FaultKind::DropConnection:
            // Slam the connection mid-lease: the controller reclaims
            // every lease this worker held and requeues the cells.
            _dropped.store(true);
            shutdownSocket(_fd.get());
            stop();
            return false;
          case FaultKind::StallHeartbeat: {
            // Go silent past the lease so the controller reclaims and
            // reruns the cell elsewhere, then answer on the stale
            // lease — drilling late-result rejection end to end.
            const auto until = std::chrono::steady_clock::now() +
                               2 * _lease + _heartbeat;
            {
                const std::lock_guard<std::mutex> lock(_mutex);
                _stallUntil = until;
            }
            std::this_thread::sleep_until(until);
            return true;
          }
          case FaultKind::CorruptFrame: {
            // A length prefix promising more payload than follows:
            // the controller's bounds-checked reader classifies it as
            // a TruncatedFrame with the byte counts.
            const std::lock_guard<std::mutex> write(_writeMutex);
            const std::uint32_t claimed = 64;
            char torn[sizeof(claimed) + 8];
            std::memcpy(torn, &claimed, sizeof(claimed));
            std::memset(torn + sizeof(claimed), 0xab, 8);
            (void)!::write(_fd.get(), torn, sizeof(torn));
            shutdownSocket(_fd.get());
            stop();
            return false;
          }
          default:
            // Not a net kind (cannot happen: the injector only wraps
            // net kinds in NetDrillFault).
            return true;
        }
    }

    void sendResult(std::uint64_t leaseId,
                    const proc::JobResult &result)
    {
        proc::Writer body;
        body.pod(leaseId);
        result.serialize(body);
        try {
            const std::lock_guard<std::mutex> write(_writeMutex);
            sendMessage(_fd.get(), MsgType::JobDone, body.bytes());
            _jobsServed.fetch_add(1);
        } catch (const std::exception &) {
            // Connection died under us; the reader loop reports it.
        }
    }

    const RemoteWorkerOptions &_options;
    OwnedFd _fd;
    const std::chrono::milliseconds _lease;
    const std::chrono::milliseconds _heartbeat;

    std::mutex _mutex;
    std::condition_variable _wake;
    bool _stopping = false;
    std::deque<Assignment> _assignments;
    std::chrono::steady_clock::time_point _stallUntil{};

    std::mutex _writeMutex;
    std::atomic<std::uint64_t> _jobsServed{0};
    std::atomic<bool> _dropped{false};

    std::thread _heartbeatThread;
    std::vector<std::thread> _executors;
};

} // namespace

std::string
toString(SessionEnd end)
{
    switch (end) {
      case SessionEnd::Shutdown:
        return "shutdown";
      case SessionEnd::ConnectionLost:
        return "connection-lost";
      case SessionEnd::Rejected:
        return "rejected";
    }
    return "unknown";
}

RemoteWorkerSession
runRemoteWorker(const RemoteWorkerOptions &options)
{
    OwnedFd fd = connectTcp(options.host, options.port);

    Hello hello;
    hello.slots = static_cast<std::uint16_t>(
        std::min(options.slots == 0 ? 1u : options.slots, 65535u));
    hello.name =
        options.name.empty() ? defaultWorkerName() : options.name;
    proc::Writer hello_body;
    hello.serialize(hello_body);

    RemoteWorkerSession outcome;
    try {
        sendMessage(fd.get(), MsgType::Hello, hello_body.bytes());
        std::vector<std::byte> payload;
        if (!recvMessage(fd.get(), payload)) {
            outcome.error = "controller closed during handshake";
            return outcome;
        }
        proc::Reader in(payload);
        if (readType(in) != MsgType::HelloAck)
            throw proc::ProtocolError(
                "expected hello-ack from the controller");
        const HelloAck ack = HelloAck::deserialize(in);
        if (!ack.accepted) {
            outcome.end = SessionEnd::Rejected;
            outcome.error = ack.reason;
            return outcome;
        }
        Session session(options, std::move(fd), ack);
        return session.serve();
    } catch (const std::exception &e) {
        outcome.error = e.what();
        return outcome;
    }
}

} // namespace rigor::exec::net
