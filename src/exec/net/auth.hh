/**
 * @file
 * Handshake authentication primitives for the worker fleet.
 *
 * The controller and its workers share one campaign token (a file
 * both sides read at startup). Joining the fleet is a challenge-
 * response: the controller sends a fresh random nonce in its
 * HelloAck, the worker answers with HMAC-SHA256(token, nonce ||
 * session id || worker name), and the controller verifies the proof
 * before registering the worker or granting any lease. Because the
 * nonce is fresh per connection, a captured proof replayed on a new
 * connection fails verification — replay is counted and dropped with
 * every other bad proof.
 *
 * Threat model: the token authenticates *fleet membership* on a
 * network where the port is reachable by untrusted processes. It
 * does not encrypt traffic, does not protect against an attacker who
 * can read the token file or observe a worker's memory, and does not
 * authenticate the controller to the worker beyond possession of the
 * same token (the worker never verifies a controller proof). See
 * EXPERIMENTS.md for the full failure-model discussion.
 *
 * SHA-256 (FIPS 180-4) and HMAC (RFC 2104) are implemented here
 * directly — the repo links no crypto library — and validated
 * against the RFC 4231 test vectors in the unit tests.
 */

#ifndef RIGOR_EXEC_NET_AUTH_HH
#define RIGOR_EXEC_NET_AUTH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rigor::exec::net
{

/** A SHA-256 digest: 32 raw bytes. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** SHA-256 of @p size bytes at @p data. */
Sha256Digest sha256(const void *data, std::size_t size);

/** HMAC-SHA256 over @p size bytes at @p data, keyed by @p key. */
Sha256Digest hmacSha256(const std::string &key, const void *data,
                        std::size_t size);

/** Lower-case hex rendering of a digest (64 characters). */
std::string toHex(const Sha256Digest &digest);

/**
 * The handshake proof: hex HMAC-SHA256 of challenge || sessionId ||
 * name under the shared token. Both sides compute it; the controller
 * compares in constant time.
 */
std::string authProof(const std::string &token,
                      const std::string &challenge,
                      const std::string &sessionId,
                      const std::string &name);

/**
 * Compare two strings without an early exit on the first differing
 * byte, so proof verification leaks no prefix-length timing.
 */
bool constantTimeEquals(const std::string &a, const std::string &b);

/**
 * Read a shared token from @p path, stripping trailing whitespace
 * (a trailing newline from `echo secret > token` must not change the
 * key). Throws std::runtime_error when the file is unreadable or the
 * stripped token is empty.
 */
std::string loadAuthToken(const std::string &path);

/**
 * A fresh random 32-hex-character nonce from std::random_device,
 * used as the per-connection handshake challenge and as the default
 * worker session id.
 */
std::string randomNonce();

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_AUTH_HH
