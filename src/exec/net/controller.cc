#include "exec/net/controller.hh"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "exec/net/auth.hh"
#include "exec/net/wire.hh"
#include "obs/metrics.hh"

namespace rigor::exec::net
{

std::string
toString(LeaseEvent::Kind kind)
{
    switch (kind) {
      case LeaseEvent::Kind::WorkerJoined:
        return "worker-joined";
      case LeaseEvent::Kind::WorkerLost:
        return "worker-lost";
      case LeaseEvent::Kind::WorkerLapsed:
        return "worker-lapsed";
      case LeaseEvent::Kind::LeaseReclaimed:
        return "lease-reclaimed";
      case LeaseEvent::Kind::LateResult:
        return "late-result";
      case LeaseEvent::Kind::AuthRejected:
        return "auth-rejected";
      case LeaseEvent::Kind::SessionRejected:
        return "session-rejected";
      case LeaseEvent::Kind::SessionParked:
        return "session-parked";
      case LeaseEvent::Kind::SessionResumed:
        return "session-resumed";
      case LeaseEvent::Kind::SessionExpired:
        return "session-expired";
      case LeaseEvent::Kind::WorkerDraining:
        return "worker-draining";
    }
    return "unknown";
}

/** One queued/leased cell and the execute() call waiting on it. */
struct CampaignController::Pending
{
    /** Serialized proc::JobRequest (lease id prepended at grant). */
    std::vector<std::byte> request;
    std::string label;
    bool done = false;
    proc::JobResult result;
    /** Set instead of result on migration exhaustion / shutdown. */
    std::exception_ptr error;
    /** Name of the worker whose result was accepted. */
    std::string servedBy;
    /** Lease losses so far. */
    unsigned requeues = 0;
    /** Workers that ever held (and lost) this cell's lease. */
    std::set<std::string> triedWorkers;
};

/** One accepted fleet member. */
struct CampaignController::Worker
{
    int fd = -1;
    std::string name;
    /** Durable session identity; survives reconnects. */
    std::string sessionId;
    unsigned slots = 1;
    unsigned inFlight = 0;
    /** Silent past the lease: no new grants until a heartbeat. */
    bool lapsed = false;
    /** Connection finished; kept out of every decision. */
    bool gone = false;
    /** Announced a drain: no new grants, in-flight cells finish. */
    bool draining = false;
    std::chrono::steady_clock::time_point lastSeen;
    /** When the session was parked (meaningful while in _parked). */
    std::chrono::steady_clock::time_point parkedAt;
};

/** One outstanding grant. */
struct CampaignController::Lease
{
    std::shared_ptr<Pending> pending;
    std::shared_ptr<Worker> worker;
};

CampaignController::CampaignController(const ControllerOptions &options)
    : _options(options)
{
    if (_options.lease.count() <= 0)
        throw std::invalid_argument(
            "CampaignController: lease duration must be positive");
    if (_options.heartbeat.count() <= 0)
        throw std::invalid_argument(
            "CampaignController: heartbeat interval must be positive");
    _listener = listenTcp(_options.bindAddress, _options.port);
    _port = boundPort(_listener.get());
    _acceptThread = std::thread(&CampaignController::acceptLoop, this);
    _monitorThread =
        std::thread(&CampaignController::monitorLoop, this);
}

CampaignController::~CampaignController()
{
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
        const auto fail = [](const std::shared_ptr<Pending> &pending) {
            if (pending->done)
                return;
            pending->error = std::make_exception_ptr(TransientFault(
                "campaign controller shut down with cell '" +
                pending->label + "' unfinished"));
            pending->done = true;
        };
        for (const auto &pending : _queue)
            fail(pending);
        for (const auto &entry : _leases)
            fail(entry.second.pending);
        _queue.clear();
        _leases.clear();
        for (const auto &worker : _workers) {
            try {
                sendMessage(worker->fd, MsgType::Shutdown);
            } catch (const std::exception &) {
                // Already-dead connection; the socket shutdown below
                // unblocks its reader thread either way.
            }
            shutdownSocket(worker->fd);
        }
        // Parked sessions hold only dead fds; just forget them. A
        // connection still mid-handshake is blocked in a read —
        // shut its socket so the thread can be joined below.
        _parked.clear();
        for (const int handshake_fd : _handshakeFds)
            shutdownSocket(handshake_fd);
        _cv.notify_all();
    }
    // shutdown() (not close) wakes the blocked accept() without
    // racing fd reuse; the fd itself is closed after the join.
    shutdownSocket(_listener.get());
    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_monitorThread.joinable())
        _monitorThread.join();
    std::vector<std::thread> connections;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        connections.swap(_connectionThreads);
    }
    for (std::thread &thread : connections)
        if (thread.joinable())
            thread.join();
}

unsigned
CampaignController::connectedWorkers() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return static_cast<unsigned>(_workers.size());
}

bool
CampaignController::waitForWorkers(unsigned count,
                                   std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(_mutex);
    return _cv.wait_for(lock, timeout, [&] {
        return _shutdown || _workers.size() >= count;
    }) && !_shutdown;
}

void
CampaignController::setMetrics(obs::MetricsRegistry *metrics)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    if (metrics == nullptr) {
        _joinedCounter = _lostCounter = _grantedCounter =
            _reclaimedCounter = _lateCounter = _parkedCounter =
                _resumedCounter = _expiredCounter =
                    _sessionRejectedCounter = _authAcceptedCounter =
                        _authRejectedCounter = nullptr;
        _connectedGauge = nullptr;
        return;
    }
    _joinedCounter = &metrics->counter("net.workers.joined");
    _lostCounter = &metrics->counter("net.workers.lost");
    _grantedCounter = &metrics->counter("net.leases.granted");
    _reclaimedCounter = &metrics->counter("net.leases.reclaimed");
    _lateCounter = &metrics->counter("net.results.late");
    _parkedCounter = &metrics->counter("net.sessions.parked");
    _resumedCounter = &metrics->counter("net.sessions.resumed");
    _expiredCounter = &metrics->counter("net.sessions.expired");
    _sessionRejectedCounter =
        &metrics->counter("net.sessions.rejected");
    _authAcceptedCounter = &metrics->counter("net.auth.accepted");
    _authRejectedCounter = &metrics->counter("net.auth.rejected");
    _connectedGauge = &metrics->gauge("net.workers.connected");
}

void
CampaignController::setLeaseObserver(LeaseObserver observer)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _observer = std::move(observer);
}

SimulateFn
CampaignController::simulateFn()
{
    return [this](const SimJob &job, const AttemptContext &ctx) {
        return execute(job, ctx);
    };
}

std::uint64_t
CampaignController::leasesGranted() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _leasesGranted;
}

std::uint64_t
CampaignController::leasesReclaimed() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _leasesReclaimed;
}

std::uint64_t
CampaignController::lateResults() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _lateResults;
}

std::uint64_t
CampaignController::sessionsParked() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _sessionsParked;
}

std::uint64_t
CampaignController::sessionsResumed() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _sessionsResumed;
}

std::uint64_t
CampaignController::sessionsExpired() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _sessionsExpired;
}

std::uint64_t
CampaignController::sessionsRejected() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _sessionsRejected;
}

std::uint64_t
CampaignController::authAccepted() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _authAccepted;
}

std::uint64_t
CampaignController::authRejected() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _authRejected;
}

bool
CampaignController::draining() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

void
CampaignController::beginDrain(std::chrono::milliseconds waitInFlight)
{
    std::unique_lock<std::mutex> lock(_mutex);
    if (_draining || _shutdown)
        return;
    // Phase 1: stop granting. pumpLocked and execute() both gate on
    // _draining, so from here no new lease leaves the controller.
    _draining = true;
    _cv.notify_all();
    // Phase 2: let in-flight cells finish. The wait is bounded by
    // the caller's budget — a silent worker cannot stall the drain
    // past the lease clock, because the monitor reclaims its leases
    // (erasing them) on schedule.
    _cv.wait_for(lock, waitInFlight, [&] { return _leases.empty(); });
    // Phase 3: fail whatever remains so every blocked execute()
    // unwinds. The cells live on in the journal-resume path.
    const auto fail = [](const std::shared_ptr<Pending> &pending) {
        if (pending->done)
            return;
        pending->error = std::make_exception_ptr(TransientFault(
            "controller draining: cell '" + pending->label +
            "' left for the journal resume"));
        pending->done = true;
    };
    for (const auto &pending : _queue)
        fail(pending);
    for (const auto &entry : _leases)
        fail(entry.second.pending);
    _queue.clear();
    _leases.clear();
    // Parked sessions have nothing left to resume into.
    _parked.clear();
    _cv.notify_all();
}

double
CampaignController::execute(const SimJob &job,
                            const AttemptContext &ctx)
{
    proc::JobRequest request;
    request.profile = *job.workload;
    request.config = job.config;
    request.instructions = job.instructions;
    request.warmupInstructions = job.warmupInstructions;
    request.hasHook = static_cast<bool>(job.makeHook);
    request.label = job.label;
    request.jobIndex = ctx.jobIndex;
    request.attempt = ctx.attempt;
    request.deadlineBudget = ctx.deadlineBudget;
    request.sampling = job.sampling;
    proc::Writer out;
    request.serialize(out);

    auto pending = std::make_shared<Pending>();
    pending->request = out.bytes();
    pending->label = job.label;

    proc::JobResult result;
    std::string served_by;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        if (_shutdown)
            throw TransientFault(
                "campaign controller is shut down (job '" + job.label +
                "')");
        if (_draining)
            throw TransientFault(
                "controller draining: cell '" + job.label +
                "' left for the journal resume");
        _queue.push_back(pending);
        pumpLocked();
        _cv.wait(lock, [&] { return pending->done; });
        if (pending->error)
            std::rethrow_exception(pending->error);
        result = std::move(pending->result);
        served_by = std::move(pending->servedBy);
    }

    switch (result.status) {
      case proc::ResultStatus::Ok:
        if (ctx.sampleOut != nullptr && result.hasSample)
            *ctx.sampleOut = result.sample;
        if (ctx.hostOut != nullptr)
            *ctx.hostOut = served_by;
        return result.cycles;
      case proc::ResultStatus::Transient:
        throw TransientFault(result.message);
      case proc::ResultStatus::Deadline:
        throw DeadlineExceeded(result.message);
      case proc::ResultStatus::Resource:
        throw ResourceExhausted(result.message);
      case proc::ResultStatus::Permanent:
        break;
    }
    throw PermanentFault(result.message);
}

void
CampaignController::acceptLoop()
{
    for (;;) {
        OwnedFd client = acceptClient(_listener.get());
        if (!client.valid())
            return; // listener shut down: controller winding down
        const std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            return;
        _connectionThreads.emplace_back(
            &CampaignController::serveConnection, this,
            client.release());
    }
}

namespace
{

/** Send a SessionAck rejecting the handshake (best-effort). */
void
sendSessionReject(int fd, const std::string &reason)
{
    SessionAck nack;
    nack.accepted = false;
    nack.reason = reason;
    proc::Writer body;
    nack.serialize(body);
    try {
        sendMessage(fd, MsgType::SessionAck, body.bytes());
    } catch (const std::exception &) {
        // The peer is gone; it was being rejected anyway.
    }
}

} // namespace

std::shared_ptr<CampaignController::Worker>
CampaignController::performHandshake(OwnedFd &fd)
{
    std::vector<std::byte> payload;
    if (!recvMessage(fd.get(), payload)) {
        const std::lock_guard<std::mutex> lock(_mutex);
        authRejectedLocked("", "", "connection closed before hello");
        return nullptr;
    }
    proc::Reader in(payload);
    if (readType(in) != MsgType::Hello) {
        const std::lock_guard<std::mutex> lock(_mutex);
        authRejectedLocked("", "", "first message was not hello");
        return nullptr;
    }
    const Hello hello = Hello::deserialize(in);

    HelloAck ack;
    ack.leaseMs = static_cast<std::uint64_t>(_options.lease.count());
    ack.heartbeatMs =
        static_cast<std::uint64_t>(_options.heartbeat.count());
    if (hello.magic != kWireMagic)
        ack.reason = "bad protocol magic";
    else if (hello.version != kWireVersion)
        ack.reason = "unsupported protocol version " +
                     std::to_string(hello.version) +
                     " (controller speaks " +
                     std::to_string(kWireVersion) + ")";
    else if (hello.name.empty())
        ack.reason = "empty worker name";
    else if (hello.slots == 0)
        ack.reason = "zero worker slots";
    else if (hello.sessionId.empty())
        ack.reason = "empty session id";
    else
        ack.accepted = true;
    ack.authRequired =
        ack.accepted && !_options.authToken.empty();
    if (ack.authRequired)
        ack.challenge = randomNonce();
    proc::Writer ack_body;
    ack.serialize(ack_body);
    sendMessage(fd.get(), MsgType::HelloAck, ack_body.bytes());
    if (!ack.accepted) {
        const std::lock_guard<std::mutex> lock(_mutex);
        authRejectedLocked(hello.name, hello.sessionId, ack.reason);
        return nullptr;
    }

    if (ack.authRequired) {
        std::vector<std::byte> proof_payload;
        if (!recvMessage(fd.get(), proof_payload)) {
            const std::lock_guard<std::mutex> lock(_mutex);
            authRejectedLocked(hello.name, hello.sessionId,
                               "connection closed before auth proof");
            return nullptr;
        }
        proc::Reader proof_in(proof_payload);
        if (readType(proof_in) != MsgType::AuthProof) {
            sendSessionReject(fd.get(), "auth proof required");
            const std::lock_guard<std::mutex> lock(_mutex);
            authRejectedLocked(hello.name, hello.sessionId,
                               "auth proof required but not sent");
            return nullptr;
        }
        const AuthProofMsg proof =
            AuthProofMsg::deserialize(proof_in);
        const std::string expected =
            authProof(_options.authToken, ack.challenge,
                      hello.sessionId, hello.name);
        if (!constantTimeEquals(proof.proof, expected)) {
            sendSessionReject(fd.get(), "bad auth proof");
            const std::lock_guard<std::mutex> lock(_mutex);
            authRejectedLocked(hello.name, hello.sessionId,
                               "bad auth proof");
            return nullptr;
        }
    }

    // Registration: resume a parked session, or join fresh. The
    // verdict (SessionAck) is sent under the lock so no lease can
    // be granted to a half-registered worker.
    const std::lock_guard<std::mutex> lock(_mutex);
    if (_shutdown)
        return nullptr;
    for (const std::shared_ptr<Worker> &live : _workers) {
        if (live->gone || live->sessionId != hello.sessionId)
            continue;
        sendSessionReject(fd.get(), "session id already active");
        _sessionsRejected += 1;
        if (_sessionRejectedCounter != nullptr)
            _sessionRejectedCounter->add();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::SessionRejected;
        event.worker = hello.name;
        event.session = hello.sessionId;
        event.detail = "session id already active on worker '" +
                       live->name + "'";
        emitLocked(std::move(event));
        return nullptr;
    }

    std::shared_ptr<Worker> worker;
    bool resumed = false;
    std::uint32_t retained = 0;
    const auto parked_it = _parked.find(hello.sessionId);
    if (parked_it != _parked.end()) {
        // Lease handback: adopt the parked session onto this
        // connection. Leases the worker still remembers stay live;
        // the rest (e.g. eaten by a drill mid-partition) requeue.
        worker = parked_it->second;
        _parked.erase(parked_it);
        worker->fd = fd.get();
        worker->name = hello.name;
        worker->slots = hello.slots;
        worker->gone = false;
        worker->lapsed = false;
        worker->draining = false;
        worker->lastSeen = std::chrono::steady_clock::now();
        const std::unordered_set<std::uint64_t> held(
            hello.heldLeases.begin(), hello.heldLeases.end());
        for (auto it = _leases.begin(); it != _leases.end();) {
            if (it->second.worker != worker) {
                ++it;
                continue;
            }
            if (held.count(it->first) != 0) {
                ++it;
                retained += 1;
                continue;
            }
            it = reclaimLeaseLocked(it,
                                    "lease not held after reconnect");
        }
        worker->inFlight = retained;
        resumed = true;
        _sessionsResumed += 1;
        if (_resumedCounter != nullptr)
            _resumedCounter->add();
        _workers.push_back(worker);
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::SessionResumed;
        event.worker = worker->name;
        event.session = worker->sessionId;
        event.detail =
            std::to_string(retained) + " lease(s) retained";
        emitLocked(std::move(event));
    } else {
        worker = std::make_shared<Worker>();
        worker->fd = fd.get();
        worker->name = hello.name;
        worker->sessionId = hello.sessionId;
        worker->slots = hello.slots;
        worker->lastSeen = std::chrono::steady_clock::now();
        _workers.push_back(worker);
        if (_joinedCounter != nullptr)
            _joinedCounter->add();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::WorkerJoined;
        event.worker = worker->name;
        event.session = worker->sessionId;
        event.detail = std::to_string(worker->slots) + " slot(s)";
        emitLocked(std::move(event));
    }
    if (ack.authRequired) {
        _authAccepted += 1;
        if (_authAcceptedCounter != nullptr)
            _authAcceptedCounter->add();
    }

    SessionAck verdict;
    verdict.accepted = true;
    verdict.resumed = resumed;
    verdict.retainedLeases = retained;
    proc::Writer verdict_body;
    verdict.serialize(verdict_body);
    sendMessage(fd.get(), MsgType::SessionAck,
                verdict_body.bytes());

    updateConnectedGaugeLocked();
    _cv.notify_all();
    pumpLocked();
    return worker;
}

void
CampaignController::serveConnection(int rawFd)
{
    OwnedFd fd(rawFd);
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            return;
        _handshakeFds.insert(fd.get());
    }
    std::shared_ptr<Worker> worker;
    std::string end_reason = "connection lost";
    try {
        worker = performHandshake(fd);
    } catch (const std::exception &e) {
        const std::lock_guard<std::mutex> lock(_mutex);
        _handshakeFds.erase(fd.get());
        authRejectedLocked(
            "", "", std::string("malformed handshake: ") + e.what());
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _handshakeFds.erase(fd.get());
    }
    if (worker == nullptr)
        return;
    try {
        for (;;) {
            std::vector<std::byte> message;
            if (!recvMessage(fd.get(), message))
                break; // clean EOF
            proc::Reader reader(message);
            const MsgType type = readType(reader);
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_shutdown)
                return;
            worker->lastSeen = std::chrono::steady_clock::now();
            if (worker->lapsed) {
                worker->lapsed = false;
                pumpLocked();
            }
            switch (type) {
              case MsgType::Heartbeat:
                break;
              case MsgType::JobDone:
                handleJobDoneLocked(worker, reader);
                break;
              case MsgType::Drain:
                if (!worker->draining) {
                    worker->draining = true;
                    LeaseEvent event;
                    event.kind = LeaseEvent::Kind::WorkerDraining;
                    event.worker = worker->name;
                    event.session = worker->sessionId;
                    event.detail = "no further leases; " +
                                   std::to_string(worker->inFlight) +
                                   " cell(s) finishing";
                    emitLocked(std::move(event));
                }
                break;
              default:
                throw proc::ProtocolError(
                    "unexpected " + net::toString(type) +
                    " from worker '" + worker->name + "'");
            }
        }
    } catch (const std::exception &e) {
        end_reason = e.what();
    }
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        workerGoneLocked(worker, end_reason);
    }
}

void
CampaignController::monitorLoop()
{
    const auto tick = std::max<std::chrono::milliseconds>(
        std::chrono::milliseconds(10),
        std::min(_options.heartbeat, _options.lease / 4));
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_shutdown) {
        _cv.wait_for(lock, tick);
        if (_shutdown)
            return;
        const auto now = std::chrono::steady_clock::now();
        // Snapshot: reclaim mutates _workers bookkeeping.
        const std::vector<std::shared_ptr<Worker>> fleet = _workers;
        for (const std::shared_ptr<Worker> &worker : fleet) {
            if (worker->gone || worker->lapsed)
                continue;
            if (now - worker->lastSeen <= _options.lease)
                continue;
            worker->lapsed = true;
            LeaseEvent event;
            event.kind = LeaseEvent::Kind::WorkerLapsed;
            event.worker = worker->name;
            event.session = worker->sessionId;
            event.detail =
                "silent past the " +
                std::to_string(_options.lease.count()) + " ms lease";
            emitLocked(std::move(event));
            reclaimLeasesLocked(worker, "heartbeat lapse");
        }
        // Parked sessions past the grace window fall back to the
        // ordinary reclaim path: requeue the leases and report the
        // worker lost, exactly as if parking never happened.
        for (auto it = _parked.begin(); it != _parked.end();) {
            const std::shared_ptr<Worker> worker = it->second;
            if (now - worker->parkedAt <= _options.sessionGrace) {
                ++it;
                continue;
            }
            it = _parked.erase(it);
            _sessionsExpired += 1;
            if (_expiredCounter != nullptr)
                _expiredCounter->add();
            LeaseEvent event;
            event.kind = LeaseEvent::Kind::SessionExpired;
            event.worker = worker->name;
            event.session = worker->sessionId;
            event.detail =
                "no reconnect within the " +
                std::to_string(_options.sessionGrace.count()) +
                " ms grace window";
            emitLocked(std::move(event));
            reclaimLeasesLocked(worker, "session grace expired");
            if (_lostCounter != nullptr)
                _lostCounter->add();
            LeaseEvent lost;
            lost.kind = LeaseEvent::Kind::WorkerLost;
            lost.worker = worker->name;
            lost.session = worker->sessionId;
            lost.detail = "session grace expired";
            emitLocked(std::move(lost));
        }
        pumpLocked();
    }
}

void
CampaignController::pumpLocked()
{
    // A draining controller grants nothing: in-flight cells finish,
    // everything queued waits for the journal resume.
    if (_draining)
        return;
    for (;;) {
        if (_queue.empty())
            return;
        const std::shared_ptr<Pending> pending = _queue.front();
        // Prefer a worker this cell never failed on; fall back to a
        // tried one (the migration cap bounds the damage).
        std::shared_ptr<Worker> chosen;
        std::shared_ptr<Worker> fallback;
        for (const std::shared_ptr<Worker> &worker : _workers) {
            if (worker->gone || worker->lapsed || worker->draining ||
                worker->inFlight >= worker->slots)
                continue;
            if (pending->triedWorkers.count(worker->name) != 0) {
                if (fallback == nullptr)
                    fallback = worker;
                continue;
            }
            chosen = worker;
            break;
        }
        if (chosen == nullptr)
            chosen = fallback;
        if (chosen == nullptr)
            return; // no free worker: cells wait for the next pump
        _queue.pop_front();
        const std::uint64_t lease_id = _nextLeaseId++;
        std::vector<std::byte> body(sizeof(lease_id) +
                                    pending->request.size());
        std::memcpy(body.data(), &lease_id, sizeof(lease_id));
        std::memcpy(body.data() + sizeof(lease_id),
                    pending->request.data(),
                    pending->request.size());
        try {
            sendMessage(chosen->fd, MsgType::JobAssign, body);
        } catch (const std::exception &) {
            // Dead connection discovered at send time: requeue the
            // cell and retire the worker (reclaims its other leases).
            _queue.push_front(pending);
            workerGoneLocked(chosen, "job dispatch failed");
            continue;
        }
        chosen->inFlight += 1;
        _leases[lease_id] = Lease{pending, chosen};
        _leasesGranted += 1;
        if (_grantedCounter != nullptr)
            _grantedCounter->add();
    }
}

std::map<std::uint64_t, CampaignController::Lease>::iterator
CampaignController::reclaimLeaseLocked(
    std::map<std::uint64_t, Lease>::iterator it,
    const std::string &reason)
{
    const std::uint64_t lease_id = it->first;
    const std::shared_ptr<Worker> holder = it->second.worker;
    const std::shared_ptr<Pending> pending = it->second.pending;
    const auto next = _leases.erase(it);
    pending->requeues += 1;
    pending->triedWorkers.insert(holder->name);
    _leasesReclaimed += 1;
    if (_reclaimedCounter != nullptr)
        _reclaimedCounter->add();
    LeaseEvent event;
    event.kind = LeaseEvent::Kind::LeaseReclaimed;
    event.worker = holder->name;
    event.session = holder->sessionId;
    event.leaseId = lease_id;
    event.label = pending->label;
    event.detail = reason;
    event.requeues = pending->requeues;
    emitLocked(std::move(event));
    if (pending->triedWorkers.size() > _options.maxMigrations) {
        pending->error = std::make_exception_ptr(TransientFault(
            "cell '" + pending->label + "' lost its lease on " +
            std::to_string(pending->triedWorkers.size()) +
            " distinct workers (last: " + holder->name + ", " +
            reason + ")"));
        pending->done = true;
    } else {
        // Front of the queue: a migrated cell is the oldest work
        // in flight and should land on a healthy worker first.
        _queue.push_front(pending);
    }
    return next;
}

void
CampaignController::reclaimLeasesLocked(
    const std::shared_ptr<Worker> &worker, const std::string &reason)
{
    for (auto it = _leases.begin(); it != _leases.end();) {
        if (it->second.worker != worker) {
            ++it;
            continue;
        }
        it = reclaimLeaseLocked(it, reason);
    }
    worker->inFlight = 0;
    _cv.notify_all();
}

void
CampaignController::authRejectedLocked(const std::string &name,
                                       const std::string &session,
                                       const std::string &reason)
{
    if (_shutdown)
        return; // quiet teardown: sockets are being torn down anyway
    _authRejected += 1;
    if (_authRejectedCounter != nullptr)
        _authRejectedCounter->add();
    LeaseEvent event;
    event.kind = LeaseEvent::Kind::AuthRejected;
    event.worker = name;
    event.session = session;
    event.detail = reason;
    emitLocked(std::move(event));
}

void
CampaignController::workerGoneLocked(
    const std::shared_ptr<Worker> &worker, const std::string &reason)
{
    if (worker->gone)
        return;
    worker->gone = true;
    if (_shutdown)
        return; // quiet teardown: every connection closes now
    _workers.erase(
        std::remove(_workers.begin(), _workers.end(), worker),
        _workers.end());
    const bool holds_leases = std::any_of(
        _leases.begin(), _leases.end(),
        [&](const auto &entry) { return entry.second.worker == worker; });
    if (holds_leases && !worker->lapsed && !worker->draining &&
        !_draining && _options.sessionGrace.count() > 0 &&
        !worker->sessionId.empty()) {
        // Park instead of reclaim: the connection broke but the
        // worker may still be computing. Its leases stay live for
        // the grace window so a reconnect with the same session id
        // can hand the results back with zero requeues. The lease
        // clock still rules: a worker silent past the lease lapses
        // (handled above the park check) and is reclaimed, so
        // parking never extends the failure-detection bound.
        worker->parkedAt = std::chrono::steady_clock::now();
        _parked[worker->sessionId] = worker;
        _sessionsParked += 1;
        if (_parkedCounter != nullptr)
            _parkedCounter->add();
        updateConnectedGaugeLocked();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::SessionParked;
        event.worker = worker->name;
        event.session = worker->sessionId;
        event.detail =
            reason + "; holding lease(s) for " +
            std::to_string(_options.sessionGrace.count()) + " ms";
        emitLocked(std::move(event));
        _cv.notify_all();
        pumpLocked();
        return;
    }
    reclaimLeasesLocked(worker, reason);
    if (_lostCounter != nullptr)
        _lostCounter->add();
    updateConnectedGaugeLocked();
    LeaseEvent event;
    event.kind = LeaseEvent::Kind::WorkerLost;
    event.worker = worker->name;
    event.session = worker->sessionId;
    event.detail = reason;
    emitLocked(std::move(event));
    _cv.notify_all();
    pumpLocked();
}

void
CampaignController::handleJobDoneLocked(
    const std::shared_ptr<Worker> &worker, proc::Reader &in)
{
    const auto lease_id = in.pod<std::uint64_t>();
    proc::JobResult result = proc::JobResult::deserialize(in);
    const auto it = _leases.find(lease_id);
    if (it == _leases.end()) {
        // The lease was reclaimed (and the cell likely rerun
        // elsewhere) before this result arrived: reject it so no
        // cell is ever recorded twice.
        _lateResults += 1;
        if (_lateCounter != nullptr)
            _lateCounter->add();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::LateResult;
        event.worker = worker->name;
        event.session = worker->sessionId;
        event.leaseId = lease_id;
        event.detail = "result on a reclaimed lease rejected";
        emitLocked(std::move(event));
        return;
    }
    const std::shared_ptr<Pending> pending = it->second.pending;
    const std::shared_ptr<Worker> holder = it->second.worker;
    _leases.erase(it);
    if (holder->inFlight > 0)
        holder->inFlight -= 1;
    pending->result = std::move(result);
    pending->servedBy = worker->name;
    pending->done = true;
    _cv.notify_all();
    pumpLocked();
}

void
CampaignController::emitLocked(LeaseEvent event)
{
    if (_observer)
        _observer(event);
}

void
CampaignController::updateConnectedGaugeLocked()
{
    if (_connectedGauge != nullptr)
        _connectedGauge->set(static_cast<double>(_workers.size()));
}

} // namespace rigor::exec::net
