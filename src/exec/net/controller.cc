#include "exec/net/controller.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "exec/net/wire.hh"
#include "obs/metrics.hh"

namespace rigor::exec::net
{

std::string
toString(LeaseEvent::Kind kind)
{
    switch (kind) {
      case LeaseEvent::Kind::WorkerJoined:
        return "worker-joined";
      case LeaseEvent::Kind::WorkerLost:
        return "worker-lost";
      case LeaseEvent::Kind::WorkerLapsed:
        return "worker-lapsed";
      case LeaseEvent::Kind::LeaseReclaimed:
        return "lease-reclaimed";
      case LeaseEvent::Kind::LateResult:
        return "late-result";
    }
    return "unknown";
}

/** One queued/leased cell and the execute() call waiting on it. */
struct CampaignController::Pending
{
    /** Serialized proc::JobRequest (lease id prepended at grant). */
    std::vector<std::byte> request;
    std::string label;
    bool done = false;
    proc::JobResult result;
    /** Set instead of result on migration exhaustion / shutdown. */
    std::exception_ptr error;
    /** Name of the worker whose result was accepted. */
    std::string servedBy;
    /** Lease losses so far. */
    unsigned requeues = 0;
    /** Workers that ever held (and lost) this cell's lease. */
    std::set<std::string> triedWorkers;
};

/** One accepted fleet member. */
struct CampaignController::Worker
{
    int fd = -1;
    std::string name;
    unsigned slots = 1;
    unsigned inFlight = 0;
    /** Silent past the lease: no new grants until a heartbeat. */
    bool lapsed = false;
    /** Connection finished; kept out of every decision. */
    bool gone = false;
    std::chrono::steady_clock::time_point lastSeen;
};

/** One outstanding grant. */
struct CampaignController::Lease
{
    std::shared_ptr<Pending> pending;
    std::shared_ptr<Worker> worker;
};

CampaignController::CampaignController(const ControllerOptions &options)
    : _options(options)
{
    if (_options.lease.count() <= 0)
        throw std::invalid_argument(
            "CampaignController: lease duration must be positive");
    if (_options.heartbeat.count() <= 0)
        throw std::invalid_argument(
            "CampaignController: heartbeat interval must be positive");
    _listener = listenTcp(_options.bindAddress, _options.port);
    _port = boundPort(_listener.get());
    _acceptThread = std::thread(&CampaignController::acceptLoop, this);
    _monitorThread =
        std::thread(&CampaignController::monitorLoop, this);
}

CampaignController::~CampaignController()
{
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
        const auto fail = [](const std::shared_ptr<Pending> &pending) {
            if (pending->done)
                return;
            pending->error = std::make_exception_ptr(TransientFault(
                "campaign controller shut down with cell '" +
                pending->label + "' unfinished"));
            pending->done = true;
        };
        for (const auto &pending : _queue)
            fail(pending);
        for (const auto &entry : _leases)
            fail(entry.second.pending);
        _queue.clear();
        _leases.clear();
        for (const auto &worker : _workers) {
            try {
                sendMessage(worker->fd, MsgType::Shutdown);
            } catch (const std::exception &) {
                // Already-dead connection; the socket shutdown below
                // unblocks its reader thread either way.
            }
            shutdownSocket(worker->fd);
        }
        _cv.notify_all();
    }
    // shutdown() (not close) wakes the blocked accept() without
    // racing fd reuse; the fd itself is closed after the join.
    shutdownSocket(_listener.get());
    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_monitorThread.joinable())
        _monitorThread.join();
    std::vector<std::thread> connections;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        connections.swap(_connectionThreads);
    }
    for (std::thread &thread : connections)
        if (thread.joinable())
            thread.join();
}

unsigned
CampaignController::connectedWorkers() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return static_cast<unsigned>(_workers.size());
}

bool
CampaignController::waitForWorkers(unsigned count,
                                   std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(_mutex);
    return _cv.wait_for(lock, timeout, [&] {
        return _shutdown || _workers.size() >= count;
    }) && !_shutdown;
}

void
CampaignController::setMetrics(obs::MetricsRegistry *metrics)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    if (metrics == nullptr) {
        _joinedCounter = _lostCounter = _grantedCounter =
            _reclaimedCounter = _lateCounter = nullptr;
        _connectedGauge = nullptr;
        return;
    }
    _joinedCounter = &metrics->counter("net.workers.joined");
    _lostCounter = &metrics->counter("net.workers.lost");
    _grantedCounter = &metrics->counter("net.leases.granted");
    _reclaimedCounter = &metrics->counter("net.leases.reclaimed");
    _lateCounter = &metrics->counter("net.results.late");
    _connectedGauge = &metrics->gauge("net.workers.connected");
}

void
CampaignController::setLeaseObserver(LeaseObserver observer)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _observer = std::move(observer);
}

SimulateFn
CampaignController::simulateFn()
{
    return [this](const SimJob &job, const AttemptContext &ctx) {
        return execute(job, ctx);
    };
}

std::uint64_t
CampaignController::leasesGranted() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _leasesGranted;
}

std::uint64_t
CampaignController::leasesReclaimed() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _leasesReclaimed;
}

std::uint64_t
CampaignController::lateResults() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _lateResults;
}

double
CampaignController::execute(const SimJob &job,
                            const AttemptContext &ctx)
{
    proc::JobRequest request;
    request.profile = *job.workload;
    request.config = job.config;
    request.instructions = job.instructions;
    request.warmupInstructions = job.warmupInstructions;
    request.hasHook = static_cast<bool>(job.makeHook);
    request.label = job.label;
    request.jobIndex = ctx.jobIndex;
    request.attempt = ctx.attempt;
    request.deadlineBudget = ctx.deadlineBudget;
    request.sampling = job.sampling;
    proc::Writer out;
    request.serialize(out);

    auto pending = std::make_shared<Pending>();
    pending->request = out.bytes();
    pending->label = job.label;

    proc::JobResult result;
    std::string served_by;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        if (_shutdown)
            throw TransientFault(
                "campaign controller is shut down (job '" + job.label +
                "')");
        _queue.push_back(pending);
        pumpLocked();
        _cv.wait(lock, [&] { return pending->done; });
        if (pending->error)
            std::rethrow_exception(pending->error);
        result = std::move(pending->result);
        served_by = std::move(pending->servedBy);
    }

    switch (result.status) {
      case proc::ResultStatus::Ok:
        if (ctx.sampleOut != nullptr && result.hasSample)
            *ctx.sampleOut = result.sample;
        if (ctx.hostOut != nullptr)
            *ctx.hostOut = served_by;
        return result.cycles;
      case proc::ResultStatus::Transient:
        throw TransientFault(result.message);
      case proc::ResultStatus::Deadline:
        throw DeadlineExceeded(result.message);
      case proc::ResultStatus::Resource:
        throw ResourceExhausted(result.message);
      case proc::ResultStatus::Permanent:
        break;
    }
    throw PermanentFault(result.message);
}

void
CampaignController::acceptLoop()
{
    for (;;) {
        OwnedFd client = acceptClient(_listener.get());
        if (!client.valid())
            return; // listener shut down: controller winding down
        const std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            return;
        _connectionThreads.emplace_back(
            &CampaignController::serveConnection, this,
            client.release());
    }
}

void
CampaignController::serveConnection(int rawFd)
{
    OwnedFd fd(rawFd);
    std::shared_ptr<Worker> worker;
    std::string end_reason = "connection lost";
    try {
        std::vector<std::byte> payload;
        if (!recvMessage(fd.get(), payload))
            return;
        proc::Reader in(payload);
        if (readType(in) != MsgType::Hello)
            return;
        const Hello hello = Hello::deserialize(in);

        HelloAck ack;
        ack.leaseMs =
            static_cast<std::uint64_t>(_options.lease.count());
        ack.heartbeatMs =
            static_cast<std::uint64_t>(_options.heartbeat.count());
        if (hello.magic != kWireMagic)
            ack.reason = "bad protocol magic";
        else if (hello.version != kWireVersion)
            ack.reason = "unsupported protocol version " +
                         std::to_string(hello.version) +
                         " (controller speaks " +
                         std::to_string(kWireVersion) + ")";
        else if (hello.name.empty())
            ack.reason = "empty worker name";
        else if (hello.slots == 0)
            ack.reason = "zero worker slots";
        else
            ack.accepted = true;
        proc::Writer ack_body;
        ack.serialize(ack_body);
        sendMessage(fd.get(), MsgType::HelloAck, ack_body.bytes());
        if (!ack.accepted)
            return;

        worker = std::make_shared<Worker>();
        worker->fd = fd.get();
        worker->name = hello.name;
        worker->slots = hello.slots;
        worker->lastSeen = std::chrono::steady_clock::now();
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_shutdown)
                return;
            _workers.push_back(worker);
            if (_joinedCounter != nullptr)
                _joinedCounter->add();
            updateConnectedGaugeLocked();
            LeaseEvent event;
            event.kind = LeaseEvent::Kind::WorkerJoined;
            event.worker = worker->name;
            event.detail =
                std::to_string(worker->slots) + " slot(s)";
            emitLocked(std::move(event));
            _cv.notify_all();
            pumpLocked();
        }

        for (;;) {
            std::vector<std::byte> message;
            if (!recvMessage(fd.get(), message))
                break; // clean EOF
            proc::Reader reader(message);
            const MsgType type = readType(reader);
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_shutdown)
                return;
            worker->lastSeen = std::chrono::steady_clock::now();
            if (worker->lapsed) {
                worker->lapsed = false;
                pumpLocked();
            }
            switch (type) {
              case MsgType::Heartbeat:
                break;
              case MsgType::JobDone:
                handleJobDoneLocked(worker, reader);
                break;
              default:
                throw proc::ProtocolError(
                    "unexpected " + net::toString(type) +
                    " from worker '" + worker->name + "'");
            }
        }
    } catch (const std::exception &e) {
        end_reason = e.what();
    }
    if (worker != nullptr) {
        const std::lock_guard<std::mutex> lock(_mutex);
        workerGoneLocked(worker, end_reason);
    }
}

void
CampaignController::monitorLoop()
{
    const auto tick = std::max<std::chrono::milliseconds>(
        std::chrono::milliseconds(10),
        std::min(_options.heartbeat, _options.lease / 4));
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_shutdown) {
        _cv.wait_for(lock, tick);
        if (_shutdown)
            return;
        const auto now = std::chrono::steady_clock::now();
        // Snapshot: reclaim mutates _workers bookkeeping.
        const std::vector<std::shared_ptr<Worker>> fleet = _workers;
        for (const std::shared_ptr<Worker> &worker : fleet) {
            if (worker->gone || worker->lapsed)
                continue;
            if (now - worker->lastSeen <= _options.lease)
                continue;
            worker->lapsed = true;
            LeaseEvent event;
            event.kind = LeaseEvent::Kind::WorkerLapsed;
            event.worker = worker->name;
            event.detail =
                "silent past the " +
                std::to_string(_options.lease.count()) + " ms lease";
            emitLocked(std::move(event));
            reclaimLeasesLocked(worker, "heartbeat lapse");
        }
        pumpLocked();
    }
}

void
CampaignController::pumpLocked()
{
    for (;;) {
        if (_queue.empty())
            return;
        const std::shared_ptr<Pending> pending = _queue.front();
        // Prefer a worker this cell never failed on; fall back to a
        // tried one (the migration cap bounds the damage).
        std::shared_ptr<Worker> chosen;
        std::shared_ptr<Worker> fallback;
        for (const std::shared_ptr<Worker> &worker : _workers) {
            if (worker->gone || worker->lapsed ||
                worker->inFlight >= worker->slots)
                continue;
            if (pending->triedWorkers.count(worker->name) != 0) {
                if (fallback == nullptr)
                    fallback = worker;
                continue;
            }
            chosen = worker;
            break;
        }
        if (chosen == nullptr)
            chosen = fallback;
        if (chosen == nullptr)
            return; // no free worker: cells wait for the next pump
        _queue.pop_front();
        const std::uint64_t lease_id = _nextLeaseId++;
        std::vector<std::byte> body(sizeof(lease_id) +
                                    pending->request.size());
        std::memcpy(body.data(), &lease_id, sizeof(lease_id));
        std::memcpy(body.data() + sizeof(lease_id),
                    pending->request.data(),
                    pending->request.size());
        try {
            sendMessage(chosen->fd, MsgType::JobAssign, body);
        } catch (const std::exception &) {
            // Dead connection discovered at send time: requeue the
            // cell and retire the worker (reclaims its other leases).
            _queue.push_front(pending);
            workerGoneLocked(chosen, "job dispatch failed");
            continue;
        }
        chosen->inFlight += 1;
        _leases[lease_id] = Lease{pending, chosen};
        _leasesGranted += 1;
        if (_grantedCounter != nullptr)
            _grantedCounter->add();
    }
}

void
CampaignController::reclaimLeasesLocked(
    const std::shared_ptr<Worker> &worker, const std::string &reason)
{
    for (auto it = _leases.begin(); it != _leases.end();) {
        if (it->second.worker != worker) {
            ++it;
            continue;
        }
        const std::uint64_t lease_id = it->first;
        const std::shared_ptr<Pending> pending = it->second.pending;
        it = _leases.erase(it);
        pending->requeues += 1;
        pending->triedWorkers.insert(worker->name);
        _leasesReclaimed += 1;
        if (_reclaimedCounter != nullptr)
            _reclaimedCounter->add();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::LeaseReclaimed;
        event.worker = worker->name;
        event.leaseId = lease_id;
        event.label = pending->label;
        event.detail = reason;
        event.requeues = pending->requeues;
        emitLocked(std::move(event));
        if (pending->triedWorkers.size() > _options.maxMigrations) {
            pending->error = std::make_exception_ptr(TransientFault(
                "cell '" + pending->label + "' lost its lease on " +
                std::to_string(pending->triedWorkers.size()) +
                " distinct workers (last: " + worker->name + ", " +
                reason + ")"));
            pending->done = true;
        } else {
            // Front of the queue: a migrated cell is the oldest work
            // in flight and should land on a healthy worker first.
            _queue.push_front(pending);
        }
    }
    worker->inFlight = 0;
    _cv.notify_all();
}

void
CampaignController::workerGoneLocked(
    const std::shared_ptr<Worker> &worker, const std::string &reason)
{
    if (worker->gone)
        return;
    worker->gone = true;
    if (_shutdown)
        return; // quiet teardown: every connection closes now
    reclaimLeasesLocked(worker, reason);
    _workers.erase(
        std::remove(_workers.begin(), _workers.end(), worker),
        _workers.end());
    if (_lostCounter != nullptr)
        _lostCounter->add();
    updateConnectedGaugeLocked();
    LeaseEvent event;
    event.kind = LeaseEvent::Kind::WorkerLost;
    event.worker = worker->name;
    event.detail = reason;
    emitLocked(std::move(event));
    _cv.notify_all();
    pumpLocked();
}

void
CampaignController::handleJobDoneLocked(
    const std::shared_ptr<Worker> &worker, proc::Reader &in)
{
    const auto lease_id = in.pod<std::uint64_t>();
    proc::JobResult result = proc::JobResult::deserialize(in);
    const auto it = _leases.find(lease_id);
    if (it == _leases.end()) {
        // The lease was reclaimed (and the cell likely rerun
        // elsewhere) before this result arrived: reject it so no
        // cell is ever recorded twice.
        _lateResults += 1;
        if (_lateCounter != nullptr)
            _lateCounter->add();
        LeaseEvent event;
        event.kind = LeaseEvent::Kind::LateResult;
        event.worker = worker->name;
        event.leaseId = lease_id;
        event.detail = "result on a reclaimed lease rejected";
        emitLocked(std::move(event));
        return;
    }
    const std::shared_ptr<Pending> pending = it->second.pending;
    const std::shared_ptr<Worker> holder = it->second.worker;
    _leases.erase(it);
    if (holder->inFlight > 0)
        holder->inFlight -= 1;
    pending->result = std::move(result);
    pending->servedBy = worker->name;
    pending->done = true;
    _cv.notify_all();
    pumpLocked();
}

void
CampaignController::emitLocked(LeaseEvent event)
{
    if (_observer)
        _observer(event);
}

void
CampaignController::updateConnectedGaugeLocked()
{
    if (_connectedGauge != nullptr)
        _connectedGauge->set(static_cast<double>(_workers.size()));
}

} // namespace rigor::exec::net
