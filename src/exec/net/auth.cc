#include "exec/net/auth.hh"

#include <cstring>
#include <fstream>
#include <random>
#include <stdexcept>
#include <vector>

namespace rigor::exec::net
{

namespace
{

// SHA-256 per FIPS 180-4. Straightforward single-shot implementation:
// message schedule and compression in one pass over padded blocks.

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t
rotr(std::uint32_t value, unsigned bits)
{
    return (value >> bits) | (value << (32 - bits));
}

void
compressBlock(std::array<std::uint32_t, 8> &state,
              const std::uint8_t *block)
{
    std::array<std::uint32_t, 64> w;
    for (std::size_t i = 0; i < 16; ++i)
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    for (std::size_t i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^
                                 (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^
                                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (std::size_t i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace

Sha256Digest
sha256(const void *data, std::size_t size)
{
    std::array<std::uint32_t, 8> state = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
        0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t offset = 0;
    for (; offset + 64 <= size; offset += 64)
        compressBlock(state, bytes + offset);

    // Final block(s): the 0x80 terminator, zero padding, and the
    // 64-bit big-endian bit length.
    std::array<std::uint8_t, 128> tail{};
    const std::size_t rest = size - offset;
    std::memcpy(tail.data(), bytes + offset, rest);
    tail[rest] = 0x80;
    const std::size_t tail_blocks = rest + 1 + 8 <= 64 ? 1 : 2;
    const std::uint64_t bits =
        static_cast<std::uint64_t>(size) * 8;
    for (std::size_t i = 0; i < 8; ++i)
        tail[tail_blocks * 64 - 1 - i] =
            static_cast<std::uint8_t>(bits >> (8 * i));
    compressBlock(state, tail.data());
    if (tail_blocks == 2)
        compressBlock(state, tail.data() + 64);

    Sha256Digest digest;
    for (std::size_t i = 0; i < 8; ++i) {
        digest[i * 4] = static_cast<std::uint8_t>(state[i] >> 24);
        digest[i * 4 + 1] =
            static_cast<std::uint8_t>(state[i] >> 16);
        digest[i * 4 + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[i * 4 + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

Sha256Digest
hmacSha256(const std::string &key, const void *data,
           std::size_t size)
{
    constexpr std::size_t kBlock = 64;
    std::array<std::uint8_t, kBlock> padded_key{};
    if (key.size() > kBlock) {
        const Sha256Digest hashed =
            sha256(key.data(), key.size());
        std::memcpy(padded_key.data(), hashed.data(),
                    hashed.size());
    } else {
        std::memcpy(padded_key.data(), key.data(), key.size());
    }

    std::vector<std::uint8_t> inner(kBlock + size);
    for (std::size_t i = 0; i < kBlock; ++i)
        inner[i] = padded_key[i] ^ 0x36;
    std::memcpy(inner.data() + kBlock, data, size);
    const Sha256Digest inner_hash =
        sha256(inner.data(), inner.size());

    std::array<std::uint8_t, kBlock + 32> outer{};
    for (std::size_t i = 0; i < kBlock; ++i)
        outer[i] = padded_key[i] ^ 0x5c;
    std::memcpy(outer.data() + kBlock, inner_hash.data(),
                inner_hash.size());
    return sha256(outer.data(), outer.size());
}

std::string
toHex(const Sha256Digest &digest)
{
    static const char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(digest.size() * 2);
    for (const std::uint8_t byte : digest) {
        out += kHex[byte >> 4];
        out += kHex[byte & 0x0f];
    }
    return out;
}

std::string
authProof(const std::string &token, const std::string &challenge,
          const std::string &sessionId, const std::string &name)
{
    std::string message;
    message.reserve(challenge.size() + sessionId.size() +
                    name.size());
    message += challenge;
    message += sessionId;
    message += name;
    return toHex(hmacSha256(token, message.data(), message.size()));
}

bool
constantTimeEquals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    unsigned char acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = static_cast<unsigned char>(
            acc | (static_cast<unsigned char>(a[i]) ^
                   static_cast<unsigned char>(b[i])));
    return acc == 0;
}

std::string
loadAuthToken(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read auth token file '" +
                                 path + "'");
    std::string token((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    while (!token.empty() &&
           (token.back() == '\n' || token.back() == '\r' ||
            token.back() == ' ' || token.back() == '\t'))
        token.pop_back();
    if (token.empty())
        throw std::runtime_error("auth token file '" + path +
                                 "' is empty");
    return token;
}

std::string
randomNonce()
{
    std::random_device device;
    static const char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (std::size_t i = 0; i < 4; ++i) {
        std::uint32_t word = device();
        for (std::size_t nibble = 0; nibble < 8; ++nibble) {
            out += kHex[word & 0x0f];
            word >>= 4;
        }
    }
    return out;
}

} // namespace rigor::exec::net
