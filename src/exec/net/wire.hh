/**
 * @file
 * Message layer of the controller <-> worker TCP protocol.
 *
 * Transport framing is exactly the sandbox pipe protocol
 * (exec/proc/protocol.hh): length-prefixed frames written and read
 * with the same EINTR-safe, bounds-checked, size-capped code — a TCP
 * socket is just another fd. This header adds what pipes never
 * needed:
 *
 *  - a one-byte message tag on every frame (pipes are strictly
 *    request/response; a socket multiplexes job traffic with
 *    heartbeats and shutdown);
 *  - a versioned handshake. The two pipe ends are always the same
 *    forked binary; two TCP ends are not, so a worker opens with
 *    Hello{magic, version, slots, name} and the controller answers
 *    HelloAck{accepted, lease, heartbeat} or rejects the session.
 *
 * Payload bodies reuse proc::Writer / proc::Reader and the existing
 * JobRequest / JobResult serializers; job frames carry a lease id in
 * front of the proc payload so a reclaimed (stale) result is
 * recognizable when it arrives late.
 */

#ifndef RIGOR_EXEC_NET_WIRE_HH
#define RIGOR_EXEC_NET_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/proc/protocol.hh"

namespace rigor::exec::net
{

/** Protocol magic ("RGN1") leading every Hello. */
inline constexpr std::uint32_t kWireMagic = 0x52474e31;
/** Wire protocol version; bumped on any incompatible change. */
inline constexpr std::uint16_t kWireVersion = 1;

/** What one frame carries (first payload byte). */
enum class MsgType : std::uint8_t
{
    /** worker -> controller: session open (magic, version, slots,
     *  worker name). */
    Hello = 1,
    /** controller -> worker: session accepted/rejected + the lease
     *  and heartbeat intervals the worker must honor. */
    HelloAck = 2,
    /** controller -> worker: one leased job (lease id +
     *  proc::JobRequest). */
    JobAssign = 3,
    /** worker -> controller: one finished job (lease id +
     *  proc::JobResult). */
    JobDone = 4,
    /** worker -> controller: liveness beacon. */
    Heartbeat = 5,
    /** controller -> worker: drain and disconnect. */
    Shutdown = 6,
};

/** Display name for diagnostics. */
std::string toString(MsgType type);

/** Session-open request (worker -> controller). */
struct Hello
{
    std::uint32_t magic = kWireMagic;
    std::uint16_t version = kWireVersion;
    /** Concurrent jobs the worker is willing to hold. */
    std::uint16_t slots = 1;
    /** Worker identity recorded as cell provenance ("host:pid" by
     *  convention); must be non-empty. */
    std::string name;

    void serialize(proc::Writer &out) const;
    static Hello deserialize(proc::Reader &in);
};

/** Session-open response (controller -> worker). */
struct HelloAck
{
    bool accepted = false;
    /** Rejection reason; empty when accepted. */
    std::string reason;
    /** Lease duration the controller reclaims after. */
    std::uint64_t leaseMs = 0;
    /** Heartbeat cadence the worker must keep under the lease. */
    std::uint64_t heartbeatMs = 0;

    void serialize(proc::Writer &out) const;
    static HelloAck deserialize(proc::Reader &in);
};

/**
 * Send one tagged message: a frame whose payload is the tag byte
 * followed by @p body (may be empty for Heartbeat/Shutdown). Throws
 * proc::ProtocolError on I/O failure.
 */
void sendMessage(int fd, MsgType type,
                 const std::vector<std::byte> &body = {});

/**
 * Receive one frame into @p payload. Returns false on clean EOF.
 * Use readType on a Reader over the payload to consume the tag.
 * Throws proc::ProtocolError / proc::TruncatedFrame like readFrame.
 */
bool recvMessage(int fd, std::vector<std::byte> &payload);

/** Consume and validate the leading tag byte of a message payload. */
MsgType readType(proc::Reader &in);

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_WIRE_HH
