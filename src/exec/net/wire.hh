/**
 * @file
 * Message layer of the controller <-> worker TCP protocol.
 *
 * Transport framing is exactly the sandbox pipe protocol
 * (exec/proc/protocol.hh): length-prefixed frames written and read
 * with the same EINTR-safe, bounds-checked, size-capped code — a TCP
 * socket is just another fd. This header adds what pipes never
 * needed:
 *
 *  - a one-byte message tag on every frame (pipes are strictly
 *    request/response; a socket multiplexes job traffic with
 *    heartbeats and shutdown);
 *  - a versioned handshake. The two pipe ends are always the same
 *    forked binary; two TCP ends are not, so a worker opens with
 *    Hello{magic, version, slots, name, session id, held leases}
 *    and the controller answers HelloAck{accepted, lease,
 *    heartbeat, auth challenge} or rejects the session. When the
 *    controller demands authentication, the worker follows up with
 *    AuthProof (an HMAC over the challenge, see exec/net/auth.hh).
 *    Either way the handshake concludes with SessionAck, which
 *    tells the worker whether it was admitted and whether it
 *    resumed a parked session (lease handback).
 *
 * Payload bodies reuse proc::Writer / proc::Reader and the existing
 * JobRequest / JobResult serializers; job frames carry a lease id in
 * front of the proc payload so a reclaimed (stale) result is
 * recognizable when it arrives late.
 */

#ifndef RIGOR_EXEC_NET_WIRE_HH
#define RIGOR_EXEC_NET_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/proc/protocol.hh"

namespace rigor::exec::net
{

/** Protocol magic ("RGN1") leading every Hello. */
inline constexpr std::uint32_t kWireMagic = 0x52474e31;
/** Wire protocol version; bumped on any incompatible change.
 *  Version 2 added session ids, lease handback, the authenticated
 *  handshake (AuthProof/SessionAck), and graceful drain. */
inline constexpr std::uint16_t kWireVersion = 2;

/** What one frame carries (first payload byte). */
enum class MsgType : std::uint8_t
{
    /** worker -> controller: session open (magic, version, slots,
     *  worker name, session id, held lease ids on resume). */
    Hello = 1,
    /** controller -> worker: session accepted/rejected + the lease
     *  and heartbeat intervals the worker must honor, plus the
     *  authentication challenge when the fleet requires a token. */
    HelloAck = 2,
    /** controller -> worker: one leased job (lease id +
     *  proc::JobRequest). */
    JobAssign = 3,
    /** worker -> controller: one finished job (lease id +
     *  proc::JobResult). */
    JobDone = 4,
    /** worker -> controller: liveness beacon. */
    Heartbeat = 5,
    /** controller -> worker: drain and disconnect. */
    Shutdown = 6,
    /** worker -> controller: HMAC answer to the HelloAck challenge
     *  (only when the controller demanded authentication). */
    AuthProof = 7,
    /** controller -> worker: handshake verdict — admitted or not,
     *  and whether a parked session was resumed. */
    SessionAck = 8,
    /** worker -> controller: the worker is draining; grant it no
     *  further leases (in-flight jobs still complete). */
    Drain = 9,
};

/** Display name for diagnostics. */
std::string toString(MsgType type);

/** Session-open request (worker -> controller). */
struct Hello
{
    std::uint32_t magic = kWireMagic;
    std::uint16_t version = kWireVersion;
    /** Concurrent jobs the worker is willing to hold. */
    std::uint16_t slots = 1;
    /** Worker identity recorded as cell provenance ("host:pid" by
     *  convention); must be non-empty. */
    std::string name;
    /**
     * Durable session identity, stable across reconnects of one
     * worker process; must be non-empty. A reconnecting worker
     * presenting the id of a parked session resumes its leases
     * instead of being treated as a fresh join.
     */
    std::string sessionId;
    /**
     * Lease ids the worker still holds (queued, executing, or with
     * a completed-but-undelivered result). On resume the controller
     * keeps exactly these leases alive and requeues any parked
     * lease the worker no longer remembers.
     */
    std::vector<std::uint64_t> heldLeases;

    void serialize(proc::Writer &out) const;
    static Hello deserialize(proc::Reader &in);
};

/** Session-open response (controller -> worker). */
struct HelloAck
{
    bool accepted = false;
    /** Rejection reason; empty when accepted. */
    std::string reason;
    /** Lease duration the controller reclaims after. */
    std::uint64_t leaseMs = 0;
    /** Heartbeat cadence the worker must keep under the lease. */
    std::uint64_t heartbeatMs = 0;
    /** The controller demands an AuthProof before admitting. */
    bool authRequired = false;
    /** Fresh per-connection nonce the proof must cover; empty when
     *  authentication is off. Freshness is the replay defense: a
     *  proof captured from an earlier connection covers a stale
     *  nonce and fails verification. */
    std::string challenge;

    void serialize(proc::Writer &out) const;
    static HelloAck deserialize(proc::Reader &in);
};

/** Authentication answer (worker -> controller). */
struct AuthProofMsg
{
    /** Hex HMAC-SHA256(token, challenge || sessionId || name). */
    std::string proof;

    void serialize(proc::Writer &out) const;
    static AuthProofMsg deserialize(proc::Reader &in);
};

/** Handshake conclusion (controller -> worker). */
struct SessionAck
{
    bool accepted = false;
    /** Rejection reason; empty when accepted. */
    std::string reason;
    /** The connection resumed a parked session: its surviving
     *  leases stay live and buffered results may be handed back. */
    bool resumed = false;
    /** Leases still live for a resumed session (0 on fresh join). */
    std::uint32_t retainedLeases = 0;

    void serialize(proc::Writer &out) const;
    static SessionAck deserialize(proc::Reader &in);
};

/**
 * Send one tagged message: a frame whose payload is the tag byte
 * followed by @p body (may be empty for Heartbeat/Shutdown). Throws
 * proc::ProtocolError on I/O failure.
 */
void sendMessage(int fd, MsgType type,
                 const std::vector<std::byte> &body = {});

/**
 * Receive one frame into @p payload. Returns false on clean EOF.
 * Use readType on a Reader over the payload to consume the tag.
 * Throws proc::ProtocolError / proc::TruncatedFrame like readFrame.
 */
bool recvMessage(int fd, std::vector<std::byte> &payload);

/** Consume and validate the leading tag byte of a message payload. */
MsgType readType(proc::Reader &in);

} // namespace rigor::exec::net

#endif // RIGOR_EXEC_NET_WIRE_HH
