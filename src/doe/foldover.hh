/**
 * @file
 * Foldover augmentation of a two-level design [Montgomery91].
 *
 * Foldover appends, for every row of the original design, a row with
 * every sign flipped (the paper's Table 3). The folded design doubles
 * the run count to 2X but de-aliases main effects from two-factor
 * interactions: in the combined design each main-effect column is
 * orthogonal to every product of two columns.
 */

#ifndef RIGOR_DOE_FOLDOVER_HH
#define RIGOR_DOE_FOLDOVER_HH

#include "doe/design_matrix.hh"

namespace rigor::doe
{

/**
 * Return the foldover of @p design: the original rows followed by the
 * sign-flipped mirror rows, exactly the layout of the paper's Table 3.
 */
DesignMatrix foldover(const DesignMatrix &design);

/**
 * True when every main-effect column of @p design is orthogonal to
 * every elementwise product of two (distinct) columns — the property
 * foldover buys. Quadratic cost in columns; intended for tests and
 * design verification, not hot paths.
 */
bool mainEffectsClearOfTwoFactorInteractions(const DesignMatrix &design);

} // namespace rigor::doe

#endif // RIGOR_DOE_FOLDOVER_HH
