#include "doe/one_at_a_time.hh"

#include <stdexcept>

namespace rigor::doe
{

DesignMatrix
oneAtATimeDesign(unsigned num_factors, Level base_level)
{
    if (num_factors == 0)
        throw std::invalid_argument(
            "oneAtATimeDesign: need at least one factor");

    DesignMatrix m(num_factors + 1, num_factors);
    for (std::size_t r = 0; r < m.numRows(); ++r)
        for (std::size_t c = 0; c < m.numColumns(); ++c)
            m.set(r, c, base_level);
    for (std::size_t f = 0; f < num_factors; ++f)
        m.set(f + 1, f, flip(base_level));
    return m;
}

std::vector<double>
oneAtATimeEffects(Level base_level, std::span<const double> responses)
{
    if (responses.size() < 2)
        throw std::invalid_argument(
            "oneAtATimeEffects: need a base response plus one per factor");

    const std::size_t num_factors = responses.size() - 1;
    const double base = responses[0];
    std::vector<double> effects(num_factors);
    for (std::size_t f = 0; f < num_factors; ++f) {
        const double delta = responses[f + 1] - base;
        // If the base held everything high, run f+1 moved factor f
        // low, so the observed delta is (low - high); negate to
        // express the effect as (high - low).
        effects[f] = base_level == Level::High ? -delta : delta;
    }
    return effects;
}

} // namespace rigor::doe
