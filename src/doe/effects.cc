#include "doe/effects.hh"

#include <stdexcept>

namespace rigor::doe
{

std::vector<double>
computeEffects(const DesignMatrix &design,
               std::span<const double> responses)
{
    if (responses.size() != design.numRows())
        throw std::invalid_argument(
            "computeEffects: need one response per design row");

    std::vector<double> effects(design.numColumns(), 0.0);
    for (std::size_t r = 0; r < design.numRows(); ++r)
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            effects[c] += design.sign(r, c) * responses[r];
    return effects;
}

std::vector<double>
computeNormalizedEffects(const DesignMatrix &design,
                         std::span<const double> responses)
{
    std::vector<double> effects = computeEffects(design, responses);
    const double half_runs = static_cast<double>(design.numRows()) / 2.0;
    for (double &e : effects)
        e /= half_runs;
    return effects;
}

double
computeInteractionEffect(const DesignMatrix &design,
                         std::span<const double> responses,
                         std::size_t col_a, std::size_t col_b)
{
    if (responses.size() != design.numRows())
        throw std::invalid_argument(
            "computeInteractionEffect: need one response per design row");
    if (col_a >= design.numColumns() || col_b >= design.numColumns())
        throw std::out_of_range(
            "computeInteractionEffect: column out of range");

    double effect = 0.0;
    for (std::size_t r = 0; r < design.numRows(); ++r)
        effect +=
            design.sign(r, col_a) * design.sign(r, col_b) * responses[r];
    return effect;
}

std::vector<double>
effectVariationShares(std::span<const double> effects)
{
    double total = 0.0;
    for (double e : effects)
        total += e * e;

    std::vector<double> shares(effects.size(), 0.0);
    if (total == 0.0)
        return shares;
    for (std::size_t i = 0; i < effects.size(); ++i)
        shares[i] = effects[i] * effects[i] / total;
    return shares;
}

} // namespace rigor::doe
