/**
 * @file
 * Plackett-Burman saturated design construction [Plackett46].
 *
 * A PB design of size X (X a multiple of 4) studies up to X - 1
 * two-level factors in only X runs. For most sizes the design is
 * cyclic: a published generator row of length X - 1 is circularly
 * right-shifted X - 2 times and a final row of all -1 is appended
 * (the construction of the paper's Table 2). The generator rows
 * published by Plackett and Burman are, for X = q + 1 with prime
 * q == 3 (mod 4), exactly the quadratic-residue (Legendre) sequences:
 * entry j is +1 iff j is a square modulo q. This module derives those
 * rows arithmetically rather than hard-coding them, keeps a table of
 * published rows for the sizes without a QR generator (e.g. X = 16,
 * whose generator is a maximal-length shift-register sequence), and
 * falls back to Hadamard-matrix constructions otherwise.
 */

#ifndef RIGOR_DOE_PB_DESIGN_HH
#define RIGOR_DOE_PB_DESIGN_HH

#include <vector>

#include "doe/design_matrix.hh"

namespace rigor::doe
{

/** How a particular PB design was constructed. */
enum class PbConstruction
{
    /** Cyclic generator from the quadratic-residue sequence. */
    CyclicQuadraticResidue,
    /** Cyclic generator from the published Plackett-Burman table. */
    CyclicPublished,
    /** Rows of a (normalized) Hadamard matrix, constant column removed. */
    HadamardDerived,
};

/**
 * Number of runs a PB design needs for @p num_factors factors: the
 * next multiple of four strictly greater than the factor count.
 */
unsigned pbRuns(unsigned num_factors);

/** True when a size-X PB design can be constructed by this library. */
bool pbSizeSupported(unsigned x);

/** True when a size-X PB design has a cyclic generator row. */
bool pbHasCyclicGenerator(unsigned x);

/**
 * The length X-1 cyclic generator row (+1/-1 entries) for a size-X
 * design. Throws std::invalid_argument when the size has no cyclic
 * generator in this library.
 */
std::vector<int> pbGeneratorRow(unsigned x);

/** Which construction pbDesign(x) will use. */
PbConstruction pbConstructionFor(unsigned x);

/**
 * Construct the size-X Plackett-Burman design: X runs (rows) by X - 1
 * factors (columns). @p x must be a multiple of 4.
 *
 * For cyclic sizes the layout matches the paper exactly: row 0 is the
 * generator, rows 1..X-2 are successive circular right shifts, and row
 * X-1 is all -1.
 */
DesignMatrix pbDesign(unsigned x);

/**
 * Construct the smallest supported PB design that can accommodate
 * @p num_factors factors. Extra columns are "dummy factors": they
 * receive no real parameter, and their apparent effects estimate the
 * design's noise floor (the paper carries two dummy factors through
 * Tables 9 and 12 for exactly this reason).
 */
DesignMatrix pbDesignForFactors(unsigned num_factors);

} // namespace rigor::doe

#endif // RIGOR_DOE_PB_DESIGN_HH
