#include "doe/design_cost.hh"

#include <limits>
#include <stdexcept>

#include "doe/pb_design.hh"

namespace rigor::doe
{

std::string
designKindName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::OneAtATime:
        return "One Parameter at-a-time";
      case DesignKind::PlackettBurman:
        return "Fractional (Plackett and Burman)";
      case DesignKind::PlackettBurmanFoldover:
        return "Fractional (PB with foldover)";
      case DesignKind::FullFactorial:
        return "Full Multifactorial (ANOVA)";
    }
    throw std::logic_error("designKindName: unreachable");
}

std::string
designKindDetail(DesignKind kind)
{
    switch (kind) {
      case DesignKind::OneAtATime:
        return "Single Parameter";
      case DesignKind::PlackettBurman:
        return "All Parameters";
      case DesignKind::PlackettBurmanFoldover:
        return "All Parameters, Selected Interactions";
      case DesignKind::FullFactorial:
        return "All Parameters, All Interactions";
    }
    throw std::logic_error("designKindDetail: unreachable");
}

std::uint64_t
simulationsRequired(DesignKind kind, unsigned num_factors)
{
    if (num_factors == 0)
        throw std::invalid_argument(
            "simulationsRequired: need at least one factor");

    switch (kind) {
      case DesignKind::OneAtATime:
        return static_cast<std::uint64_t>(num_factors) + 1;
      case DesignKind::PlackettBurman:
        return pbRuns(num_factors);
      case DesignKind::PlackettBurmanFoldover:
        return 2ULL * pbRuns(num_factors);
      case DesignKind::FullFactorial:
        if (num_factors >= 64)
            return std::numeric_limits<std::uint64_t>::max();
        return std::uint64_t{1} << num_factors;
    }
    throw std::logic_error("simulationsRequired: unreachable");
}

} // namespace rigor::doe
