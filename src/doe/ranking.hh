/**
 * @file
 * Significance ranking and cross-benchmark rank aggregation.
 *
 * The paper's Tables 9 and 12 are built by (1) ranking each factor per
 * benchmark by the magnitude of its PB effect (1 = most significant),
 * then (2) summing each factor's ranks across all benchmarks and
 * sorting ascending — the factors with the smallest sums matter most
 * "on average" across the whole suite.
 */

#ifndef RIGOR_DOE_RANKING_HH
#define RIGOR_DOE_RANKING_HH

#include <span>
#include <string>
#include <vector>

namespace rigor::doe
{

/**
 * Rank factors by effect magnitude: rank 1 is the largest |effect|.
 * Ties get integer ranks in input order (the paper's tables contain
 * only integer ranks).
 */
std::vector<unsigned> rankByMagnitude(std::span<const double> effects);

/** One factor's row in an aggregated rank table. */
struct FactorRankSummary
{
    std::string name;
    /** Per-benchmark rank, parallel to the benchmark list. */
    std::vector<unsigned> ranks;
    /** Sum of the per-benchmark ranks. */
    unsigned long sumOfRanks = 0;
};

/**
 * Aggregate per-benchmark effect vectors into a Table-9-style summary.
 *
 * @param factor_names one name per factor
 * @param effects_per_benchmark outer index = benchmark, inner vector =
 *        one signed effect per factor
 * @return one summary per factor, sorted ascending by sum of ranks
 */
std::vector<FactorRankSummary> aggregateRanks(
    std::span<const std::string> factor_names,
    const std::vector<std::vector<double>> &effects_per_benchmark);

/**
 * The largest gap heuristic from section 4.1: the paper identifies the
 * significant-parameter cutoff by the conspicuous jump in consecutive
 * sum-of-ranks values ("the large difference between the sum of the
 * ranks of the tenth parameter and ... the eleventh"). Returns the
 * number of leading factors before the largest gap, searching cut
 * points in [1, max_cut].
 */
std::size_t significanceCutoff(
    std::span<const FactorRankSummary> sorted_summaries,
    std::size_t max_cut);

} // namespace rigor::doe

#endif // RIGOR_DOE_RANKING_HH
