/**
 * @file
 * Simulation-cost model for the three experiment designs of Table 1.
 */

#ifndef RIGOR_DOE_DESIGN_COST_HH
#define RIGOR_DOE_DESIGN_COST_HH

#include <cstdint>
#include <string>

namespace rigor::doe
{

/** The three design families the paper compares in Table 1. */
enum class DesignKind
{
    OneAtATime,
    PlackettBurman,
    PlackettBurmanFoldover,
    FullFactorial,
};

/** Display name matching Table 1's "Design" column. */
std::string designKindName(DesignKind kind);

/** Display text matching Table 1's "Level of Detail" column. */
std::string designKindDetail(DesignKind kind);

/**
 * Number of simulations the design needs for @p num_factors two-level
 * factors. Full factorial cost saturates at UINT64_MAX once 2^N
 * overflows (N >= 64).
 */
std::uint64_t simulationsRequired(DesignKind kind, unsigned num_factors);

} // namespace rigor::doe

#endif // RIGOR_DOE_DESIGN_COST_HH
