/**
 * @file
 * Two-level experimental design matrix.
 *
 * A design matrix has one row per experiment configuration and one
 * column per factor; every entry is +1 (factor at its high level) or
 * -1 (factor at its low level), exactly as in Tables 2-4 of the paper.
 */

#ifndef RIGOR_DOE_DESIGN_MATRIX_HH
#define RIGOR_DOE_DESIGN_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rigor::doe
{

/** Signed unit level of a factor in one configuration. */
enum class Level : std::int8_t
{
    Low = -1,
    High = +1,
};

/** Numeric value (+1 / -1) of a Level. */
inline int
levelValue(Level l)
{
    return static_cast<int>(l);
}

/** The opposite level (used by foldover). */
inline Level
flip(Level l)
{
    return l == Level::High ? Level::Low : Level::High;
}

/**
 * Dense row-major matrix of factor levels.
 *
 * Invariants: all rows have the same number of columns; both
 * dimensions are non-zero once constructed.
 */
class DesignMatrix
{
  public:
    /** Construct a rows x cols matrix, initially all Low. */
    DesignMatrix(std::size_t rows, std::size_t cols);

    /** Construct from explicit +1/-1 integer rows. */
    static DesignMatrix
    fromSigns(const std::vector<std::vector<int>> &signs);

    std::size_t numRows() const { return _rows; }
    std::size_t numColumns() const { return _cols; }

    Level at(std::size_t row, std::size_t col) const;
    void set(std::size_t row, std::size_t col, Level level);

    /** Sign (+1/-1) at (row, col), convenient for arithmetic. */
    int sign(std::size_t row, std::size_t col) const;

    /** One row as a vector of levels (an experiment configuration). */
    std::vector<Level> row(std::size_t row) const;

    /** One column as a vector of +1/-1 signs. */
    std::vector<int> columnSigns(std::size_t col) const;

    /**
     * True when every column has an equal number of high and low
     * entries. Balanced columns give every factor the same precision.
     */
    bool isBalanced() const;

    /**
     * True when every pair of distinct columns is orthogonal (their
     * sign dot-product is zero). Orthogonality is what lets a
     * fractional design estimate each main effect free of
     * contamination from the other main effects.
     */
    bool isOrthogonal() const;

    /** Dot product of two columns' sign vectors. */
    long columnDot(std::size_t col_a, std::size_t col_b) const;

    /** Equality of dimensions and every entry. */
    bool operator==(const DesignMatrix &other) const;

    /**
     * Render as a +1/-1 grid, matching the presentation of the
     * paper's Tables 2 and 3.
     */
    std::string toString() const;

  private:
    std::size_t _rows;
    std::size_t _cols;
    std::vector<std::int8_t> _data;

    std::size_t index(std::size_t row, std::size_t col) const;
};

} // namespace rigor::doe

#endif // RIGOR_DOE_DESIGN_MATRIX_HH
