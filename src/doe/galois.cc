#include "doe/galois.hh"

#include <stdexcept>

#include "doe/hadamard.hh"

namespace rigor::doe
{

GaloisField::GaloisField(unsigned p, unsigned m) : _p(p), _m(m)
{
    if (p < 3 || !isPrime(p))
        throw std::invalid_argument(
            "GaloisField: characteristic must be an odd prime");
    if (m == 0)
        throw std::invalid_argument(
            "GaloisField: degree must be at least 1");

    std::uint64_t q = 1;
    for (unsigned i = 0; i < m; ++i) {
        q *= p;
        if (q > 1u << 20)
            throw std::invalid_argument("GaloisField: field too large");
    }
    _q = static_cast<std::uint32_t>(q);

    if (m == 1) {
        _modulus = {0, 1}; // x — unused for prime fields
        return;
    }

    // Search for a monic irreducible polynomial x^m + ... by
    // enumerating the p^m possible lower-coefficient vectors.
    for (std::uint32_t low = 0; low < _q; ++low) {
        std::vector<unsigned> poly(m + 1, 0);
        std::uint32_t rest = low;
        for (unsigned i = 0; i < m; ++i) {
            poly[i] = rest % p;
            rest /= p;
        }
        poly[m] = 1;
        if (isIrreducible(poly)) {
            _modulus = poly;
            return;
        }
    }
    throw std::logic_error(
        "GaloisField: no irreducible polynomial found (impossible)");
}

std::vector<unsigned>
GaloisField::toPoly(std::uint32_t e) const
{
    std::vector<unsigned> poly(_m, 0);
    for (unsigned i = 0; i < _m; ++i) {
        poly[i] = e % _p;
        e /= _p;
    }
    return poly;
}

std::uint32_t
GaloisField::fromPoly(const std::vector<unsigned> &poly) const
{
    std::uint32_t e = 0;
    for (unsigned i = _m; i-- > 0;)
        e = e * _p + (i < poly.size() ? poly[i] % _p : 0);
    return e;
}

std::uint32_t
GaloisField::add(std::uint32_t a, std::uint32_t b) const
{
    const std::vector<unsigned> pa = toPoly(a);
    const std::vector<unsigned> pb = toPoly(b);
    std::vector<unsigned> out(_m);
    for (unsigned i = 0; i < _m; ++i)
        out[i] = (pa[i] + pb[i]) % _p;
    return fromPoly(out);
}

std::uint32_t
GaloisField::subtract(std::uint32_t a, std::uint32_t b) const
{
    const std::vector<unsigned> pa = toPoly(a);
    const std::vector<unsigned> pb = toPoly(b);
    std::vector<unsigned> out(_m);
    for (unsigned i = 0; i < _m; ++i)
        out[i] = (pa[i] + _p - pb[i]) % _p;
    return fromPoly(out);
}

std::uint32_t
GaloisField::multiply(std::uint32_t a, std::uint32_t b) const
{
    const std::vector<unsigned> pa = toPoly(a);
    const std::vector<unsigned> pb = toPoly(b);

    // Schoolbook product, degree up to 2m - 2.
    std::vector<unsigned> prod(2 * _m - 1, 0);
    for (unsigned i = 0; i < _m; ++i)
        for (unsigned j = 0; j < _m; ++j)
            prod[i + j] =
                (prod[i + j] + pa[i] * pb[j]) % _p;

    // Reduce modulo the monic irreducible: x^m = -(lower part).
    for (unsigned d = 2 * _m - 2; d >= _m && d < prod.size(); --d) {
        const unsigned coeff = prod[d];
        if (coeff == 0)
            continue;
        prod[d] = 0;
        for (unsigned i = 0; i < _m; ++i) {
            // x^d = x^(d-m) * x^m = -x^(d-m) * lower(modulus).
            prod[d - _m + i] =
                (prod[d - _m + i] + coeff * (_p - _modulus[i])) % _p;
        }
    }
    prod.resize(_m);
    return fromPoly(prod);
}

std::uint32_t
GaloisField::power(std::uint32_t a, std::uint64_t e) const
{
    std::uint32_t result = 1; // multiplicative identity encodes as 1
    std::uint32_t base = a;
    while (e > 0) {
        if (e & 1)
            result = multiply(result, base);
        base = multiply(base, base);
        e >>= 1;
    }
    return result;
}

int
GaloisField::chi(std::uint32_t a) const
{
    if (a == 0)
        return 0;
    // Euler's criterion: a^((q-1)/2) is 1 for squares, else it is
    // the unique element of order 2.
    const std::uint32_t r = power(a, (_q - 1) / 2);
    return r == 1 ? 1 : -1;
}

std::vector<std::uint32_t>
GaloisField::squares() const
{
    std::vector<std::uint32_t> out;
    out.reserve((_q - 1) / 2); // exactly half the nonzero elements
    for (std::uint32_t a = 1; a < _q; ++a)
        if (chi(a) == 1)
            out.push_back(a);
    return out;
}

bool
GaloisField::isIrreducible(const std::vector<unsigned> &poly) const
{
    const unsigned m = static_cast<unsigned>(poly.size()) - 1;
    if (m == 1)
        return true;

    // A monic polynomial of degree 2 or 3 is irreducible iff it has
    // no root in GF(p); higher degrees also need divisor-freedom, but
    // this module only instantiates m <= 3 in practice. For safety,
    // perform full trial division by all monic polynomials of degree
    // 1 .. m/2 for any m.
    const auto eval = [&](unsigned x) {
        unsigned long acc = 0;
        for (unsigned i = poly.size(); i-- > 0;)
            acc = (acc * x + poly[i]) % _p;
        return static_cast<unsigned>(acc);
    };
    for (unsigned x = 0; x < _p; ++x)
        if (eval(x) == 0)
            return false;
    if (m <= 3)
        return true;

    // General trial division for larger degrees.
    const auto divides = [&](const std::vector<unsigned> &div) {
        std::vector<unsigned> rem = poly;
        const unsigned dd = static_cast<unsigned>(div.size()) - 1;
        for (unsigned d = static_cast<unsigned>(rem.size()) - 1;
             d >= dd && d < rem.size(); --d) {
            const unsigned coeff = rem[d];
            if (coeff == 0)
                continue;
            for (unsigned i = 0; i <= dd; ++i)
                rem[d - dd + i] =
                    (rem[d - dd + i] + coeff * (_p - div[i])) % _p;
        }
        for (unsigned i = 0; i < dd; ++i)
            if (rem[i] != 0)
                return false;
        return true;
    };

    for (unsigned deg = 2; deg <= m / 2; ++deg) {
        std::uint64_t count = 1;
        for (unsigned i = 0; i < deg; ++i)
            count *= _p;
        for (std::uint64_t low = 0; low < count; ++low) {
            std::vector<unsigned> div(deg + 1, 0);
            std::uint64_t rest = low;
            for (unsigned i = 0; i < deg; ++i) {
                div[i] = static_cast<unsigned>(rest % _p);
                rest /= _p;
            }
            div[deg] = 1;
            if (divides(div))
                return false;
        }
    }
    return true;
}

std::vector<std::vector<int>>
paleyTypeOnePrimePower(unsigned p, unsigned m)
{
    const GaloisField field(p, m);
    const std::uint32_t q = field.size();
    if (q % 4 != 3)
        throw std::invalid_argument(
            "paleyTypeOnePrimePower: q must be 3 mod 4");

    const std::size_t n = q + 1;
    std::vector<std::vector<int>> h(n, std::vector<int>(n, 1));
    for (std::size_t i = 1; i < n; ++i)
        h[i][0] = -1;
    for (std::size_t i = 1; i < n; ++i)
        for (std::size_t j = 1; j < n; ++j)
            h[i][j] = (i == j)
                          ? 1
                          : field.chi(field.subtract(
                                static_cast<std::uint32_t>(i - 1),
                                static_cast<std::uint32_t>(j - 1)));
    return h;
}

std::vector<std::vector<int>>
paleyTypeTwoPrimePower(unsigned p, unsigned m)
{
    const GaloisField field(p, m);
    const std::uint32_t q = field.size();
    if (q % 4 != 1)
        throw std::invalid_argument(
            "paleyTypeTwoPrimePower: q must be 1 mod 4");

    const std::size_t half = q + 1;
    std::vector<std::vector<int>> c(half, std::vector<int>(half, 0));
    for (std::size_t j = 1; j < half; ++j) {
        c[0][j] = 1;
        c[j][0] = 1;
    }
    for (std::size_t i = 1; i < half; ++i)
        for (std::size_t j = 1; j < half; ++j)
            if (i != j)
                c[i][j] = field.chi(field.subtract(
                    static_cast<std::uint32_t>(i - 1),
                    static_cast<std::uint32_t>(j - 1)));

    const std::size_t n = 2 * half;
    std::vector<std::vector<int>> h(n, std::vector<int>(n, 0));
    for (std::size_t i = 0; i < half; ++i) {
        for (std::size_t j = 0; j < half; ++j) {
            int b00;
            int b01;
            int b10;
            int b11;
            if (i == j) {
                b00 = 1;
                b01 = -1;
                b10 = -1;
                b11 = -1;
            } else {
                b00 = c[i][j];
                b01 = c[i][j];
                b10 = c[i][j];
                b11 = -c[i][j];
            }
            h[2 * i][2 * j] = b00;
            h[2 * i][2 * j + 1] = b01;
            h[2 * i + 1][2 * j] = b10;
            h[2 * i + 1][2 * j + 1] = b11;
        }
    }
    return h;
}

} // namespace rigor::doe
