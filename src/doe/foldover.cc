#include "doe/foldover.hh"

namespace rigor::doe
{

DesignMatrix
foldover(const DesignMatrix &design)
{
    const std::size_t rows = design.numRows();
    const std::size_t cols = design.numColumns();
    DesignMatrix folded(2 * rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const Level l = design.at(r, c);
            folded.set(r, c, l);
            folded.set(rows + r, c, flip(l));
        }
    }
    return folded;
}

bool
mainEffectsClearOfTwoFactorInteractions(const DesignMatrix &design)
{
    const std::size_t rows = design.numRows();
    const std::size_t cols = design.numColumns();
    for (std::size_t main = 0; main < cols; ++main) {
        for (std::size_t a = 0; a < cols; ++a) {
            for (std::size_t b = a + 1; b < cols; ++b) {
                long dot = 0;
                for (std::size_t r = 0; r < rows; ++r)
                    dot += design.sign(r, main) * design.sign(r, a) *
                           design.sign(r, b);
                if (dot != 0)
                    return false;
            }
        }
    }
    return true;
}

} // namespace rigor::doe
