/**
 * @file
 * Finite (Galois) fields GF(p^m) of odd characteristic.
 *
 * The Paley Hadamard constructions generalize from primes to prime
 * powers: a quadratic-residue character over GF(q) exists for every
 * odd prime power q. This module supplies just enough field
 * arithmetic — polynomial representation, multiplication modulo an
 * irreducible polynomial found by search, and the quadratic-residue
 * character chi — to extend the Plackett-Burman design sizes to the
 * prime-power Paley orders (e.g. X = 52 via Paley II over GF(25),
 * which plain prime arithmetic cannot reach).
 */

#ifndef RIGOR_DOE_GALOIS_HH
#define RIGOR_DOE_GALOIS_HH

#include <cstdint>
#include <vector>

namespace rigor::doe
{

/**
 * The field GF(p^m), p an odd prime, m >= 1.
 *
 * Elements are indices 0 .. p^m - 1 encoding polynomial coefficients
 * base p: element e represents the polynomial
 * sum_i ((e / p^i) mod p) * x^i.
 */
class GaloisField
{
  public:
    /**
     * Construct GF(p^m). Searches for a monic irreducible polynomial
     * of degree m over GF(p) (for m == 1 no modulus is needed).
     *
     * @param p odd prime characteristic
     * @param m extension degree (p^m <= ~1e6 for table-free search)
     */
    GaloisField(unsigned p, unsigned m);

    unsigned characteristic() const { return _p; }
    unsigned degree() const { return _m; }
    /** Field size q = p^m. */
    std::uint32_t size() const { return _q; }

    /** Field addition (coefficient-wise mod p). */
    std::uint32_t add(std::uint32_t a, std::uint32_t b) const;

    /** Field subtraction. */
    std::uint32_t subtract(std::uint32_t a, std::uint32_t b) const;

    /** Field multiplication modulo the irreducible polynomial. */
    std::uint32_t multiply(std::uint32_t a, std::uint32_t b) const;

    /** a^e by square-and-multiply. */
    std::uint32_t power(std::uint32_t a, std::uint64_t e) const;

    /**
     * Quadratic-residue character: +1 when @p a is a non-zero
     * square, -1 when a non-square, 0 when a == 0. Computed by
     * Euler's criterion a^((q-1)/2).
     */
    int chi(std::uint32_t a) const;

    /** All field elements that are non-zero squares, ascending. */
    std::vector<std::uint32_t> squares() const;

    /**
     * The monic irreducible modulus as coefficients, constant term
     * first (size m + 1); for m == 1 returns {0, 1} (i.e. x).
     */
    const std::vector<unsigned> &modulus() const { return _modulus; }

  private:
    unsigned _p;
    unsigned _m;
    std::uint32_t _q;
    std::vector<unsigned> _modulus;

    std::vector<unsigned> toPoly(std::uint32_t e) const;
    std::uint32_t fromPoly(const std::vector<unsigned> &poly) const;

    /** True when the degree-m monic poly (coeffs low-first) has no
     *  roots/factors over GF(p) — tested by trial evaluation for
     *  m <= 2 and by gcd-free power checks generally. */
    bool isIrreducible(const std::vector<unsigned> &poly) const;
};

/**
 * Paley type I over GF(q), q = p^m == 3 (mod 4): Hadamard order q+1.
 */
std::vector<std::vector<int>> paleyTypeOnePrimePower(unsigned p,
                                                     unsigned m);

/**
 * Paley type II over GF(q), q = p^m == 1 (mod 4): Hadamard order
 * 2(q+1). The q = 25 instance yields the order-52 matrix missing
 * from the prime-only constructions.
 */
std::vector<std::vector<int>> paleyTypeTwoPrimePower(unsigned p,
                                                     unsigned m);

} // namespace rigor::doe

#endif // RIGOR_DOE_GALOIS_HH
