/**
 * @file
 * The one-at-a-time ("simple sensitivity analysis") design.
 *
 * This is the straw man of the paper's Table 1: N + 1 runs — a base
 * configuration plus one run per factor with only that factor moved to
 * its opposite level. It cannot see interactions at all, and each
 * effect estimate comes from a single run pair, so it is both less
 * precise and vulnerable to masking. It is implemented here so the
 * design-choice ablation benchmark can demonstrate that failure mode
 * quantitatively against the PB design.
 */

#ifndef RIGOR_DOE_ONE_AT_A_TIME_HH
#define RIGOR_DOE_ONE_AT_A_TIME_HH

#include <span>
#include <vector>

#include "doe/design_matrix.hh"

namespace rigor::doe
{

/**
 * Build the one-at-a-time design for @p num_factors factors with the
 * base configuration at @p base_level: row 0 is the base, row i (for
 * i >= 1) flips only factor i-1.
 */
DesignMatrix oneAtATimeDesign(unsigned num_factors, Level base_level);

/**
 * Effect estimates from a one-at-a-time experiment: for factor i,
 * the signed response change from the base run to the run where the
 * factor is at its non-base level, oriented so that (like a PB
 * contrast) a positive value means the high level raised the response.
 *
 * @param base_level the level every factor holds in run 0
 * @param responses N + 1 responses, row order as oneAtATimeDesign()
 */
std::vector<double> oneAtATimeEffects(Level base_level,
                                      std::span<const double> responses);

} // namespace rigor::doe

#endif // RIGOR_DOE_ONE_AT_A_TIME_HH
