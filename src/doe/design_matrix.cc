#include "doe/design_matrix.hh"

#include <sstream>
#include <stdexcept>

namespace rigor::doe
{

DesignMatrix::DesignMatrix(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, std::int8_t{-1})
{
    if (rows == 0 || cols == 0)
        throw std::invalid_argument(
            "DesignMatrix: dimensions must be non-zero");
}

DesignMatrix
DesignMatrix::fromSigns(const std::vector<std::vector<int>> &signs)
{
    if (signs.empty() || signs.front().empty())
        throw std::invalid_argument("DesignMatrix::fromSigns: empty input");

    DesignMatrix m(signs.size(), signs.front().size());
    for (std::size_t r = 0; r < signs.size(); ++r) {
        if (signs[r].size() != m._cols)
            throw std::invalid_argument(
                "DesignMatrix::fromSigns: ragged rows");
        for (std::size_t c = 0; c < m._cols; ++c) {
            const int s = signs[r][c];
            if (s != 1 && s != -1)
                throw std::invalid_argument(
                    "DesignMatrix::fromSigns: entries must be +1 or -1");
            m.set(r, c, s == 1 ? Level::High : Level::Low);
        }
    }
    return m;
}

std::size_t
DesignMatrix::index(std::size_t row, std::size_t col) const
{
    if (row >= _rows || col >= _cols)
        throw std::out_of_range("DesignMatrix: index out of range");
    return row * _cols + col;
}

Level
DesignMatrix::at(std::size_t row, std::size_t col) const
{
    return static_cast<Level>(_data[index(row, col)]);
}

void
DesignMatrix::set(std::size_t row, std::size_t col, Level level)
{
    _data[index(row, col)] = static_cast<std::int8_t>(level);
}

int
DesignMatrix::sign(std::size_t row, std::size_t col) const
{
    return _data[index(row, col)];
}

std::vector<Level>
DesignMatrix::row(std::size_t row) const
{
    std::vector<Level> out(_cols);
    for (std::size_t c = 0; c < _cols; ++c)
        out[c] = at(row, c);
    return out;
}

std::vector<int>
DesignMatrix::columnSigns(std::size_t col) const
{
    std::vector<int> out(_rows);
    for (std::size_t r = 0; r < _rows; ++r)
        out[r] = sign(r, col);
    return out;
}

bool
DesignMatrix::isBalanced() const
{
    for (std::size_t c = 0; c < _cols; ++c) {
        long total = 0;
        for (std::size_t r = 0; r < _rows; ++r)
            total += sign(r, c);
        if (total != 0)
            return false;
    }
    return true;
}

bool
DesignMatrix::isOrthogonal() const
{
    for (std::size_t a = 0; a < _cols; ++a)
        for (std::size_t b = a + 1; b < _cols; ++b)
            if (columnDot(a, b) != 0)
                return false;
    return true;
}

long
DesignMatrix::columnDot(std::size_t col_a, std::size_t col_b) const
{
    long total = 0;
    for (std::size_t r = 0; r < _rows; ++r)
        total += sign(r, col_a) * sign(r, col_b);
    return total;
}

bool
DesignMatrix::operator==(const DesignMatrix &other) const
{
    return _rows == other._rows && _cols == other._cols &&
           _data == other._data;
}

std::string
DesignMatrix::toString() const
{
    std::ostringstream os;
    for (std::size_t r = 0; r < _rows; ++r) {
        for (std::size_t c = 0; c < _cols; ++c) {
            if (c > 0)
                os << ' ';
            os << (sign(r, c) > 0 ? "+1" : "-1");
        }
        os << '\n';
    }
    return os.str();
}

} // namespace rigor::doe
