#include "doe/hadamard.hh"

#include <stdexcept>

#include "doe/galois.hh"

namespace rigor::doe
{

bool
isPrime(unsigned n)
{
    if (n < 2)
        return false;
    if (n % 2 == 0)
        return n == 2;
    for (unsigned d = 3; d * d <= n; d += 2)
        if (n % d == 0)
            return false;
    return true;
}

int
legendreSymbol(long a, unsigned p)
{
    const long q = static_cast<long>(p);
    long r = ((a % q) + q) % q;
    if (r == 0)
        return 0;
    // Euler's criterion: a^((p-1)/2) mod p is +1 for residues and
    // p-1 for non-residues. p is small (< 100 in practice), so
    // square-and-multiply is plenty fast.
    long result = 1;
    long base = r;
    unsigned long exp = (p - 1) / 2;
    while (exp > 0) {
        if (exp & 1)
            result = result * base % q;
        base = base * base % q;
        exp >>= 1;
    }
    return result == 1 ? 1 : -1;
}

SignMatrix
sylvesterDouble(const SignMatrix &h)
{
    const std::size_t n = h.size();
    SignMatrix out(2 * n, std::vector<int>(2 * n));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            out[i][j] = h[i][j];
            out[i][j + n] = h[i][j];
            out[i + n][j] = h[i][j];
            out[i + n][j + n] = -h[i][j];
        }
    }
    return out;
}

SignMatrix
paleyTypeOne(unsigned q)
{
    if (!isPrime(q) || q % 4 != 3)
        throw std::invalid_argument(
            "paleyTypeOne: q must be a prime congruent to 3 mod 4");

    const std::size_t n = q + 1;
    // Jacobsthal matrix Q with Q[i][j] = chi(i - j); the Paley I
    // Hadamard matrix is the bordered S + I with S skew-symmetric.
    SignMatrix h(n, std::vector<int>(n, 1));
    // Row 0: all +1. Column 0: -1 except h[0][0].
    for (std::size_t i = 1; i < n; ++i)
        h[i][0] = -1;
    for (std::size_t i = 1; i < n; ++i) {
        for (std::size_t j = 1; j < n; ++j) {
            if (i == j) {
                h[i][j] = 1;
            } else {
                const int chi = legendreSymbol(
                    static_cast<long>(i) - static_cast<long>(j), q);
                h[i][j] = chi;
            }
        }
    }
    return h;
}

SignMatrix
paleyTypeTwo(unsigned q)
{
    if (!isPrime(q) || q % 4 != 1)
        throw std::invalid_argument(
            "paleyTypeTwo: q must be a prime congruent to 1 mod 4");

    const std::size_t m = q + 1;
    // Symmetric conference matrix C of order q+1: zero diagonal,
    // C[0][j] = C[j][0] = 1 for j > 0, core C[i][j] = chi(i - j).
    std::vector<std::vector<int>> c(m, std::vector<int>(m, 0));
    for (std::size_t j = 1; j < m; ++j) {
        c[0][j] = 1;
        c[j][0] = 1;
    }
    for (std::size_t i = 1; i < m; ++i)
        for (std::size_t j = 1; j < m; ++j)
            if (i != j)
                c[i][j] = legendreSymbol(
                    static_cast<long>(i) - static_cast<long>(j), q);

    // H = C (x) [[1,1],[1,-1]] + I (x) [[1,-1],[-1,-1]].
    const std::size_t n = 2 * m;
    SignMatrix h(n, std::vector<int>(n, 0));
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            int block[2][2];
            if (i == j) {
                block[0][0] = 1;
                block[0][1] = -1;
                block[1][0] = -1;
                block[1][1] = -1;
            } else {
                block[0][0] = c[i][j];
                block[0][1] = c[i][j];
                block[1][0] = c[i][j];
                block[1][1] = -c[i][j];
            }
            h[2 * i][2 * j] = block[0][0];
            h[2 * i][2 * j + 1] = block[0][1];
            h[2 * i + 1][2 * j] = block[1][0];
            h[2 * i + 1][2 * j + 1] = block[1][1];
        }
    }
    return h;
}

bool
isHadamard(const SignMatrix &h)
{
    const std::size_t n = h.size();
    if (n == 0)
        return false;
    for (const auto &row : h) {
        if (row.size() != n)
            return false;
        for (int v : row)
            if (v != 1 && v != -1)
                return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            long dot = 0;
            for (std::size_t k = 0; k < n; ++k)
                dot += static_cast<long>(h[i][k]) * h[j][k];
            const long expected = (i == j) ? static_cast<long>(n) : 0;
            if (dot != expected)
                return false;
        }
    }
    return true;
}

SignMatrix
normalizeHadamard(const SignMatrix &h)
{
    SignMatrix out = h;
    const std::size_t n = out.size();
    // Make column 0 all +1 by negating rows.
    for (std::size_t i = 0; i < n; ++i)
        if (out[i][0] < 0)
            for (std::size_t j = 0; j < n; ++j)
                out[i][j] = -out[i][j];
    // Make row 0 all +1 by negating columns.
    for (std::size_t j = 0; j < n; ++j)
        if (out[0][j] < 0)
            for (std::size_t i = 0; i < n; ++i)
                out[i][j] = -out[i][j];
    return out;
}

std::pair<unsigned, unsigned>
oddPrimePowerFactor(unsigned n)
{
    if (n < 3 || n % 2 == 0)
        return {0, 0};
    // Find the smallest prime divisor and test whether n is a pure
    // power of it.
    unsigned p = 0;
    for (unsigned d = 3; d * d <= n; d += 2) {
        if (n % d == 0) {
            p = d;
            break;
        }
    }
    if (p == 0)
        return {n, 1}; // n itself is prime
    unsigned m = 0;
    unsigned rest = n;
    while (rest % p == 0) {
        rest /= p;
        ++m;
    }
    return rest == 1 ? std::pair<unsigned, unsigned>{p, m}
                     : std::pair<unsigned, unsigned>{0, 0};
}

bool
hadamardOrderSupported(unsigned n)
{
    if (n == 1 || n == 2)
        return true;
    if (n % 4 != 0)
        return false;
    // Paley I: n - 1 an odd prime power == 3 (mod 4).
    if (const auto [p1, m1] = oddPrimePowerFactor(n - 1);
        p1 != 0 && (n - 1) % 4 == 3)
        return true;
    // Paley II: n/2 - 1 an odd prime power == 1 (mod 4).
    if (n % 2 == 0 && n / 2 >= 2) {
        if (const auto [p2, m2] = oddPrimePowerFactor(n / 2 - 1);
            p2 != 0 && (n / 2 - 1) % 4 == 1)
            return true;
    }
    // Sylvester doubling from any smaller supported order.
    return n % 2 == 0 && hadamardOrderSupported(n / 2);
}

SignMatrix
hadamardMatrix(unsigned n)
{
    if (n == 1)
        return {{1}};
    if (n == 2)
        return {{1, 1}, {1, -1}};
    if (n % 4 != 0)
        throw std::invalid_argument(
            "hadamardMatrix: order must be 1, 2, or a multiple of 4");

    // Prefer the prime constructions (cheapest), then prime powers,
    // then doubling.
    if (isPrime(n - 1) && (n - 1) % 4 == 3)
        return paleyTypeOne(n - 1);
    if (n % 2 == 0 && n / 2 >= 2 && isPrime(n / 2 - 1) &&
        (n / 2 - 1) % 4 == 1)
        return paleyTypeTwo(n / 2 - 1);
    if (const auto [p1, m1] = oddPrimePowerFactor(n - 1);
        p1 != 0 && m1 > 1 && (n - 1) % 4 == 3)
        return paleyTypeOnePrimePower(p1, m1);
    if (n % 2 == 0 && n / 2 >= 2) {
        if (const auto [p2, m2] = oddPrimePowerFactor(n / 2 - 1);
            p2 != 0 && m2 > 1 && (n / 2 - 1) % 4 == 1)
            return paleyTypeTwoPrimePower(p2, m2);
    }
    if (n % 2 == 0 && hadamardOrderSupported(n / 2))
        return sylvesterDouble(hadamardMatrix(n / 2));

    throw std::invalid_argument(
        "hadamardMatrix: no supported construction for this order "
        "(e.g. 92 requires search-based constructions)");
}

} // namespace rigor::doe
