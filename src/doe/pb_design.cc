#include "doe/pb_design.hh"

#include <map>
#include <stdexcept>
#include <string>

#include "doe/hadamard.hh"

namespace rigor::doe
{

namespace
{

/**
 * Published cyclic generator rows for sizes without a quadratic-
 * residue generator. The X = 16 row is the classical maximal-length
 * shift-register sequence from [Plackett46].
 */
const std::map<unsigned, std::string> publishedRows = {
    {16, "++++-+-++--+---"},
};

std::vector<int>
parseRow(const std::string &row)
{
    std::vector<int> out;
    out.reserve(row.size());
    for (char ch : row)
        out.push_back(ch == '+' ? 1 : -1);
    return out;
}

/** Quadratic-residue generator: +1 at j = 0 and at squares mod q. */
std::vector<int>
quadraticResidueRow(unsigned q)
{
    std::vector<int> row(q, -1);
    row[0] = 1;
    for (unsigned j = 1; j < q; ++j)
        if (legendreSymbol(static_cast<long>(j), q) == 1)
            row[j] = 1;
    return row;
}

bool
hasQrGenerator(unsigned x)
{
    return x >= 8 && isPrime(x - 1) && (x - 1) % 4 == 3;
}

/** Build the cyclic design from a generator row. */
DesignMatrix
cyclicDesign(const std::vector<int> &generator)
{
    const std::size_t q = generator.size();
    const std::size_t x = q + 1;
    DesignMatrix m(x, q);
    // Row i is the generator circularly right-shifted i times:
    // entry (i, c) = g[(c - i) mod q].
    for (std::size_t i = 0; i + 1 < x; ++i) {
        for (std::size_t c = 0; c < q; ++c) {
            const std::size_t src = (c + q - (i % q)) % q;
            m.set(i, c,
                  generator[src] == 1 ? Level::High : Level::Low);
        }
    }
    // Final row: all low.
    for (std::size_t c = 0; c < q; ++c)
        m.set(x - 1, c, Level::Low);
    return m;
}

/** Strip the constant column from a normalized Hadamard matrix. */
DesignMatrix
hadamardDerivedDesign(unsigned x)
{
    const SignMatrix h = normalizeHadamard(hadamardMatrix(x));
    DesignMatrix m(x, x - 1);
    for (unsigned i = 0; i < x; ++i)
        for (unsigned j = 1; j < x; ++j)
            m.set(i, j - 1, h[i][j] == 1 ? Level::High : Level::Low);
    return m;
}

} // namespace

unsigned
pbRuns(unsigned num_factors)
{
    if (num_factors == 0)
        throw std::invalid_argument("pbRuns: need at least one factor");
    // Next multiple of 4 strictly greater than the factor count, so
    // the design always has at least num_factors columns.
    return (num_factors / 4 + 1) * 4;
}

bool
pbHasCyclicGenerator(unsigned x)
{
    return hasQrGenerator(x) || publishedRows.count(x) > 0;
}

bool
pbSizeSupported(unsigned x)
{
    if (x < 8 || x % 4 != 0)
        return false;
    return pbHasCyclicGenerator(x) || hadamardOrderSupported(x);
}

std::vector<int>
pbGeneratorRow(unsigned x)
{
    if (hasQrGenerator(x))
        return quadraticResidueRow(x - 1);
    const auto it = publishedRows.find(x);
    if (it != publishedRows.end())
        return parseRow(it->second);
    throw std::invalid_argument(
        "pbGeneratorRow: no cyclic generator for this size");
}

PbConstruction
pbConstructionFor(unsigned x)
{
    if (hasQrGenerator(x))
        return PbConstruction::CyclicQuadraticResidue;
    if (publishedRows.count(x) > 0)
        return PbConstruction::CyclicPublished;
    if (hadamardOrderSupported(x))
        return PbConstruction::HadamardDerived;
    throw std::invalid_argument(
        "pbConstructionFor: unsupported design size");
}

DesignMatrix
pbDesign(unsigned x)
{
    if (x < 8 || x % 4 != 0)
        throw std::invalid_argument(
            "pbDesign: size must be a multiple of 4 and at least 8");

    switch (pbConstructionFor(x)) {
      case PbConstruction::CyclicQuadraticResidue:
      case PbConstruction::CyclicPublished:
        return cyclicDesign(pbGeneratorRow(x));
      case PbConstruction::HadamardDerived:
        return hadamardDerivedDesign(x);
    }
    throw std::logic_error("pbDesign: unreachable");
}

DesignMatrix
pbDesignForFactors(unsigned num_factors)
{
    unsigned x = pbRuns(num_factors);
    // Step past any unsupported size (e.g. 92); the next multiple of
    // four is wasteful but statistically sound.
    while (!pbSizeSupported(x))
        x += 4;
    return pbDesign(x);
}

} // namespace rigor::doe
