/**
 * @file
 * Hadamard matrix constructions.
 *
 * A Plackett-Burman design of size X is equivalent to a normalized
 * Hadamard matrix of order X with its constant column removed
 * [Plackett46]. The cyclic generator rows published by Plackett and
 * Burman cover most small sizes; this module supplies the classical
 * constructions (Sylvester doubling, Paley types I and II) so the
 * library supports every multiple-of-four size for which a classical
 * construction exists, including the X = 44 design the paper's
 * evaluation uses (Paley I over GF(43)).
 */

#ifndef RIGOR_DOE_HADAMARD_HH
#define RIGOR_DOE_HADAMARD_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace rigor::doe
{

/** Square +1/-1 matrix, row major. */
using SignMatrix = std::vector<std::vector<int>>;

/** True iff @p n is prime. */
bool isPrime(unsigned n);

/**
 * If @p n is a power of an odd prime, return {p, m} with n = p^m;
 * otherwise {0, 0}.
 */
std::pair<unsigned, unsigned> oddPrimePowerFactor(unsigned n);

/**
 * Legendre symbol chi(a) over GF(p): +1 when @p a is a non-zero
 * quadratic residue mod p, -1 when a non-residue, 0 when a == 0 mod p.
 */
int legendreSymbol(long a, unsigned p);

/** Sylvester doubling: order 2n Hadamard from an order n one. */
SignMatrix sylvesterDouble(const SignMatrix &h);

/**
 * Paley type I: Hadamard matrix of order q+1 for prime q == 3 (mod 4).
 */
SignMatrix paleyTypeOne(unsigned q);

/**
 * Paley type II: Hadamard matrix of order 2(q+1) for prime
 * q == 1 (mod 4).
 */
SignMatrix paleyTypeTwo(unsigned q);

/** H * H^T == n * I check. */
bool isHadamard(const SignMatrix &h);

/**
 * Normalize a Hadamard matrix: negate rows/columns so the first row
 * and first column are all +1. Preserves the Hadamard property.
 */
SignMatrix normalizeHadamard(const SignMatrix &h);

/**
 * Construct a Hadamard matrix of order @p n, or throw
 * std::invalid_argument when no supported construction exists
 * (n must be 1, 2, or a multiple of 4 reachable via Paley I/II and
 * Sylvester doubling).
 */
SignMatrix hadamardMatrix(unsigned n);

/** True when hadamardMatrix(n) would succeed. */
bool hadamardOrderSupported(unsigned n);

} // namespace rigor::doe

#endif // RIGOR_DOE_HADAMARD_HH
