/**
 * @file
 * Effect estimation for two-level designs (the paper's Table 4).
 *
 * The effect of a factor is the signed sum, over all runs, of the run
 * response multiplied by that factor's +1/-1 level in the run. Only
 * the magnitude of an effect is meaningful for ranking; the sign says
 * merely which level raised the response.
 */

#ifndef RIGOR_DOE_EFFECTS_HH
#define RIGOR_DOE_EFFECTS_HH

#include <span>
#include <vector>

#include "doe/design_matrix.hh"

namespace rigor::doe
{

/**
 * Raw (contrast) effect of every factor column.
 *
 * @param design the design matrix that produced the runs
 * @param responses one response per design row
 * @return one signed effect per design column; for the paper's
 *         Table 4 example this reproduces (-23, -67, -137, 129, -105,
 *         -225, 73)
 */
std::vector<double> computeEffects(const DesignMatrix &design,
                                   std::span<const double> responses);

/**
 * Normalized effects: the raw contrast divided by half the run count,
 * i.e. the average change in response when the factor moves from its
 * low to its high level.
 */
std::vector<double> computeNormalizedEffects(
    const DesignMatrix &design, std::span<const double> responses);

/**
 * Effect of the elementwise product of two factor columns — the
 * two-factor interaction contrast a foldover design can estimate.
 */
double computeInteractionEffect(const DesignMatrix &design,
                                std::span<const double> responses,
                                std::size_t col_a, std::size_t col_b);

/**
 * Percentage of total response variation attributable to each factor:
 * effect_i^2 / sum_j effect_j^2. A common single-number significance
 * summary for saturated designs (all columns consume the variation).
 */
std::vector<double> effectVariationShares(
    std::span<const double> effects);

} // namespace rigor::doe

#endif // RIGOR_DOE_EFFECTS_HH
