#include "doe/ranking.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rigor::doe
{

std::vector<unsigned>
rankByMagnitude(std::span<const double> effects)
{
    const std::size_t n = effects.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return std::abs(effects[a]) > std::abs(effects[b]);
                     });

    std::vector<unsigned> ranks(n, 0);
    for (std::size_t pos = 0; pos < n; ++pos)
        ranks[order[pos]] = static_cast<unsigned>(pos + 1);
    return ranks;
}

std::vector<FactorRankSummary>
aggregateRanks(std::span<const std::string> factor_names,
               const std::vector<std::vector<double>>
                   &effects_per_benchmark)
{
    if (effects_per_benchmark.empty())
        throw std::invalid_argument("aggregateRanks: no benchmarks");

    const std::size_t num_factors = factor_names.size();
    std::vector<FactorRankSummary> summaries(num_factors);
    for (std::size_t f = 0; f < num_factors; ++f) {
        summaries[f].name = factor_names[f];
        summaries[f].ranks.reserve(effects_per_benchmark.size());
    }

    for (const std::vector<double> &effects : effects_per_benchmark) {
        if (effects.size() != num_factors)
            throw std::invalid_argument(
                "aggregateRanks: effect vector length mismatch");
        const std::vector<unsigned> ranks = rankByMagnitude(effects);
        for (std::size_t f = 0; f < num_factors; ++f) {
            summaries[f].ranks.push_back(ranks[f]);
            summaries[f].sumOfRanks += ranks[f];
        }
    }

    std::stable_sort(summaries.begin(), summaries.end(),
                     [](const FactorRankSummary &a,
                        const FactorRankSummary &b) {
                         return a.sumOfRanks < b.sumOfRanks;
                     });
    return summaries;
}

std::size_t
significanceCutoff(std::span<const FactorRankSummary> sorted_summaries,
                   std::size_t max_cut)
{
    if (sorted_summaries.size() < 2)
        return sorted_summaries.size();

    const std::size_t limit =
        std::min(max_cut, sorted_summaries.size() - 1);
    std::size_t best_cut = 1;
    long best_gap = -1;
    for (std::size_t cut = 1; cut <= limit; ++cut) {
        const long gap =
            static_cast<long>(sorted_summaries[cut].sumOfRanks) -
            static_cast<long>(sorted_summaries[cut - 1].sumOfRanks);
        if (gap > best_gap) {
            best_gap = gap;
            best_cut = cut;
        }
    }
    return best_cut;
}

} // namespace rigor::doe
