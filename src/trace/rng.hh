/**
 * @file
 * Deterministic PRNG for the synthetic workload generators.
 *
 * A small, fast xorshift-star generator with convenience draws. The
 * same seed always produces the same trace — a hard requirement for
 * the PB methodology, where 88 configurations must observe the *same*
 * workload so that response differences are attributable to the
 * configuration alone.
 */

#ifndef RIGOR_TRACE_RNG_HH
#define RIGOR_TRACE_RNG_HH

#include <cstdint>

namespace rigor::trace
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

    /**
     * Zipf-like draw over [0, n): index i is roughly proportional to
     * 1 / (i + 1)^s with s ~ 1. Used for hot/cold value and address
     * distributions.
     */
    std::uint64_t nextZipf(std::uint64_t n);

    /** Geometric draw >= 1 with mean ~ @p mean. */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t _state;
};

/** Stable 64-bit FNV-1a hash of a string (workload name -> seed). */
std::uint64_t hashName(const char *name);

} // namespace rigor::trace

#endif // RIGOR_TRACE_RNG_HH
