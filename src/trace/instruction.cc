#include "trace/instruction.hh"

namespace rigor::trace
{

bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

bool
isControlOp(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Call ||
           op == OpClass::Return;
}

bool
isIntAluOp(OpClass op)
{
    return op == OpClass::IntAlu;
}

std::string
toString(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return "int-alu";
      case OpClass::IntMult:
        return "int-mult";
      case OpClass::IntDiv:
        return "int-div";
      case OpClass::FpAlu:
        return "fp-alu";
      case OpClass::FpMult:
        return "fp-mult";
      case OpClass::FpDiv:
        return "fp-div";
      case OpClass::FpSqrt:
        return "fp-sqrt";
      case OpClass::Load:
        return "load";
      case OpClass::Store:
        return "store";
      case OpClass::Branch:
        return "branch";
      case OpClass::Call:
        return "call";
      case OpClass::Return:
        return "return";
    }
    return "?";
}

} // namespace rigor::trace
