/**
 * @file
 * In-memory trace source.
 *
 * Wraps an explicit instruction vector — used by unit tests to feed
 * hand-built sequences through the timing core, and handy for users
 * who capture short traces from elsewhere.
 */

#ifndef RIGOR_TRACE_VECTOR_SOURCE_HH
#define RIGOR_TRACE_VECTOR_SOURCE_HH

#include <utility>
#include <vector>

#include "trace/generator.hh"

namespace rigor::trace
{

class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<Instruction> instructions)
        : _instructions(std::move(instructions))
    {
    }

    bool
    next(Instruction &out) override
    {
        if (_pos >= _instructions.size())
            return false;
        out = _instructions[_pos++];
        return true;
    }

    void reset() override { _pos = 0; }

    std::uint64_t
    length() const override
    {
        return _instructions.size();
    }

  private:
    std::vector<Instruction> _instructions;
    std::size_t _pos = 0;
};

} // namespace rigor::trace

#endif // RIGOR_TRACE_VECTOR_SOURCE_HH
