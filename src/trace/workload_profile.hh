/**
 * @file
 * Statistical workload profile driving the synthetic trace generator.
 *
 * SPEC 2000 binaries and MinneSPEC inputs are not redistributable, so
 * (per DESIGN.md) each of the paper's 13 workloads is replaced by a
 * statistical profile in the spirit of the HLS approach [Oskin00] the
 * paper cites: instruction mix, basic-block geometry, branch
 * predictability, instruction/data footprints and access-pattern
 * mixtures, call depth, and value locality. The Plackett-Burman
 * ranking depends on each workload's *relative* stress on processor
 * components, which these parameters control directly.
 */

#ifndef RIGOR_TRACE_WORKLOAD_PROFILE_HH
#define RIGOR_TRACE_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>

namespace rigor::trace
{

/** Everything the generator needs to synthesize one benchmark. */
struct WorkloadProfile
{
    std::string name;
    /** True for the floating-point benchmarks of Table 5. */
    bool isFloatingPoint = false;
    /** Dynamic instruction count the paper simulated, in millions
     *  (Table 5; used for reports, not for generation). */
    double paperInstructionsMillions = 0.0;

    // ----- Instruction mix (fractions of non-control instructions;
    //       the remainder is integer ALU work) -----
    double fracLoad = 0.25;
    double fracStore = 0.10;
    double fracIntMult = 0.01;
    double fracIntDiv = 0.002;
    double fracFpAlu = 0.0;
    double fracFpMult = 0.0;
    double fracFpDiv = 0.0;
    double fracFpSqrt = 0.0;

    // ----- Control flow -----
    /** Mean instructions per basic block, excluding the terminator. */
    double avgBlockInstrs = 6.0;
    /** Probability a conditional branch is taken. */
    double takenBias = 0.6;
    /** Fraction of branches with stable, learnable behavior. */
    double branchPredictability = 0.85;
    /** Probability a region transition is a call (exercises the RAS). */
    double callFraction = 0.05;
    /** Mean call nesting depth. */
    double avgCallDepth = 4.0;

    // ----- Instruction footprint -----
    /** Static code size in bytes (I-cache / I-TLB stress). */
    std::uint64_t codeFootprintBytes = 64 * 1024;
    /**
     * Steady-state instruction working set: control flow stays inside
     * a hot subset of this many bytes of the code (Zipf-weighted, so
     * reuse is graded). This is what the I-cache size parameter
     * actually contends with; code beyond it is never reached. Must
     * not exceed codeFootprintBytes.
     */
    std::uint64_t hotCodeBytes = 8 * 1024;

    // ----- Data footprint and access patterns -----
    /** Data working set in bytes (D-cache / L2 / memory stress). */
    std::uint64_t dataFootprintBytes = 512 * 1024;
    /** Fraction of accesses concentrated in a hot 1/16 of the data. */
    double hotDataFraction = 0.7;
    /** Per static memory slot: probability of pointer-chase pattern. */
    double fracPointerChase = 0.2;
    /** Per static memory slot: probability of a strided stream. */
    double fracStrided = 0.3;
    /** Stride of the strided streams, in bytes. */
    std::uint32_t strideBytes = 64;

    // ----- Values and parallelism -----
    /** Probability an int ALU op draws operands from a hot pool —
     *  the redundancy that instruction precomputation exploits. */
    double valueLocality = 0.3;
    /** Mean register dependence distance (higher = more ILP). */
    double avgDependencyDistance = 3.0;

    /**
     * Check all fractions and ranges; throws std::invalid_argument on
     * the first inconsistency.
     */
    void validate() const;

    /** Fraction of non-control instructions that are integer ALU. */
    double fracIntAlu() const;
};

} // namespace rigor::trace

#endif // RIGOR_TRACE_WORKLOAD_PROFILE_HH
