/**
 * @file
 * Synthetic instruction-trace generator.
 *
 * Produces a deterministic dynamic instruction stream from a
 * WorkloadProfile. Program structure is modeled explicitly so that
 * every processor component sees realistic stress:
 *
 *  - The static code is a set of fixed-size basic-block slots grouped
 *    into regions of four blocks. Each block has a deterministic
 *    per-block template (operation classes, memory-access patterns,
 *    destination registers) derived from the profile seed, so the
 *    same PC always behaves the same way — which is what makes
 *    caches, BTBs, and branch predictors learn.
 *  - Control flow iterates region loops (geometric trip counts, so
 *    back edges are highly predictable), with mid-block conditional
 *    branches that are either biased/learnable or data-random in the
 *    profile's proportion, and with calls/returns whose nesting depth
 *    follows a geometric law (exercising the return address stack).
 *  - Data accesses mix sequential, strided, and pointer-chase
 *    patterns over a configurable footprint with a hot subset.
 *  - Integer ALU operand values are drawn from a hot value pool in
 *    the profile's proportion — the redundancy that instruction
 *    precomputation [Yi02-1] harvests.
 *
 * Resetting and re-running yields the identical stream: every PB
 * configuration must observe the same workload.
 */

#ifndef RIGOR_TRACE_GENERATOR_HH
#define RIGOR_TRACE_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "trace/instruction.hh"
#include "trace/rng.hh"
#include "trace/workload_profile.hh"

namespace rigor::trace
{

/** Pull-interface over a finite instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     * @return false when the stream is exhausted
     */
    virtual bool next(Instruction &out) = 0;

    /** Rewind to the beginning of the identical stream. */
    virtual void reset() = 0;

    /** Total instructions the stream will produce. */
    virtual std::uint64_t length() const = 0;
};

/** Deterministic generator over a workload profile. */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    /**
     * @param profile workload description (validated on entry)
     * @param num_instructions dynamic length of the stream
     */
    SyntheticTraceGenerator(const WorkloadProfile &profile,
                            std::uint64_t num_instructions);

    bool next(Instruction &out) override;
    void reset() override;
    std::uint64_t length() const override { return _length; }

    const WorkloadProfile &profile() const { return _profile; }

  private:
    /** Static description of one instruction slot. */
    struct SlotTemplate
    {
        OpClass op;
        std::uint8_t dst;
        std::uint8_t memPattern; ///< 0 = seq, 1 = strided, 2 = chase
        std::uint8_t streamId;   ///< strided stream index
    };

    /** Static description of one basic block. */
    struct BlockTemplate
    {
        std::vector<SlotTemplate> slots;
        /** Mid-region terminator: biased (learnable) branch? */
        bool biasedBranch;
        /** Preferred direction of a biased branch. */
        bool biasedTaken;
    };

    /** One call frame: where to resume when the callee returns. */
    struct Frame
    {
        std::uint32_t resumeRegion;
    };

    // Small regions with modest trip counts keep the code-reuse
    // turnover fast enough that cache-size effects are visible at
    // the scaled-down run lengths this repo uses (10^5 instructions
    // vs the paper's 10^9; see DESIGN.md).
    static constexpr std::uint32_t regionBlocks = 2;
    static constexpr std::uint32_t numStrideStreams = 8;
    // A 32-value hot pool concentrates redundant (op, a, b) tuples
    // enough that a 128-entry precomputation table captures most of
    // the redundant mass, as in [Yi02-1].
    static constexpr std::uint32_t valuePoolSize = 32;
    static constexpr std::uint32_t maxCallDepth = 128;
    static constexpr std::uint64_t codeBasePc = 0x10000;
    static constexpr std::uint64_t dataBase = 0x10000000;
    static constexpr double regionTripMean = 3.0;

    WorkloadProfile _profile;
    std::uint64_t _length;
    std::uint64_t _seed;

    // Static layout (immutable after construction).
    std::uint32_t _slotInstrs;  ///< instrs per block slot incl. term.
    std::uint32_t _numBlocks;
    std::uint32_t _numRegions;
    std::uint32_t _hotRegions; ///< control flow stays within these
    std::vector<std::uint32_t> _valuePool;

    // Lazily built static block templates.
    std::vector<std::unique_ptr<BlockTemplate>> _templates;

    // Dynamic state (reset() reinitializes).
    Rng _rng;
    std::uint64_t _emitted;
    std::deque<Instruction> _pending;
    std::vector<Frame> _frames;
    std::uint32_t _currentRegion;
    std::uint32_t _blockInRegion;
    std::uint64_t _tripsRemaining;
    std::uint64_t _seqCursor;
    std::vector<std::uint64_t> _strideCursors;
    std::uint8_t _nextDst;
    std::vector<std::uint8_t> _recentDst;
    std::uint32_t _recentHead;

    const BlockTemplate &templateFor(std::uint32_t block_id);
    std::uint64_t blockStartPc(std::uint32_t block_id) const;
    std::uint32_t blockLength(std::uint32_t block_id) const;
    std::uint32_t pickRegion();
    std::uint64_t dataAddress(const SlotTemplate &slot);
    std::uint8_t pickSource();
    void fillOperands(Instruction &inst);
    void emitBlock();
};

} // namespace rigor::trace

#endif // RIGOR_TRACE_GENERATOR_HH
