/**
 * @file
 * Dynamic instruction record consumed by the timing core.
 *
 * One record carries everything the trace-driven model needs: the PC
 * (I-cache / predictor indexing), the operation class (functional-unit
 * routing and latency), source/destination registers (dependence
 * tracking), the effective address of memory operations, branch
 * outcome and target, and the integer operand values that the
 * instruction-precomputation enhancement matches on.
 */

#ifndef RIGOR_TRACE_INSTRUCTION_HH
#define RIGOR_TRACE_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace rigor::trace
{

/** Operation classes, mirroring the Table 7 functional-unit split. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    FpSqrt,
    Load,
    Store,
    Branch,
    Call,
    Return,
};

/** Number of OpClass values (for mix tables). */
constexpr std::size_t numOpClasses = 12;

/** True for loads and stores. */
bool isMemOp(OpClass op);

/** True for branches, calls, and returns (control transfers). */
bool isControlOp(OpClass op);

/** True for ops executed on the integer ALU pool. */
bool isIntAluOp(OpClass op);

/** Report name of an op class. */
std::string toString(OpClass op);

/** Architectural register count of the model (PISA-like: 32 int). */
constexpr std::uint8_t numArchRegs = 32;

/** Sentinel for "no register". */
constexpr std::uint8_t noReg = 0xff;

/** One dynamic instruction. */
struct Instruction
{
    std::uint64_t pc = 0;
    OpClass op = OpClass::IntAlu;
    /** Source registers; noReg when unused. */
    std::uint8_t srcA = noReg;
    std::uint8_t srcB = noReg;
    /** Destination register; noReg when none. */
    std::uint8_t dst = noReg;
    /** Effective address (memory operations only). */
    std::uint64_t memAddr = 0;
    /** Actual direction (control operations only). */
    bool taken = false;
    /** Actual target (taken control operations only). */
    std::uint64_t target = 0;
    /**
     * For calls: the address the matching return resumes at (what the
     * return address stack should push). Zero otherwise.
     */
    std::uint64_t retAddr = 0;
    /**
     * Integer operand values. Used by instruction precomputation /
     * value reuse to recognize redundant computations; the timing
     * model itself never interprets them.
     */
    std::uint32_t valA = 0;
    std::uint32_t valB = 0;
};

} // namespace rigor::trace

#endif // RIGOR_TRACE_INSTRUCTION_HH
