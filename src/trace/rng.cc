#include "trace/rng.hh"

#include <cmath>
#include <stdexcept>

namespace rigor::trace
{

Rng::Rng(std::uint64_t seed) : _state(seed ? seed : 0x2545F4914F6CDD1DULL)
{
}

std::uint64_t
Rng::next()
{
    // xorshift64*.
    std::uint64_t x = _state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    _state = x;
    return x * 0x2545F4914F6CDD1DULL;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        throw std::invalid_argument("Rng::nextBelow: bound must be > 0");
    return next() % bound;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n)
{
    if (n == 0)
        throw std::invalid_argument("Rng::nextZipf: n must be > 0");
    // Inverse-CDF approximation of Zipf(s=1) via the continuous
    // analogue: i ~ n^u - 1 concentrates low indices.
    const double u = nextDouble();
    const double idx = std::pow(static_cast<double>(n) + 1.0, u) - 1.0;
    auto i = static_cast<std::uint64_t>(idx);
    return i >= n ? n - 1 : i;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean < 1.0)
        throw std::invalid_argument(
            "Rng::nextGeometric: mean must be >= 1");
    if (mean == 1.0)
        return 1;
    const double p = 1.0 / mean;
    const double u = nextDouble();
    const auto k = static_cast<std::uint64_t>(
        std::ceil(std::log1p(-u) / std::log1p(-p)));
    return k == 0 ? 1 : k;
}

std::uint64_t
hashName(const char *name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char *p = name; *p; ++p) {
        h ^= static_cast<std::uint64_t>(
            static_cast<unsigned char>(*p));
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace rigor::trace
