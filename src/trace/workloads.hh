/**
 * @file
 * The thirteen SPEC 2000 workload profiles of the paper's Table 5.
 *
 * Each profile is a synthetic stand-in tuned to the qualitative
 * behavior the literature (and the paper's own Table 9 commentary)
 * reports for that benchmark: mesa's large instruction footprint and
 * branch dependence, art's and mcf's memory-boundedness, gcc's and
 * vortex's code-footprint pressure, gzip's and bzip2's compute-bound
 * value-local loops, and so on. DESIGN.md records this substitution.
 */

#ifndef RIGOR_TRACE_WORKLOADS_HH
#define RIGOR_TRACE_WORKLOADS_HH

#include <span>
#include <vector>

#include "trace/workload_profile.hh"

namespace rigor::trace
{

/** All thirteen profiles, in the row order of Table 5. */
std::span<const WorkloadProfile> spec2000Workloads();

/** Look up a profile by name; throws std::invalid_argument if absent. */
const WorkloadProfile &workloadByName(const std::string &name);

/** The thirteen names, in Table 5 order. */
std::vector<std::string> workloadNames();

} // namespace rigor::trace

#endif // RIGOR_TRACE_WORKLOADS_HH
