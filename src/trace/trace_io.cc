#include "trace/trace_io.hh"

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

namespace rigor::trace
{

namespace
{

/** Fixed-width on-disk record (little-endian as written). */
struct PackedRecord
{
    std::uint64_t pc;
    std::uint64_t memAddr;
    std::uint64_t target;
    std::uint64_t retAddr;
    std::uint32_t valA;
    std::uint32_t valB;
    std::uint8_t op;
    std::uint8_t srcA;
    std::uint8_t srcB;
    std::uint8_t dst;
    std::uint8_t taken;
    std::uint8_t pad[3];
};

static_assert(sizeof(PackedRecord) == 48,
              "trace record layout must be stable");

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

PackedRecord
pack(const Instruction &inst)
{
    PackedRecord r{};
    r.pc = inst.pc;
    r.memAddr = inst.memAddr;
    r.target = inst.target;
    r.retAddr = inst.retAddr;
    r.valA = inst.valA;
    r.valB = inst.valB;
    r.op = static_cast<std::uint8_t>(inst.op);
    r.srcA = inst.srcA;
    r.srcB = inst.srcB;
    r.dst = inst.dst;
    r.taken = inst.taken ? 1 : 0;
    return r;
}

Instruction
unpack(const PackedRecord &r)
{
    if (r.op >= numOpClasses)
        throw std::runtime_error(
            "readTrace: corrupt record (bad op class)");
    Instruction inst;
    inst.pc = r.pc;
    inst.memAddr = r.memAddr;
    inst.target = r.target;
    inst.retAddr = r.retAddr;
    inst.valA = r.valA;
    inst.valB = r.valB;
    inst.op = static_cast<OpClass>(r.op);
    inst.srcA = r.srcA;
    inst.srcB = r.srcB;
    inst.dst = r.dst;
    inst.taken = r.taken != 0;
    return inst;
}

} // namespace

std::uint64_t
writeTrace(TraceSource &source, const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        throw std::runtime_error("writeTrace: cannot open " + path);

    // Header: magic, version, count (count patched at the end).
    std::uint64_t count = 0;
    const std::uint32_t version = traceFormatVersion;
    if (std::fwrite(traceMagic, 1, 4, file.get()) != 4 ||
        std::fwrite(&version, sizeof(version), 1, file.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, file.get()) != 1)
        throw std::runtime_error("writeTrace: header write failed");

    Instruction inst;
    std::vector<PackedRecord> buffer;
    buffer.reserve(4096);
    while (source.next(inst)) {
        buffer.push_back(pack(inst));
        ++count;
        if (buffer.size() == buffer.capacity()) {
            if (std::fwrite(buffer.data(), sizeof(PackedRecord),
                            buffer.size(),
                            file.get()) != buffer.size())
                throw std::runtime_error(
                    "writeTrace: record write failed");
            buffer.clear();
        }
    }
    if (!buffer.empty() &&
        std::fwrite(buffer.data(), sizeof(PackedRecord), buffer.size(),
                    file.get()) != buffer.size())
        throw std::runtime_error("writeTrace: record write failed");

    // Patch the count.
    if (std::fseek(file.get(), 8, SEEK_SET) != 0 ||
        std::fwrite(&count, sizeof(count), 1, file.get()) != 1)
        throw std::runtime_error("writeTrace: count patch failed");
    return count;
}

VectorTraceSource
readTrace(const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        throw std::runtime_error("readTrace: cannot open " + path);

    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, 4, file.get()) != 4 ||
        std::fread(&version, sizeof(version), 1, file.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, file.get()) != 1)
        throw std::runtime_error("readTrace: truncated header");
    if (std::memcmp(magic, traceMagic, 4) != 0)
        throw std::runtime_error("readTrace: bad magic");
    if (version != traceFormatVersion)
        throw std::runtime_error("readTrace: unsupported version");

    std::vector<Instruction> instructions;
    instructions.reserve(count);
    std::vector<PackedRecord> buffer(4096);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, buffer.size()));
        if (std::fread(buffer.data(), sizeof(PackedRecord), chunk,
                       file.get()) != chunk)
            throw std::runtime_error("readTrace: truncated records");
        for (std::size_t i = 0; i < chunk; ++i)
            instructions.push_back(unpack(buffer[i]));
        remaining -= chunk;
    }
    return VectorTraceSource(std::move(instructions));
}

} // namespace rigor::trace
