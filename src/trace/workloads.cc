#include "trace/workloads.hh"

#include <stdexcept>

namespace rigor::trace
{

namespace
{

constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t mB = 1024 * 1024;

WorkloadProfile
base(const char *name, bool fp, double paper_minsts)
{
    WorkloadProfile p;
    p.name = name;
    p.isFloatingPoint = fp;
    p.paperInstructionsMillions = paper_minsts;
    return p;
}

std::vector<WorkloadProfile>
buildAll()
{
    std::vector<WorkloadProfile> all;

    // gzip: compression kernels — small hot loops, strong value
    // locality, medium data window, compute bound.
    {
        WorkloadProfile p = base("gzip", false, 1364.2);
        p.fracLoad = 0.22;
        p.fracStore = 0.09;
        p.fracIntMult = 0.004;
        p.fracIntDiv = 0.001;
        p.avgBlockInstrs = 6.0;
        p.takenBias = 0.62;
        p.branchPredictability = 0.82;
        p.callFraction = 0.03;
        p.avgCallDepth = 3.0;
        p.codeFootprintBytes = 48 * kB;
        p.hotCodeBytes = 12 * kB;
        p.dataFootprintBytes = 128 * kB;
        p.hotDataFraction = 0.80;
        p.fracPointerChase = 0.10;
        p.fracStrided = 0.45;
        p.strideBytes = 8;
        p.valueLocality = 0.45;
        p.avgDependencyDistance = 3.5;
        all.push_back(p);
    }

    // vpr-Place: simulated annealing placement — large code, small
    // random-access data, branchy and data-dependent.
    {
        WorkloadProfile p = base("vpr-Place", false, 1521.7);
        p.fracLoad = 0.26;
        p.fracStore = 0.08;
        p.fracIntMult = 0.01;
        p.fracIntDiv = 0.004;
        p.fracFpAlu = 0.04;
        p.fracFpMult = 0.01;
        p.avgBlockInstrs = 5.0;
        p.takenBias = 0.55;
        p.branchPredictability = 0.70;
        p.callFraction = 0.06;
        p.avgCallDepth = 5.0;
        p.codeFootprintBytes = 320 * kB;
        p.hotCodeBytes = 40 * kB;
        p.dataFootprintBytes = 128 * kB;
        p.hotDataFraction = 0.75;
        p.fracPointerChase = 0.35;
        p.fracStrided = 0.15;
        p.strideBytes = 32;
        p.valueLocality = 0.20;
        p.avgDependencyDistance = 3.0;
        all.push_back(p);
    }

    // vpr-Route: maze routing — pointer chasing over a larger routing
    // graph, moderate code.
    {
        WorkloadProfile p = base("vpr-Route", false, 881.1);
        p.fracLoad = 0.29;
        p.fracStore = 0.09;
        p.fracIntMult = 0.008;
        p.fracIntDiv = 0.002;
        p.fracFpAlu = 0.02;
        p.avgBlockInstrs = 5.5;
        p.takenBias = 0.60;
        p.branchPredictability = 0.78;
        p.callFraction = 0.05;
        p.avgCallDepth = 6.0;
        p.codeFootprintBytes = 96 * kB;
        p.hotCodeBytes = 24 * kB;
        p.dataFootprintBytes = 768 * kB;
        p.hotDataFraction = 0.65;
        p.fracPointerChase = 0.50;
        p.fracStrided = 0.10;
        p.strideBytes = 16;
        p.valueLocality = 0.18;
        p.avgDependencyDistance = 3.6;
        all.push_back(p);
    }

    // gcc: compiler — the classic huge-code benchmark: enormous
    // instruction footprint, short blocks, unpredictable branches,
    // deep call chains.
    {
        WorkloadProfile p = base("gcc", false, 4040.7);
        p.fracLoad = 0.26;
        p.fracStore = 0.12;
        p.fracIntMult = 0.003;
        p.fracIntDiv = 0.001;
        p.avgBlockInstrs = 4.5;
        p.takenBias = 0.58;
        p.branchPredictability = 0.72;
        p.callFraction = 0.09;
        p.avgCallDepth = 9.0;
        p.codeFootprintBytes = 512 * kB;
        p.hotCodeBytes = 64 * kB;
        p.dataFootprintBytes = 512 * kB;
        p.hotDataFraction = 0.70;
        p.fracPointerChase = 0.40;
        p.fracStrided = 0.10;
        p.strideBytes = 16;
        p.valueLocality = 0.22;
        p.avgDependencyDistance = 3.8;
        all.push_back(p);
    }

    // mesa: software 3-D rendering — very large instruction footprint
    // (the paper notes mesa stresses the I-cache far more than the
    // D-cache) and strong dependence on the branch predictor.
    {
        WorkloadProfile p = base("mesa", true, 1217.9);
        p.fracLoad = 0.24;
        p.fracStore = 0.09;
        p.fracIntMult = 0.005;
        p.fracFpAlu = 0.12;
        p.fracFpMult = 0.05;
        p.fracFpDiv = 0.004;
        p.fracFpSqrt = 0.001;
        p.avgBlockInstrs = 5.0;
        p.takenBias = 0.55;
        p.branchPredictability = 0.68;
        p.callFraction = 0.08;
        p.avgCallDepth = 6.0;
        p.codeFootprintBytes = 640 * kB;
        p.hotCodeBytes = 96 * kB;
        p.dataFootprintBytes = 48 * kB;
        p.hotDataFraction = 0.85;
        p.fracPointerChase = 0.10;
        p.fracStrided = 0.40;
        p.strideBytes = 16;
        p.valueLocality = 0.25;
        p.avgDependencyDistance = 3.5;
        all.push_back(p);
    }

    // art: neural-network image recognition — tiny kernel streaming
    // over matrices far larger than any cache: L2 size and memory
    // latency dominate.
    {
        WorkloadProfile p = base("art", true, 2181.1);
        p.fracLoad = 0.31;
        p.fracStore = 0.07;
        p.fracFpAlu = 0.22;
        p.fracFpMult = 0.10;
        p.fracFpDiv = 0.003;
        p.fracFpSqrt = 0.002;
        p.avgBlockInstrs = 9.0;
        p.takenBias = 0.85;
        p.branchPredictability = 0.95;
        p.callFraction = 0.02;
        p.avgCallDepth = 2.0;
        p.codeFootprintBytes = 24 * kB;
        p.hotCodeBytes = 8 * kB;
        p.dataFootprintBytes = 1536 * kB;
        p.hotDataFraction = 0.15;
        p.fracPointerChase = 0.35;
        p.fracStrided = 0.40;
        p.strideBytes = 8;
        p.valueLocality = 0.10;
        p.avgDependencyDistance = 4.5;
        all.push_back(p);
    }

    // mcf: network-simplex optimization — tiny code, giant
    // pointer-chased arc/node arrays; the canonical memory-bound
    // integer benchmark.
    {
        WorkloadProfile p = base("mcf", false, 601.2);
        p.fracLoad = 0.32;
        p.fracStore = 0.09;
        p.fracIntMult = 0.004;
        p.fracIntDiv = 0.001;
        p.avgBlockInstrs = 5.5;
        p.takenBias = 0.58;
        p.branchPredictability = 0.74;
        p.callFraction = 0.02;
        p.avgCallDepth = 2.0;
        p.codeFootprintBytes = 16 * kB;
        p.hotCodeBytes = 3 * kB;
        p.dataFootprintBytes = 1024 * kB;
        p.hotDataFraction = 0.20;
        p.fracPointerChase = 0.70;
        p.fracStrided = 0.10;
        p.strideBytes = 64;
        p.valueLocality = 0.12;
        p.avgDependencyDistance = 2.2;
        all.push_back(p);
    }

    // equake: finite-element earthquake simulation — large sparse
    // matrix-vector work, large code, strided with indirection.
    {
        WorkloadProfile p = base("equake", true, 713.7);
        p.fracLoad = 0.29;
        p.fracStore = 0.08;
        p.fracFpAlu = 0.18;
        p.fracFpMult = 0.09;
        p.fracFpDiv = 0.004;
        p.avgBlockInstrs = 7.0;
        p.takenBias = 0.66;
        p.branchPredictability = 0.78;
        p.callFraction = 0.04;
        p.avgCallDepth = 4.0;
        p.codeFootprintBytes = 288 * kB;
        p.hotCodeBytes = 80 * kB;
        p.dataFootprintBytes = 768 * kB;
        p.hotDataFraction = 0.60;
        p.fracPointerChase = 0.25;
        p.fracStrided = 0.45;
        p.strideBytes = 24;
        p.valueLocality = 0.12;
        p.avgDependencyDistance = 4.0;
        all.push_back(p);
    }

    // ammp: molecular dynamics — neighbor-list chasing over a large
    // footprint with expensive FP (divide/sqrt); memory latency and
    // bandwidth bound.
    {
        WorkloadProfile p = base("ammp", true, 1228.1);
        p.fracLoad = 0.30;
        p.fracStore = 0.08;
        p.fracFpAlu = 0.20;
        p.fracFpMult = 0.10;
        p.fracFpDiv = 0.015;
        p.fracFpSqrt = 0.008;
        p.avgBlockInstrs = 8.0;
        p.takenBias = 0.70;
        p.branchPredictability = 0.76;
        p.callFraction = 0.03;
        p.avgCallDepth = 3.0;
        p.codeFootprintBytes = 40 * kB;
        p.hotCodeBytes = 6 * kB;
        p.dataFootprintBytes = 1280 * kB;
        p.hotDataFraction = 0.25;
        p.fracPointerChase = 0.55;
        p.fracStrided = 0.25;
        p.strideBytes = 32;
        p.valueLocality = 0.08;
        p.avgDependencyDistance = 3.5;
        all.push_back(p);
    }

    // parser: natural-language parsing — recursive descent over a
    // dictionary: deep calls, pointer chasing, unpredictable data-
    // dependent branches.
    {
        WorkloadProfile p = base("parser", false, 2721.6);
        p.fracLoad = 0.27;
        p.fracStore = 0.10;
        p.fracIntMult = 0.003;
        p.fracIntDiv = 0.001;
        p.avgBlockInstrs = 5.0;
        p.takenBias = 0.56;
        p.branchPredictability = 0.70;
        p.callFraction = 0.08;
        p.avgCallDepth = 12.0;
        p.codeFootprintBytes = 128 * kB;
        p.hotCodeBytes = 36 * kB;
        p.dataFootprintBytes = 640 * kB;
        p.hotDataFraction = 0.65;
        p.fracPointerChase = 0.45;
        p.fracStrided = 0.10;
        p.strideBytes = 16;
        p.valueLocality = 0.20;
        p.avgDependencyDistance = 3.4;
        all.push_back(p);
    }

    // vortex: object-oriented database — large code footprint, deep
    // call chains, medium data with mixed patterns.
    {
        WorkloadProfile p = base("vortex", false, 1050.2);
        p.fracLoad = 0.28;
        p.fracStore = 0.14;
        p.fracIntMult = 0.002;
        p.avgBlockInstrs = 5.0;
        p.takenBias = 0.60;
        p.branchPredictability = 0.80;
        p.callFraction = 0.10;
        p.avgCallDepth = 10.0;
        p.codeFootprintBytes = 448 * kB;
        p.hotCodeBytes = 56 * kB;
        p.dataFootprintBytes = 512 * kB;
        p.hotDataFraction = 0.75;
        p.fracPointerChase = 0.35;
        p.fracStrided = 0.15;
        p.strideBytes = 32;
        p.valueLocality = 0.18;
        p.avgDependencyDistance = 3.0;
        all.push_back(p);
    }

    // bzip2: block-sorting compression — small code, strong value
    // locality, medium-large data with sequential sweeps.
    {
        WorkloadProfile p = base("bzip2", false, 2467.7);
        p.fracLoad = 0.25;
        p.fracStore = 0.10;
        p.fracIntMult = 0.003;
        p.fracIntDiv = 0.001;
        p.avgBlockInstrs = 6.5;
        p.takenBias = 0.63;
        p.branchPredictability = 0.80;
        p.callFraction = 0.02;
        p.avgCallDepth = 3.0;
        p.codeFootprintBytes = 32 * kB;
        p.hotCodeBytes = 8 * kB;
        p.dataFootprintBytes = 768 * kB;
        p.hotDataFraction = 0.65;
        p.fracPointerChase = 0.25;
        p.fracStrided = 0.40;
        p.strideBytes = 8;
        p.valueLocality = 0.40;
        p.avgDependencyDistance = 3.8;
        all.push_back(p);
    }

    // twolf: place-and-route — like vpr-Place (the paper groups them):
    // large code, small random-access data, branchy.
    {
        WorkloadProfile p = base("twolf", false, 764.6);
        p.fracLoad = 0.25;
        p.fracStore = 0.07;
        p.fracIntMult = 0.012;
        p.fracIntDiv = 0.005;
        p.fracFpAlu = 0.03;
        p.fracFpMult = 0.01;
        p.avgBlockInstrs = 5.0;
        p.takenBias = 0.54;
        p.branchPredictability = 0.71;
        p.callFraction = 0.06;
        p.avgCallDepth = 5.0;
        p.codeFootprintBytes = 352 * kB;
        p.hotCodeBytes = 44 * kB;
        p.dataFootprintBytes = 96 * kB;
        p.hotDataFraction = 0.78;
        p.fracPointerChase = 0.35;
        p.fracStrided = 0.15;
        p.strideBytes = 24;
        p.valueLocality = 0.20;
        p.avgDependencyDistance = 3.6;
        all.push_back(p);
    }

    for (const WorkloadProfile &p : all)
        p.validate();
    return all;
}

const std::vector<WorkloadProfile> &
allWorkloads()
{
    static const std::vector<WorkloadProfile> workloads = buildAll();
    return workloads;
}

} // namespace

std::span<const WorkloadProfile>
spec2000Workloads()
{
    return allWorkloads();
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const WorkloadProfile &p : allWorkloads())
        if (p.name == name)
            return p;
    throw std::invalid_argument("workloadByName: unknown workload " +
                                name);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(allWorkloads().size());
    for (const WorkloadProfile &p : allWorkloads())
        names.push_back(p.name);
    return names;
}

} // namespace rigor::trace
