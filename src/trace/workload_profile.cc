#include "trace/workload_profile.hh"

#include <stdexcept>

namespace rigor::trace
{

namespace
{

void
checkFraction(const char *what, double v)
{
    if (v < 0.0 || v > 1.0)
        throw std::invalid_argument(std::string("WorkloadProfile: ") +
                                    what + " must be in [0, 1]");
}

} // namespace

double
WorkloadProfile::fracIntAlu() const
{
    return 1.0 - (fracLoad + fracStore + fracIntMult + fracIntDiv +
                  fracFpAlu + fracFpMult + fracFpDiv + fracFpSqrt);
}

void
WorkloadProfile::validate() const
{
    if (name.empty())
        throw std::invalid_argument("WorkloadProfile: empty name");

    checkFraction("fracLoad", fracLoad);
    checkFraction("fracStore", fracStore);
    checkFraction("fracIntMult", fracIntMult);
    checkFraction("fracIntDiv", fracIntDiv);
    checkFraction("fracFpAlu", fracFpAlu);
    checkFraction("fracFpMult", fracFpMult);
    checkFraction("fracFpDiv", fracFpDiv);
    checkFraction("fracFpSqrt", fracFpSqrt);
    if (fracIntAlu() < 0.0)
        throw std::invalid_argument(
            "WorkloadProfile: instruction mix exceeds 1");

    if (avgBlockInstrs < 1.0 || avgBlockInstrs > 64.0)
        throw std::invalid_argument(
            "WorkloadProfile: avgBlockInstrs must be in [1, 64]");
    checkFraction("takenBias", takenBias);
    checkFraction("branchPredictability", branchPredictability);
    checkFraction("callFraction", callFraction);
    if (avgCallDepth < 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: avgCallDepth must be >= 1");

    if (codeFootprintBytes < 1024)
        throw std::invalid_argument(
            "WorkloadProfile: codeFootprintBytes must be >= 1KB");
    if (hotCodeBytes < 512 || hotCodeBytes > codeFootprintBytes)
        throw std::invalid_argument(
            "WorkloadProfile: hotCodeBytes must be in "
            "[512, codeFootprintBytes]");
    if (dataFootprintBytes < 1024)
        throw std::invalid_argument(
            "WorkloadProfile: dataFootprintBytes must be >= 1KB");

    checkFraction("hotDataFraction", hotDataFraction);
    checkFraction("fracPointerChase", fracPointerChase);
    checkFraction("fracStrided", fracStrided);
    if (fracPointerChase + fracStrided > 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: memory pattern fractions exceed 1");
    if (strideBytes == 0)
        throw std::invalid_argument(
            "WorkloadProfile: strideBytes must be non-zero");

    checkFraction("valueLocality", valueLocality);
    if (avgDependencyDistance < 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: avgDependencyDistance must be >= 1");
}

} // namespace rigor::trace
