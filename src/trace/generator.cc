#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

namespace rigor::trace
{

namespace
{

/** SplitMix64 — used to derive independent per-block seeds. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const WorkloadProfile &profile, std::uint64_t num_instructions)
    : _profile(profile), _length(num_instructions),
      _seed(hashName(profile.name.c_str())), _rng(_seed)
{
    _profile.validate();

    // Fixed-size block slots: the template length varies per block
    // with mean avgBlockInstrs; the slot reserves the maximum plus
    // the terminator so block PCs never overlap.
    const auto max_body = static_cast<std::uint32_t>(
        std::lround(2.0 * _profile.avgBlockInstrs));
    _slotInstrs = std::max(2u, max_body + 1);

    const std::uint64_t slot_bytes = std::uint64_t{4} * _slotInstrs;
    std::uint64_t blocks = _profile.codeFootprintBytes / slot_bytes;
    blocks = std::max<std::uint64_t>(blocks, 2 * regionBlocks);
    // Whole regions only.
    blocks -= blocks % regionBlocks;
    _numBlocks = static_cast<std::uint32_t>(blocks);
    _numRegions = _numBlocks / regionBlocks;

    // The hot instruction working set, in regions. Control flow never
    // leaves it, so after warm-up there is no artificial cold-miss
    // trickle from an ever-growing touched-code set.
    const std::uint64_t region_bytes =
        std::uint64_t{regionBlocks} * 4 * _slotInstrs;
    std::uint64_t hot = _profile.hotCodeBytes / region_bytes;
    hot = std::max<std::uint64_t>(hot, 1);
    _hotRegions = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(hot, _numRegions));

    _valuePool.resize(valuePoolSize);
    Rng pool_rng(mix(_seed ^ 0x706f6f6cULL));
    for (std::uint32_t &v : _valuePool)
        v = static_cast<std::uint32_t>(pool_rng.next());

    _templates.resize(_numBlocks);
    reset();
}

void
SyntheticTraceGenerator::reset()
{
    _rng = Rng(mix(_seed ^ 0x64796eULL));
    _emitted = 0;
    _pending.clear();
    _frames.clear();
    _currentRegion = 0;
    _blockInRegion = 0;
    _tripsRemaining = 1 + _rng.nextGeometric(regionTripMean);
    _seqCursor = 0;
    _strideCursors.assign(numStrideStreams, 0);
    for (std::uint32_t s = 0; s < numStrideStreams; ++s)
        _strideCursors[s] =
            (_profile.dataFootprintBytes / numStrideStreams) * s;
    _nextDst = 1;
    _recentDst.assign(16, 1);
    _recentHead = 0;
}

std::uint64_t
SyntheticTraceGenerator::blockStartPc(std::uint32_t block_id) const
{
    return codeBasePc +
           static_cast<std::uint64_t>(block_id) * 4 * _slotInstrs;
}

std::uint32_t
SyntheticTraceGenerator::blockLength(std::uint32_t block_id) const
{
    // Body length in [1, slotInstrs - 1], mean ~ avgBlockInstrs.
    const std::uint32_t span = _slotInstrs - 1;
    return 1 + static_cast<std::uint32_t>(
                   mix(_seed ^ (0xb10cULL << 32) ^ block_id) % span);
}

const SyntheticTraceGenerator::BlockTemplate &
SyntheticTraceGenerator::templateFor(std::uint32_t block_id)
{
    std::unique_ptr<BlockTemplate> &slot = _templates[block_id];
    if (slot)
        return *slot;

    auto tmpl = std::make_unique<BlockTemplate>();
    Rng rng(mix(_seed ^ (std::uint64_t{block_id} << 20) ^ 0x7e3fULL));

    const std::uint32_t body = blockLength(block_id);
    tmpl->slots.reserve(body);
    for (std::uint32_t i = 0; i < body; ++i) {
        SlotTemplate s{};
        const double u = rng.nextDouble();
        double acc = _profile.fracLoad;
        if (u < acc) {
            s.op = OpClass::Load;
        } else if (u < (acc += _profile.fracStore)) {
            s.op = OpClass::Store;
        } else if (u < (acc += _profile.fracIntMult)) {
            s.op = OpClass::IntMult;
        } else if (u < (acc += _profile.fracIntDiv)) {
            s.op = OpClass::IntDiv;
        } else if (u < (acc += _profile.fracFpAlu)) {
            s.op = OpClass::FpAlu;
        } else if (u < (acc += _profile.fracFpMult)) {
            s.op = OpClass::FpMult;
        } else if (u < (acc += _profile.fracFpDiv)) {
            s.op = OpClass::FpDiv;
        } else if (u < (acc += _profile.fracFpSqrt)) {
            s.op = OpClass::FpSqrt;
        } else {
            s.op = OpClass::IntAlu;
        }

        if (isMemOp(s.op)) {
            const double m = rng.nextDouble();
            if (m < _profile.fracPointerChase)
                s.memPattern = 2;
            else if (m < _profile.fracPointerChase + _profile.fracStrided)
                s.memPattern = 1;
            else
                s.memPattern = 0;
            s.streamId = static_cast<std::uint8_t>(
                rng.nextBelow(numStrideStreams));
        }
        s.dst = 0; // assigned dynamically
        tmpl->slots.push_back(s);
    }

    tmpl->biasedBranch =
        rng.nextDouble() < _profile.branchPredictability;
    tmpl->biasedTaken = rng.nextDouble() < _profile.takenBias;

    slot = std::move(tmpl);
    return *slot;
}

std::uint32_t
SyntheticTraceGenerator::pickRegion()
{
    // Zipf over the hot region set: execution concentrates in hot
    // code with graded reuse, and stays within the profile's
    // steady-state instruction working set.
    return static_cast<std::uint32_t>(_rng.nextZipf(_hotRegions));
}

std::uint64_t
SyntheticTraceGenerator::dataAddress(const SlotTemplate &slot)
{
    const std::uint64_t footprint = _profile.dataFootprintBytes;
    std::uint64_t offset = 0;
    switch (slot.memPattern) {
      case 0: // sequential sweep
        _seqCursor = (_seqCursor + 8) % footprint;
        offset = _seqCursor;
        break;
      case 1: { // strided stream
        std::uint64_t &cursor = _strideCursors[slot.streamId];
        cursor = (cursor + _profile.strideBytes) % footprint;
        offset = cursor;
        break;
      }
      case 2: // pointer chase: hot subset or uniform
      default:
        if (_rng.nextBool(_profile.hotDataFraction)) {
            const std::uint64_t hot = std::max<std::uint64_t>(
                footprint / 16, 64);
            offset = _rng.nextZipf(hot / 8) * 8;
        } else {
            offset = _rng.nextBelow(footprint / 8) * 8;
        }
        break;
    }
    return dataBase + offset;
}

std::uint8_t
SyntheticTraceGenerator::pickSource()
{
    const std::uint64_t d =
        _rng.nextGeometric(_profile.avgDependencyDistance);
    const std::uint32_t back =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(d, 15));
    return _recentDst[(_recentHead + 16 - back) % 16];
}

void
SyntheticTraceGenerator::fillOperands(Instruction &inst)
{
    if (isControlOp(inst.op)) {
        // Loop conditions and pointer-chase exits test the value
        // just produced (while (node) { ... node = node->next; }),
        // so control resolves only after the newest dependence —
        // often an outstanding load. This is what makes branch
        // mispredictions expensive in memory-bound code.
        inst.srcA = _recentDst[_recentHead];
        inst.srcB = trace::noReg;
        inst.dst = trace::noReg;
        inst.valA = static_cast<std::uint32_t>(_rng.next());
        inst.valB = static_cast<std::uint32_t>(_rng.next());
        return;
    }

    inst.srcA = pickSource();
    inst.srcB = pickSource();

    if (inst.op != OpClass::Store && !isControlOp(inst.op)) {
        inst.dst = _nextDst;
        _nextDst = static_cast<std::uint8_t>(
            _nextDst % (numArchRegs - 2) + 1); // cycle r1..r30
        _recentHead = (_recentHead + 1) % 16;
        _recentDst[_recentHead] = inst.dst;
    } else {
        inst.dst = noReg;
    }

    // Operand values: hot pool draws create redundant computations
    // across the integer arithmetic classes — including the
    // long-latency multiplies and divides that instruction
    // precomputation [Yi02-1] profits from most.
    const bool arithmetic = inst.op == OpClass::IntAlu ||
                            inst.op == OpClass::IntMult ||
                            inst.op == OpClass::IntDiv;
    if (arithmetic && _rng.nextBool(_profile.valueLocality)) {
        inst.valA = _valuePool[_rng.nextZipf(valuePoolSize)];
        inst.valB = _valuePool[_rng.nextZipf(valuePoolSize)];
    } else {
        inst.valA = static_cast<std::uint32_t>(_rng.next());
        inst.valB = static_cast<std::uint32_t>(_rng.next());
    }
}

void
SyntheticTraceGenerator::emitBlock()
{
    const std::uint32_t block_id =
        _currentRegion * regionBlocks + _blockInRegion;
    const BlockTemplate &tmpl = templateFor(block_id);
    std::uint64_t pc = blockStartPc(block_id);

    for (const SlotTemplate &slot : tmpl.slots) {
        Instruction inst;
        inst.pc = pc;
        inst.op = slot.op;
        if (isMemOp(slot.op))
            inst.memAddr = dataAddress(slot);
        fillOperands(inst);
        _pending.push_back(inst);
        pc += 4;
    }

    // Terminator: always a control op (the exact kind — branch,
    // call, or return — is decided below; operand assignment only
    // needs to know it is control).
    Instruction term;
    term.pc = pc;
    term.op = OpClass::Branch;
    fillOperands(term);

    if (_blockInRegion + 1 < regionBlocks) {
        // Mid-region conditional branch; taken skips to the next
        // block (same successor either way — the direction only
        // redirects fetch).
        term.op = OpClass::Branch;
        const double p_taken = tmpl.biasedBranch
                                   ? (tmpl.biasedTaken ? 0.95 : 0.05)
                                   : _profile.takenBias;
        term.taken = _rng.nextBool(p_taken);
        term.target = blockStartPc(block_id + 1);
        ++_blockInRegion;
        _pending.push_back(term);
        return;
    }

    // Last block of the region: loop back edge or region exit.
    if (_tripsRemaining > 1) {
        --_tripsRemaining;
        term.op = OpClass::Branch;
        term.taken = true;
        term.target = blockStartPc(_currentRegion * regionBlocks);
        _blockInRegion = 0;
        _pending.push_back(term);
        return;
    }

    // Region loop finished: return, call deeper, or jump onward.
    const bool in_callee = !_frames.empty();
    const double p_deeper = 1.0 - 1.0 / _profile.avgCallDepth;
    const bool call_next =
        in_callee ? (_frames.size() < maxCallDepth &&
                     _rng.nextBool(p_deeper))
                  : _rng.nextBool(_profile.callFraction);

    if (call_next) {
        const std::uint32_t callee = pickRegion();
        // The caller resumes in a fresh region when the callee
        // returns; pre-pick it so the return target is known.
        const std::uint32_t resume = pickRegion();
        term.op = OpClass::Call;
        term.taken = true;
        term.target = blockStartPc(callee * regionBlocks);
        term.retAddr = blockStartPc(resume * regionBlocks);
        _frames.push_back({resume});
        _currentRegion = callee;
    } else if (in_callee) {
        const Frame frame = _frames.back();
        _frames.pop_back();
        term.op = OpClass::Return;
        term.taken = true;
        term.target = blockStartPc(frame.resumeRegion * regionBlocks);
        _currentRegion = frame.resumeRegion;
    } else {
        term.op = OpClass::Branch;
        term.taken = true;
        _currentRegion = pickRegion();
        term.target = blockStartPc(_currentRegion * regionBlocks);
    }
    _blockInRegion = 0;
    _tripsRemaining = 1 + _rng.nextGeometric(regionTripMean);
    _pending.push_back(term);
}

bool
SyntheticTraceGenerator::next(Instruction &out)
{
    if (_emitted >= _length)
        return false;
    while (_pending.empty())
        emitBlock();
    out = _pending.front();
    _pending.pop_front();
    ++_emitted;
    return true;
}

} // namespace rigor::trace
