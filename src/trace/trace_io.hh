/**
 * @file
 * Binary trace serialization.
 *
 * Lets a synthetic (or externally captured) instruction stream be
 * saved once and replayed across many simulations, and provides an
 * interchange point for users who want to drive the timing core with
 * traces from other tools.
 *
 * Format: a 16-byte header ("RGTR", version, count) followed by
 * packed little-endian records. The format is versioned; readers
 * reject unknown versions.
 */

#ifndef RIGOR_TRACE_TRACE_IO_HH
#define RIGOR_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>

#include "trace/generator.hh"
#include "trace/vector_source.hh"

namespace rigor::trace
{

/** Magic bytes of the trace format. */
constexpr char traceMagic[4] = {'R', 'G', 'T', 'R'};
/** Current format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/**
 * Drain @p source (from its current position) into a trace file.
 *
 * @param source stream to serialize; left exhausted
 * @param path output file path
 * @return number of instructions written
 * @throws std::runtime_error on I/O failure
 */
std::uint64_t writeTrace(TraceSource &source, const std::string &path);

/**
 * Load a trace file fully into memory.
 *
 * @param path input file path
 * @return a resettable in-memory source over the loaded instructions
 * @throws std::runtime_error on I/O failure, bad magic, or version
 *         mismatch
 */
VectorTraceSource readTrace(const std::string &path);

} // namespace rigor::trace

#endif // RIGOR_TRACE_TRACE_IO_HH
