#include "methodology/pb_experiment.hh"

#include <stdexcept>

#include "check/preflight.hh"
#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/parameter_space.hh"
#include "trace/generator.hh"

namespace rigor::methodology
{

std::vector<std::vector<double>>
PbExperimentResult::rankVectors() const
{
    std::vector<std::vector<double>> vectors;
    vectors.reserve(ranks.size());
    for (const std::vector<unsigned> &bench_ranks : ranks) {
        std::vector<double> v(bench_ranks.begin(), bench_ranks.end());
        vectors.push_back(std::move(v));
    }
    return vectors;
}

double
simulateOnce(const trace::WorkloadProfile &profile,
             const sim::ProcessorConfig &config,
             std::uint64_t instructions, sim::ExecutionHook *hook,
             std::uint64_t warmup_instructions)
{
    trace::SyntheticTraceGenerator gen(
        profile, instructions + warmup_instructions);
    sim::SuperscalarCore core(config, hook);
    const sim::CoreStats stats = core.run(gen, warmup_instructions);
    return static_cast<double>(stats.measuredCycles());
}

namespace
{

/** One engine job per (benchmark, design row) pair. */
std::vector<exec::SimJob>
pbSimJobs(std::span<const trace::WorkloadProfile> workloads,
          const doe::DesignMatrix &design,
          const PbExperimentOptions &options)
{
    const std::size_t num_runs = design.numRows();
    std::vector<exec::SimJob> jobs;
    jobs.reserve(workloads.size() * num_runs);
    for (std::size_t bench = 0; bench < workloads.size(); ++bench) {
        const trace::WorkloadProfile &workload = workloads[bench];
        for (std::size_t run = 0; run < num_runs; ++run) {
            exec::SimJob job;
            job.workload = &workload;
            job.config = configForLevels(design.row(run));
            job.instructions = options.instructionsPerRun;
            job.warmupInstructions = options.warmupInstructions;
            if (options.hookFactory) {
                job.makeHook = [&factory = options.hookFactory,
                                &workload]() {
                    return factory(workload);
                };
                if (!options.hookId.empty())
                    job.hookId =
                        options.hookId + "/" + workload.name;
            }
            job.label = workload.name + ", design row " +
                        std::to_string(run);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

PbExperimentResult
runPbExperiment(std::span<const trace::WorkloadProfile> workloads,
                const PbExperimentOptions &options)
{
    if (workloads.empty())
        throw std::invalid_argument("runPbExperiment: no workloads");
    if (options.instructionsPerRun == 0)
        throw std::invalid_argument(
            "runPbExperiment: instructionsPerRun must be non-zero");

    PbExperimentResult result;
    doe::DesignMatrix base = options.design
                                 ? *options.design
                                 : doe::pbDesignForFactors(numFactors);
    result.design = options.foldover ? doe::foldover(base) : base;

    // Mandatory pre-flight: prove the design is a balanced
    // orthogonal ±1 (foldover) matrix, audit the Tables 6-8
    // parameter space, and vet every workload profile and the run
    // lengths — before a single cycle is simulated.
    if (!options.skipPreflight) {
        check::ExperimentPlan plan;
        plan.design = &result.design;
        plan.expectedFactors = numFactors;
        plan.designIsFolded = options.foldover;
        plan.workloads = workloads;
        plan.auditParameterSpace = true;
        plan.instructionsPerRun = options.instructionsPerRun;
        plan.warmupInstructions = options.warmupInstructions;
        check::preflightOrThrow(plan, "runPbExperiment");
    }

    const std::size_t num_benches = workloads.size();
    const std::size_t num_runs = result.design.numRows();
    result.benchmarks.reserve(num_benches);
    for (const trace::WorkloadProfile &w : workloads)
        result.benchmarks.push_back(w.name);

    // One engine job per (benchmark, design row) pair, run through
    // the shared engine (or a private one) — the responses come back
    // in job order, so the result is thread-count independent.
    const std::vector<exec::SimJob> jobs =
        pbSimJobs(workloads, result.design, options);

    exec::SimulationEngine local_engine(
        exec::EngineOptions{options.threads, true});
    exec::SimulationEngine &engine =
        options.engine ? *options.engine : local_engine;

    std::vector<double> flat;
    try {
        flat = engine.run(jobs);
    } catch (const std::exception &e) {
        throw std::runtime_error(
            std::string("runPbExperiment: simulation failed: ") +
            e.what());
    }

    result.responses.assign(num_benches,
                            std::vector<double>(num_runs, 0.0));
    for (std::size_t bench = 0; bench < num_benches; ++bench)
        for (std::size_t run = 0; run < num_runs; ++run)
            result.responses[bench][run] =
                flat[bench * num_runs + run];

    // Effects and per-benchmark ranks over the 43 real+dummy factors
    // (the design has exactly 43 columns for X = 44).
    result.effects.reserve(num_benches);
    result.ranks.reserve(num_benches);
    for (std::size_t b = 0; b < num_benches; ++b) {
        std::vector<double> all_effects =
            doe::computeEffects(result.design, result.responses[b]);
        all_effects.resize(numFactors);
        result.ranks.push_back(doe::rankByMagnitude(all_effects));
        result.effects.push_back(std::move(all_effects));
    }

    const std::vector<std::string> names = factorNames();
    result.summaries = doe::aggregateRanks(names, result.effects);
    return result;
}

} // namespace rigor::methodology
