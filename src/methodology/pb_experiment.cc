#include "methodology/pb_experiment.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

#include <chrono>

#include "check/preflight.hh"
#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "exec/journal.hh"
#include "methodology/campaign_instrumentation.hh"
#include "methodology/parameter_space.hh"
#include "methodology/rank_table.hh"
#include "trace/generator.hh"

namespace rigor::methodology
{

std::vector<std::vector<double>>
PbExperimentResult::rankVectors() const
{
    std::vector<std::vector<double>> vectors;
    vectors.reserve(ranks.size());
    for (const std::vector<unsigned> &bench_ranks : ranks) {
        std::vector<double> v(bench_ranks.begin(), bench_ranks.end());
        vectors.push_back(std::move(v));
    }
    return vectors;
}

void
PbExperimentResult::dropBenchmarks(std::span<const std::string> names)
{
    const std::set<std::string> doomed(names.begin(), names.end());
    if (doomed.empty())
        return;

    std::size_t kept = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        if (doomed.count(benchmarks[b])) {
            droppedBenchmarks.push_back(benchmarks[b]);
            continue;
        }
        if (kept != b) {
            benchmarks[kept] = std::move(benchmarks[b]);
            if (b < responses.size())
                responses[kept] = std::move(responses[b]);
            if (b < effects.size())
                effects[kept] = std::move(effects[b]);
            if (b < ranks.size())
                ranks[kept] = std::move(ranks[b]);
        }
        ++kept;
    }
    if (kept == benchmarks.size())
        return; // nothing matched
    if (kept == 0)
        throw std::invalid_argument(
            "PbExperimentResult::dropBenchmarks: dropping every "
            "benchmark leaves nothing to aggregate");

    benchmarks.resize(kept);
    if (responses.size() > kept)
        responses.resize(kept);
    if (effects.size() > kept)
        effects.resize(kept);
    if (ranks.size() > kept)
        ranks.resize(kept);
    std::sort(droppedBenchmarks.begin(), droppedBenchmarks.end());
    droppedBenchmarks.erase(std::unique(droppedBenchmarks.begin(),
                                        droppedBenchmarks.end()),
                            droppedBenchmarks.end());
    // Pre-effects callers (the experiment driver itself) drop before
    // anything is aggregated; nothing to recompute yet.
    if (!effects.empty())
        summaries = doe::aggregateRanks(factorNames(), effects);
    else
        summaries.clear();
}

double
simulateOnce(const trace::WorkloadProfile &profile,
             const sim::ProcessorConfig &config,
             std::uint64_t instructions, sim::ExecutionHook *hook,
             std::uint64_t warmup_instructions)
{
    trace::SyntheticTraceGenerator gen(
        profile, instructions + warmup_instructions);
    sim::SuperscalarCore core(config, hook);
    const sim::CoreStats stats = core.run(gen, warmup_instructions);
    return static_cast<double>(stats.measuredCycles());
}

namespace
{

/** One engine job per (benchmark, design row) pair. */
std::vector<exec::SimJob>
pbSimJobs(std::span<const trace::WorkloadProfile> workloads,
          const doe::DesignMatrix &design,
          const PbExperimentOptions &options)
{
    const std::size_t num_runs = design.numRows();
    std::vector<exec::SimJob> jobs;
    jobs.reserve(workloads.size() * num_runs);
    for (std::size_t bench = 0; bench < workloads.size(); ++bench) {
        const trace::WorkloadProfile &workload = workloads[bench];
        for (std::size_t run = 0; run < num_runs; ++run) {
            exec::SimJob job;
            job.workload = &workload;
            job.config = configForLevels(design.row(run));
            job.instructions = options.instructionsPerRun;
            job.warmupInstructions = options.warmupInstructions;
            job.sampling = options.campaign.sampling;
            if (options.hookFactory) {
                job.makeHook = [&factory = options.hookFactory,
                                &workload]() {
                    return factory(workload);
                };
                if (!options.hookId.empty())
                    job.hookId =
                        options.hookId + "/" + workload.name;
            }
            job.label = workload.name + ", design row " +
                        std::to_string(run);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

PbExperimentResult
runPbExperiment(std::span<const trace::WorkloadProfile> workloads,
                const PbExperimentOptions &options)
{
    if (workloads.empty())
        throw std::invalid_argument("runPbExperiment: no workloads");
    if (options.instructionsPerRun == 0)
        throw std::invalid_argument(
            "runPbExperiment: instructionsPerRun must be non-zero");

    const exec::CampaignOptions &campaign = options.campaign;
    const auto campaign_start = std::chrono::steady_clock::now();

    PbExperimentResult result;
    doe::DesignMatrix base = options.design
                                 ? *options.design
                                 : doe::pbDesignForFactors(numFactors);
    result.design = campaign.foldover ? doe::foldover(base) : base;

    const std::size_t num_benches = workloads.size();
    const std::size_t num_runs = result.design.numRows();
    result.benchmarks.reserve(num_benches);
    for (const trace::WorkloadProfile &w : workloads)
        result.benchmarks.push_back(w.name);

    if (campaign.manifest) {
        obs::CampaignInfo info;
        info.experiment = options.experimentName;
        info.factors = result.design.numColumns();
        info.rows = num_runs;
        info.foldover = campaign.foldover;
        info.designDigest = detail::designDigest(result.design);
        info.workloads = result.benchmarks;
        info.instructionsPerRun = options.instructionsPerRun;
        info.warmupInstructions = options.warmupInstructions;
        info.sampling = campaign.sampling;
        campaign.manifest->beginCampaign(info);
    }

    // Mandatory pre-flight: prove the design is a balanced
    // orthogonal ±1 (foldover) matrix, audit the Tables 6-8
    // parameter space, and vet every workload profile and the run
    // lengths — before a single cycle is simulated.
    if (!campaign.skipPreflight) {
        detail::PhaseScope phase(campaign, "preflight");
        check::ExperimentPlan plan;
        plan.design = &result.design;
        plan.expectedFactors = numFactors;
        plan.designIsFolded = campaign.foldover;
        plan.workloads = workloads;
        plan.auditParameterSpace = true;
        plan.instructionsPerRun = options.instructionsPerRun;
        plan.warmupInstructions = options.warmupInstructions;
        plan.sampling = campaign.sampling;
        plan.replication = campaign.replication;
        plan.remote = detail::remotePlanFor(campaign);
        check::preflightOrThrow(plan, "runPbExperiment");
    }

    // One engine job per (benchmark, design row) pair, run through
    // the shared engine (or a private one) — the responses come back
    // in job order, so the result is thread-count independent.
    const std::vector<exec::SimJob> jobs =
        pbSimJobs(workloads, result.design, options);

    exec::SimulationEngine local_engine(
        exec::EngineOptions{campaign.threads, true});
    exec::SimulationEngine &engine =
        campaign.engine ? *campaign.engine : local_engine;

    // Attach the campaign's sinks for the duration of the batch; a
    // shared engine gets its previous sinks back afterwards even when
    // the batch throws.
    detail::EngineSinkScope sinks(
        engine, campaign,
        detail::manifestCellObserver(campaign.manifest,
                                     result.benchmarks, num_runs));
    // Under process isolation, route each attempt to a sandbox
    // worker; the engine's current executor (real simulator or an
    // injector wrapper) runs inside the forked children.
    detail::IsolationScope isolation(engine, campaign,
                                     options.hookFactory);
    const exec::ProgressSnapshot progress_before =
        engine.progress().snapshot();

    exec::BatchResult batch;
    try {
        detail::PhaseScope phase(campaign, "screen");
        phase.span().arg("jobs", std::to_string(jobs.size()));
        batch = engine.run(jobs, campaign.faultPolicy);
    } catch (const exec::BatchAbort &) {
        // Infrastructure failure (journal I/O error, crash drill):
        // propagate unwrapped so a campaign driver can recognize it
        // and resume against the journal.
        throw;
    } catch (const std::exception &e) {
        throw std::runtime_error(
            std::string("runPbExperiment: simulation failed: ") +
            e.what());
    }

    result.responses.assign(num_benches,
                            std::vector<double>(num_runs, 0.0));
    for (std::size_t bench = 0; bench < num_benches; ++bench)
        for (std::size_t run = 0; run < num_runs; ++run)
            result.responses[bench][run] =
                batch.responses[bench * num_runs + run];

    // Quarantined cells (collect-failures mode) are not
    // statistically free: arbitrate drop-vs-abort before any effect
    // is computed, so an incomplete response column never reaches
    // the rank aggregation.
    std::vector<std::string> drop;
    if (!batch.complete()) {
        std::vector<check::QuarantinedCell> cells;
        cells.reserve(batch.failures.size());
        for (const exec::JobFailure &f : batch.failures) {
            check::QuarantinedCell cell;
            cell.benchmark = result.benchmarks[f.jobIndex / num_runs];
            cell.row = f.jobIndex % num_runs;
            cell.attempts = f.attempts;
            cell.kind = exec::toString(f.kind);
            cell.message = f.message;
            cells.push_back(std::move(cell));
        }
        check::CampaignAssessment assessment =
            check::assessCampaignValidity(
                result.benchmarks, num_runs, campaign.foldover, cells,
                campaign.degradation);
        result.validity = assessment.sink;
        if (!assessment.passed())
            throw check::CampaignError("runPbExperiment",
                                       std::move(assessment.sink));
        drop = std::move(assessment.dropBenchmarks);
    }

    if (!drop.empty()) {
        result.dropBenchmarks(drop);
    }

    // Effects and per-benchmark ranks over the 43 real+dummy factors
    // (the design has exactly 43 columns for X = 44), computed only
    // for surviving benchmarks — their columns are complete.
    {
        detail::PhaseScope phase(campaign, "rank");
        const std::size_t survivors = result.benchmarks.size();
        result.effects.clear();
        result.ranks.clear();
        result.effects.reserve(survivors);
        result.ranks.reserve(survivors);
        for (std::size_t b = 0; b < survivors; ++b) {
            std::vector<double> all_effects = doe::computeEffects(
                result.design, result.responses[b]);
            all_effects.resize(numFactors);
            result.ranks.push_back(doe::rankByMagnitude(all_effects));
            result.effects.push_back(std::move(all_effects));
        }
    }

    {
        detail::PhaseScope phase(campaign, "aggregate");
        const std::vector<std::string> names = factorNames();
        result.summaries = doe::aggregateRanks(names, result.effects);
    }

    if (campaign.manifest) {
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - campaign_start;
        obs::SummaryRecord summary = detail::summaryFromProgress(
            progress_before, engine.progress().snapshot(),
            wall.count());
        summary.droppedBenchmarks = result.droppedBenchmarks;
        summary.rankTableDigest = rankTableDigest(result.summaries);
        campaign.manifest->addSummary(summary);
    }
    return result;
}

} // namespace rigor::methodology
