#include "methodology/pb_experiment.hh"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/parameter_space.hh"
#include "trace/generator.hh"

namespace rigor::methodology
{

std::vector<std::vector<double>>
PbExperimentResult::rankVectors() const
{
    std::vector<std::vector<double>> vectors;
    vectors.reserve(ranks.size());
    for (const std::vector<unsigned> &bench_ranks : ranks) {
        std::vector<double> v(bench_ranks.begin(), bench_ranks.end());
        vectors.push_back(std::move(v));
    }
    return vectors;
}

double
simulateOnce(const trace::WorkloadProfile &profile,
             const sim::ProcessorConfig &config,
             std::uint64_t instructions, sim::ExecutionHook *hook,
             std::uint64_t warmup_instructions)
{
    trace::SyntheticTraceGenerator gen(
        profile, instructions + warmup_instructions);
    sim::SuperscalarCore core(config, hook);
    const sim::CoreStats stats = core.run(gen, warmup_instructions);
    return static_cast<double>(stats.measuredCycles());
}

PbExperimentResult
runPbExperiment(std::span<const trace::WorkloadProfile> workloads,
                const PbExperimentOptions &options)
{
    if (workloads.empty())
        throw std::invalid_argument("runPbExperiment: no workloads");
    if (options.instructionsPerRun == 0)
        throw std::invalid_argument(
            "runPbExperiment: instructionsPerRun must be non-zero");

    PbExperimentResult result;
    doe::DesignMatrix base = doe::pbDesignForFactors(numFactors);
    result.design = options.foldover ? doe::foldover(base) : base;

    const std::size_t num_benches = workloads.size();
    const std::size_t num_runs = result.design.numRows();
    result.benchmarks.reserve(num_benches);
    for (const trace::WorkloadProfile &w : workloads)
        result.benchmarks.push_back(w.name);
    result.responses.assign(num_benches,
                            std::vector<double>(num_runs, 0.0));

    // Flat task list: one (benchmark, design row) pair per task.
    const std::size_t num_tasks = num_benches * num_runs;
    std::atomic<std::size_t> next_task{0};
    std::atomic<bool> failed{false};
    std::string failure_message;
    std::mutex failure_mutex;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t task =
                next_task.fetch_add(1, std::memory_order_relaxed);
            if (task >= num_tasks || failed.load())
                return;
            const std::size_t bench = task / num_runs;
            const std::size_t run = task % num_runs;
            try {
                const std::vector<doe::Level> levels =
                    result.design.row(run);
                const sim::ProcessorConfig config =
                    configForLevels(levels);
                std::unique_ptr<sim::ExecutionHook> hook;
                if (options.hookFactory)
                    hook = options.hookFactory(workloads[bench]);
                result.responses[bench][run] = simulateOnce(
                    workloads[bench], config,
                    options.instructionsPerRun, hook.get(),
                    options.warmupInstructions);
            } catch (const std::exception &e) {
                const std::scoped_lock lock(failure_mutex);
                failed.store(true);
                if (failure_message.empty())
                    failure_message = e.what();
            }
        }
    };

    unsigned num_threads = options.threads;
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 4;
    }
    num_threads = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, num_tasks));

    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (failed.load())
        throw std::runtime_error("runPbExperiment: simulation failed: " +
                                 failure_message);

    // Effects and per-benchmark ranks over the 43 real+dummy factors
    // (the design has exactly 43 columns for X = 44).
    result.effects.reserve(num_benches);
    result.ranks.reserve(num_benches);
    for (std::size_t b = 0; b < num_benches; ++b) {
        std::vector<double> all_effects =
            doe::computeEffects(result.design, result.responses[b]);
        all_effects.resize(numFactors);
        result.ranks.push_back(doe::rankByMagnitude(all_effects));
        result.effects.push_back(std::move(all_effects));
    }

    const std::vector<std::string> names = factorNames();
    result.summaries = doe::aggregateRanks(names, result.effects);
    return result;
}

} // namespace rigor::methodology
