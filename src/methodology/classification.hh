/**
 * @file
 * Benchmark classification by processor effect (section 4.2).
 *
 * Each benchmark's fingerprint is its vector of parameter ranks; two
 * benchmarks are similar when the Euclidean distance between their
 * fingerprints falls below a threshold (sqrt(4000) ~ 63.2 in the
 * paper's worked example). Similar benchmarks group together —
 * Tables 10 and 11.
 */

#ifndef RIGOR_METHODOLOGY_CLASSIFICATION_HH
#define RIGOR_METHODOLOGY_CLASSIFICATION_HH

#include <span>
#include <string>
#include <vector>

#include "cluster/distance_matrix.hh"
#include "cluster/threshold_grouping.hh"

namespace rigor::methodology
{

/**
 * The paper's worked-example similarity cutoff, stated as a squared
 * Euclidean distance: two benchmarks are similar when the distance
 * between their rank vectors is below sqrt(4000) ~ 63.2. This is the
 * single source for that number — Table 11 tooling, tests, and docs
 * all derive from it.
 */
inline constexpr double kSimilarityThresholdSquared = 4000.0;

/** The paper's worked-example similarity threshold:
 *  sqrt(kSimilarityThresholdSquared). */
double defaultSimilarityThreshold();

/** Result of the classification step. */
struct ClassificationResult
{
    std::vector<std::string> benchmarks;
    cluster::DistanceMatrix distances{1};
    double threshold = 0.0;
    /** Groups as benchmark-name lists, ordered by first member. */
    std::vector<std::vector<std::string>> groups;

    /** Render the groups as the paper's Table 11 (one group per line). */
    std::string groupsToString() const;
};

/**
 * Classify benchmarks from their rank vectors.
 *
 * @param names one name per benchmark
 * @param rank_vectors one rank-vector per benchmark (equal lengths)
 * @param threshold similarity cutoff; pairs closer than this are
 *        similar
 */
ClassificationResult
classifyBenchmarks(std::span<const std::string> names,
                   const std::vector<std::vector<double>> &rank_vectors,
                   double threshold);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_CLASSIFICATION_HH
