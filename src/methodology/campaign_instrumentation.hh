/**
 * @file
 * Shared driver-side observability plumbing (internal).
 *
 * Every experiment driver does the same instrumentation dance: attach
 * the campaign's sinks (journal, metrics, trace, per-job observer) to
 * whichever engine runs the batch — restoring whatever a shared engine
 * had before, even on throw — wrap each phase in a TraceSpan plus a
 * manifest "phase" record, digest the design for the manifest's
 * campaign record, and map engine JobEvents onto manifest cells. These
 * helpers keep that dance in one place so the drivers stay about the
 * methodology.
 */

#ifndef RIGOR_METHODOLOGY_CAMPAIGN_INSTRUMENTATION_HH
#define RIGOR_METHODOLOGY_CAMPAIGN_INSTRUMENTATION_HH

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "check/campaign_check.hh"
#include "doe/design_matrix.hh"
#include "exec/campaign_options.hh"
#include "exec/engine.hh"
#include "exec/net/controller.hh"
#include "exec/proc/worker_pool.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace rigor::methodology::detail
{

/** FNV-1a digest (hex) of a design matrix's dimensions and signs. */
inline std::string
designDigest(const doe::DesignMatrix &design)
{
    std::string serialized;
    serialized.reserve(design.numRows() * (design.numColumns() + 1) +
                       16);
    serialized += std::to_string(design.numRows());
    serialized += 'x';
    serialized += std::to_string(design.numColumns());
    serialized += ':';
    for (std::size_t r = 0; r < design.numRows(); ++r)
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            serialized += design.sign(r, c) > 0 ? '+' : '-';
    return obs::digestHex(obs::fnv1a(serialized));
}

/**
 * RAII: chain an additional job observer onto the engine for one
 * scope, restoring the previous observer on destruction (throw-safe).
 * The driver-side EngineSinkScope inside runPbExperiment chains on
 * top, so e.g. the manifest feed keeps flowing while an adaptive or
 * replicated driver captures per-job sampling CIs.
 */
class ObserverScope
{
  public:
    ObserverScope(exec::SimulationEngine &engine,
                  exec::JobObserver added)
        : _engine(engine), _previous(engine.jobObserver())
    {
        if (_previous) {
            _engine.setJobObserver(
                [previous = _previous, added = std::move(added)](
                    const exec::JobEvent &event) {
                    previous(event);
                    added(event);
                });
        } else {
            _engine.setJobObserver(std::move(added));
        }
    }

    ~ObserverScope() { _engine.setJobObserver(std::move(_previous)); }

    ObserverScope(const ObserverScope &) = delete;
    ObserverScope &operator=(const ObserverScope &) = delete;

  private:
    exec::SimulationEngine &_engine;
    exec::JobObserver _previous;
};

/**
 * RAII: attach the campaign's sinks to @p engine, restoring the
 * engine's previous sinks on destruction (throw-safe — a shared
 * engine leaves with exactly the journal/metrics/trace/observer it
 * arrived with).
 */
class EngineSinkScope
{
  public:
    EngineSinkScope(exec::SimulationEngine &engine,
                    const exec::CampaignOptions &campaign,
                    exec::JobObserver observer = {})
        : _engine(engine), _previousJournal(engine.journal()),
          _previousMetrics(engine.metrics()),
          _previousTrace(engine.traceWriter()),
          _previousObserver(engine.jobObserver())
    {
        if (campaign.journal)
            _engine.setJournal(campaign.journal);
        if (campaign.metrics)
            _engine.setMetrics(campaign.metrics);
        if (campaign.trace)
            _engine.setTraceWriter(campaign.trace);
        if (observer) {
            // Chain rather than replace: a caller-attached observer
            // (e.g. the campaign CLI's replay progress printer) keeps
            // seeing events alongside the driver's manifest feed.
            if (_previousObserver) {
                _engine.setJobObserver(
                    [previous = _previousObserver,
                     added = std::move(observer)](
                        const exec::JobEvent &event) {
                        previous(event);
                        added(event);
                    });
            } else {
                _engine.setJobObserver(std::move(observer));
            }
        }
    }

    ~EngineSinkScope()
    {
        _engine.setJournal(_previousJournal);
        _engine.setMetrics(_previousMetrics);
        _engine.setTraceWriter(_previousTrace);
        _engine.setJobObserver(std::move(_previousObserver));
    }

    EngineSinkScope(const EngineSinkScope &) = delete;
    EngineSinkScope &operator=(const EngineSinkScope &) = delete;

  private:
    exec::SimulationEngine &_engine;
    exec::ResultJournal *_previousJournal;
    obs::MetricsRegistry *_previousMetrics;
    obs::TraceWriter *_previousTrace;
    exec::JobObserver _previousObserver;
};

/**
 * RAII: under IsolationMode::Process, swap the engine's attempt
 * executor for a sandbox pool's dispatch function, restoring the
 * previous executor on destruction (throw-safe). The engine's
 * *current* executor — the real simulator, a test stub, or a
 * fault-injector wrapper — is captured first and becomes the
 * executor *inside* the forked workers, so injected faults drill the
 * sandbox rather than the parent. Uses campaign.procPool when the
 * caller supplies a shared pool (multi-phase drivers); otherwise
 * builds a private pool sized to the engine's thread count.
 *
 * Under IsolationMode::Remote the executor is swapped for the
 * caller-supplied campaign.netController's dispatch function instead
 * — the controller owns its own worker fleet, so nothing is built
 * here; a remote campaign without a controller is a programming
 * error and throws. Under thread isolation this scope is a no-op.
 */
class IsolationScope
{
  public:
    IsolationScope(exec::SimulationEngine &engine,
                   const exec::CampaignOptions &campaign,
                   exec::proc::SandboxHookFactory hook_factory = {})
        : _engine(engine)
    {
        if (campaign.isolation == exec::IsolationMode::Remote) {
            if (campaign.netController == nullptr)
                throw std::logic_error(
                    "IsolationMode::Remote requires "
                    "CampaignOptions::netController (build a "
                    "CampaignController and point the campaign at "
                    "it)");
            _previous = engine.simulateFn();
            engine.setSimulate(
                campaign.netController->simulateFn());
            _swapped = true;
            return;
        }
        if (campaign.isolation != exec::IsolationMode::Process)
            return;
        _previous = engine.simulateFn();
        exec::proc::ProcWorkerPool *pool = campaign.procPool;
        if (pool == nullptr) {
            exec::proc::ProcWorkerPool::Options options;
            options.workers = engine.threads();
            options.simulate = _previous;
            options.hookFactory = std::move(hook_factory);
            options.memLimitMb = campaign.memLimitMb;
            options.hardDeadline = campaign.hardDeadline;
            _owned = std::make_unique<exec::proc::ProcWorkerPool>(
                std::move(options));
            pool = _owned.get();
            pool->setMetrics(campaign.metrics);
            pool->setTraceWriter(campaign.trace);
        }
        engine.setSimulate(pool->simulateFn());
        _swapped = true;
    }

    ~IsolationScope()
    {
        if (_swapped)
            _engine.setSimulate(std::move(_previous));
        // _owned (if any) is destroyed after the engine stops
        // dispatching through it.
    }

    IsolationScope(const IsolationScope &) = delete;
    IsolationScope &operator=(const IsolationScope &) = delete;

  private:
    exec::SimulationEngine &_engine;
    exec::SimulateFn _previous;
    std::unique_ptr<exec::proc::ProcWorkerPool> _owned;
    bool _swapped = false;
};

/**
 * Build the shared sandbox pool for a multi-phase driver (workflow,
 * enhancement analysis): captures the engine's current executor as
 * the in-child executor, sized to the engine's threads, with the
 * campaign's caps and sinks attached. Returns null under thread
 * isolation or when the caller already supplied campaign.procPool.
 */
inline std::unique_ptr<exec::proc::ProcWorkerPool>
makeSharedProcPool(exec::SimulationEngine &engine,
                   const exec::CampaignOptions &campaign,
                   exec::proc::SandboxHookFactory hook_factory = {})
{
    if (campaign.isolation != exec::IsolationMode::Process ||
        campaign.procPool != nullptr)
        return nullptr;
    exec::proc::ProcWorkerPool::Options options;
    options.workers = engine.threads();
    options.simulate = engine.simulateFn();
    options.hookFactory = std::move(hook_factory);
    options.memLimitMb = campaign.memLimitMb;
    options.hardDeadline = campaign.hardDeadline;
    auto pool = std::make_unique<exec::proc::ProcWorkerPool>(
        std::move(options));
    pool->setMetrics(campaign.metrics);
    pool->setTraceWriter(campaign.trace);
    return pool;
}

/**
 * Reduce a remote campaign's topology to the plain-integer RemotePlan
 * the check layer pre-flights (campaign.no-workers,
 * campaign.lease-shorter-than-deadline). Disabled — and therefore
 * skipped by every analyzer — unless the campaign actually runs under
 * IsolationMode::Remote.
 */
inline check::RemotePlan
remotePlanFor(const exec::CampaignOptions &campaign)
{
    check::RemotePlan plan;
    if (campaign.isolation != exec::IsolationMode::Remote)
        return plan;
    plan.enabled = true;
    plan.workers = campaign.remoteWorkers;
    plan.leaseMs = static_cast<std::uint64_t>(
        campaign.leaseDuration.count());
    plan.heartbeatMs = static_cast<std::uint64_t>(
        campaign.heartbeatInterval.count());
    plan.attemptDeadlineMs = static_cast<std::uint64_t>(
        campaign.faultPolicy.attemptDeadline.count());
    plan.hardDeadlineMs =
        static_cast<std::uint64_t>(campaign.hardDeadline.count());
    return plan;
}

/**
 * RAII driver phase: a TraceSpan on lane 0 plus a manifest "phase"
 * record with the phase's wall time, both no-ops when the respective
 * sink is null.
 */
class PhaseScope
{
  public:
    PhaseScope(const exec::CampaignOptions &campaign, std::string name)
        : _manifest(campaign.manifest), _name(std::move(name)),
          _span(campaign.trace, _name),
          _start(std::chrono::steady_clock::now())
    {
    }

    ~PhaseScope()
    {
        if (!_manifest)
            return;
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - _start;
        _manifest->addPhase(_name, wall.count());
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

    obs::TraceSpan &span() { return _span; }

  private:
    obs::CampaignManifest *_manifest;
    std::string _name;
    obs::TraceSpan _span;
    std::chrono::steady_clock::time_point _start;
};

/**
 * JobObserver that appends one manifest cell per finished job,
 * mapping the benchmark-major job index back onto (benchmark, design
 * row). Returns an empty observer when the manifest is null, so the
 * engine skips the callback entirely.
 */
inline exec::JobObserver
manifestCellObserver(obs::CampaignManifest *manifest,
                     std::vector<std::string> benchmarks,
                     std::size_t num_runs)
{
    if (!manifest || num_runs == 0)
        return {};
    return [manifest, benchmarks = std::move(benchmarks),
            num_runs](const exec::JobEvent &event) {
        obs::CellRecord cell;
        const std::size_t bench = event.jobIndex / num_runs;
        cell.benchmark = bench < benchmarks.size()
                             ? benchmarks[bench]
                             : std::to_string(bench);
        cell.row = event.jobIndex % num_runs;
        cell.runKey = event.runKey;
        cell.source =
            event.ok ? exec::toString(event.source) : "failed";
        cell.attempts = event.attempts;
        cell.wallSeconds = event.wallSeconds;
        cell.response = event.response;
        if (event.sampled) {
            cell.sampled = true;
            cell.sampleUnits = event.sample.units;
            cell.sampleRelativeError = event.sample.relativeError;
            cell.sampleCiHalfWidth = event.sample.ciHalfWidth;
        }
        cell.host = event.host;
        manifest->addCell(cell);
    };
}

/**
 * Manifest summary from the engine's progress delta across the
 * campaign (snapshot-before vs snapshot-after, so a shared engine's
 * earlier campaigns don't leak in).
 */
inline obs::SummaryRecord
summaryFromProgress(const exec::ProgressSnapshot &before,
                    const exec::ProgressSnapshot &after,
                    double wall_seconds)
{
    obs::SummaryRecord summary;
    summary.runsTotal = after.runsTotal - before.runsTotal;
    summary.runsCompleted =
        after.runsCompleted - before.runsCompleted;
    summary.cacheHits = after.cacheHits - before.cacheHits;
    summary.journalHits = after.journalHits - before.journalHits;
    summary.retries = after.retries - before.retries;
    summary.failedJobs = after.failedJobs - before.failedJobs;
    summary.simulatedInstructions =
        after.simulatedInstructions - before.simulatedInstructions;
    summary.wallSeconds = wall_seconds;
    return summary;
}

} // namespace rigor::methodology::detail

#endif // RIGOR_METHODOLOGY_CAMPAIGN_INSTRUMENTATION_HH
