/**
 * @file
 * Small fixed-width text-table builder shared by the bench harnesses.
 */

#ifndef RIGOR_METHODOLOGY_REPORT_HH
#define RIGOR_METHODOLOGY_REPORT_HH

#include <string>
#include <vector>

namespace rigor::methodology
{

/**
 * Accumulates rows of cells and renders them with per-column widths.
 */
class TextTable
{
  public:
    /** Start a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows so far. */
    std::size_t numRows() const { return _rows.size(); }

    /** Render with columns padded to their widest cell. */
    std::string toString() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with @p decimals places. */
std::string formatDouble(double value, int decimals);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_REPORT_HH
