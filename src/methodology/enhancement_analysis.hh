/**
 * @file
 * Before/after enhancement analysis (section 4.3).
 *
 * Run the PB ranking on the base processor and again with an
 * enhancement enabled, then compare each parameter's sum of ranks.
 * A parameter whose sum rises lost significance under the enhancement
 * (the enhancement relieved that bottleneck); a falling sum means
 * increased pressure. The paper's case study finds that instruction
 * precomputation most relieves the number of integer ALUs.
 */

#ifndef RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH
#define RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH

#include <span>
#include <string>
#include <vector>

#include "doe/ranking.hh"

namespace rigor::methodology
{

/** One parameter's before/after movement. */
struct RankShift
{
    std::string name;
    unsigned long sumBefore = 0;
    unsigned long sumAfter = 0;

    /** Positive = lost significance (sum went up). */
    long delta() const
    {
        return static_cast<long>(sumAfter) -
               static_cast<long>(sumBefore);
    }
};

/** Full comparison of two rank tables. */
struct EnhancementComparison
{
    /** One entry per factor, sorted by descending |delta|. */
    std::vector<RankShift> shifts;

    /** Shift record for a named factor; throws if absent. */
    const RankShift &shift(const std::string &name) const;

    /**
     * Among the @p top_k most significant base factors, the one whose
     * sum of ranks increased the most (the paper's headline metric:
     * which bottleneck the enhancement relieved).
     */
    RankShift biggestReliefAmongTop(
        std::span<const doe::FactorRankSummary> base_summaries,
        std::size_t top_k) const;

    /** Fixed-width text rendering. */
    std::string toString(std::size_t max_rows = 0) const;
};

/**
 * Compare base and enhanced rank summaries (factor sets must match).
 */
EnhancementComparison
compareRankTables(std::span<const doe::FactorRankSummary> base,
                  std::span<const doe::FactorRankSummary> enhanced);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH
