/**
 * @file
 * Before/after enhancement analysis (section 4.3).
 *
 * Run the PB ranking on the base processor and again with an
 * enhancement enabled, then compare each parameter's sum of ranks.
 * A parameter whose sum rises lost significance under the enhancement
 * (the enhancement relieved that bottleneck); a falling sum means
 * increased pressure. The paper's case study finds that instruction
 * precomputation most relieves the number of integer ALUs.
 */

#ifndef RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH
#define RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH

#include <span>
#include <string>
#include <vector>

#include "doe/ranking.hh"
#include "methodology/pb_experiment.hh"

namespace rigor::methodology
{

/** One parameter's before/after movement. */
struct RankShift
{
    std::string name;
    unsigned long sumBefore = 0;
    unsigned long sumAfter = 0;

    /** Positive = lost significance (sum went up). */
    long delta() const
    {
        return static_cast<long>(sumAfter) -
               static_cast<long>(sumBefore);
    }
};

/** Full comparison of two rank tables. */
struct EnhancementComparison
{
    /** One entry per factor, sorted by descending |delta|. */
    std::vector<RankShift> shifts;

    /** Shift record for a named factor; throws if absent. */
    const RankShift &shift(const std::string &name) const;

    /**
     * Among the @p top_k most significant base factors, the one whose
     * sum of ranks increased the most (the paper's headline metric:
     * which bottleneck the enhancement relieved).
     */
    RankShift biggestReliefAmongTop(
        std::span<const doe::FactorRankSummary> base_summaries,
        std::size_t top_k) const;

    /** Fixed-width text rendering. */
    std::string toString(std::size_t max_rows = 0) const;
};

/**
 * Compare base and enhanced rank summaries. The factor sets must
 * match exactly; duplicate factor names in the enhanced table are
 * rejected (a silent first-wins match would corrupt the shifts).
 */
EnhancementComparison
compareRankTables(std::span<const doe::FactorRankSummary> base,
                  std::span<const doe::FactorRankSummary> enhanced);

/** Everything the paired base/enhanced experiment produced. */
struct EnhancementExperimentResult
{
    /** PB experiment without the enhancement. */
    PbExperimentResult base;
    /** PB experiment with the enhancement hook enabled. */
    PbExperimentResult enhanced;
    /** Sum-of-ranks shifts between the two (section 4.3). */
    EnhancementComparison comparison;
    /** Engine counters across both runs (cache hits show how much of
     *  the pair was shared). */
    exec::ProgressSnapshot execution;
    /**
     * Union of the benchmarks dropped by fault degradation in either
     * leg. A sum-of-ranks comparison is only meaningful over a
     * common benchmark population, so when the legs dropped
     * different sets, both are re-filtered to the intersection of
     * survivors before comparing (warning
     * campaign.paired-drop-mismatch in `validity`).
     */
    std::vector<std::string> droppedBenchmarks;
    /** Paired-campaign reconciliation diagnostics (per-leg trails
     *  live in base.validity / enhanced.validity). */
    check::DiagnosticSink validity;
};

/**
 * Run the section 4.3 before/after analysis: the PB experiment on the
 * base machine and again with @p hook_factory enabled, both through
 * one shared execution engine, then compare the rank tables.
 *
 * @param workloads the workload profiles to simulate
 * @param options experiment knobs; hookFactory/hookId are ignored
 *        (they describe the enhanced leg, passed separately). When
 *        options.campaign.engine is set, its cache makes any
 *        previously simulated leg (e.g. an earlier base run) free.
 * @param hook_factory builds the enhancement hook per run
 * @param hook_id stable cache identity of the enhancement (empty
 *        disables caching of the enhanced leg)
 */
EnhancementExperimentResult
runEnhancementExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const PbExperimentOptions &options,
    const HookFactory &hook_factory, const std::string &hook_id);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_ENHANCEMENT_ANALYSIS_HH
