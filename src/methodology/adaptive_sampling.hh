/**
 * @file
 * Adaptive sampled PB screening: refine only the ambiguous cells.
 *
 * A sampled PB screen trades detailed-simulation work for a per-run
 * confidence interval on every response. That interval propagates
 * into each factor effect (the effect is a signed sum of responses,
 * so its uncertainty is the root-sum-square of the per-run CI
 * half-widths). When a top-ranked factor's |effect| falls inside its
 * own propagated error band for some benchmark, the sampled ranking
 * is statistically ambiguous there — the cheap screen cannot tell
 * that factor's significance apart from noise.
 *
 * runAdaptivePbExperiment runs the sampled screen once, finds the
 * (benchmark, top-K factor) pairs whose effect is ambiguous given the
 * per-run CIs, and re-runs *only the implicated benchmarks* with a
 * lengthened sampling schedule (halved fast-forward interval, i.e.
 * more measured units per stream), splicing the refined responses
 * back and re-aggregating the rank table — repeating until the top-K
 * ranking is unambiguous or the round budget is exhausted. Untroubled
 * benchmarks never pay for the refinement.
 */

#ifndef RIGOR_METHODOLOGY_ADAPTIVE_SAMPLING_HH
#define RIGOR_METHODOLOGY_ADAPTIVE_SAMPLING_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "methodology/pb_experiment.hh"
#include "sample/sampling.hh"

namespace rigor::methodology
{

/** Knobs of the adaptive refinement loop. */
struct AdaptiveSamplingOptions
{
    /**
     * The underlying experiment; campaign.sampling.enabled must be
     * set (an adaptive loop over full runs has nothing to refine).
     */
    PbExperimentOptions base;
    /** Total rounds including the initial screen (>= 1). */
    unsigned maxRounds = 3;
    /** Ambiguity is judged only among the top-K aggregate factors —
     *  the part of the ranking the screen exists to get right. */
    std::size_t topFactors = 10;
    /**
     * Effect-ambiguity threshold multiplier: a factor is ambiguous
     * for a benchmark when |effect| <= ambiguityFactor * rss, where
     * rss is the root-sum-square of the benchmark's per-run CI
     * half-widths in cycles. 1.0 means "inside one propagated CI".
     */
    double ambiguityFactor = 1.0;
};

/** What one round of the loop did. */
struct AdaptiveRound
{
    /** Sampling schedule this round simulated with. */
    sample::SamplingOptions sampling;
    /** Benchmarks simulated this round (all of them in round 0). */
    std::vector<std::string> simulatedBenchmarks;
    /** Ambiguous (benchmark, top-K factor) pairs remaining *after*
     *  this round's responses were folded in. */
    std::size_t ambiguousPairs = 0;
};

/** Final spliced result plus the refinement audit trail. */
struct AdaptiveSamplingResult
{
    /** The experiment result after the last refinement round. */
    PbExperimentResult result;
    /** One entry per executed round, in order. */
    std::vector<AdaptiveRound> rounds;
    /** True when the loop ended with zero ambiguous pairs. */
    bool converged = false;
};

/**
 * Run the sampled screen and refine ambiguous cells as described
 * above. Throws std::invalid_argument when sampling is disabled or
 * maxRounds is zero.
 */
AdaptiveSamplingResult runAdaptivePbExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const AdaptiveSamplingOptions &options);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_ADAPTIVE_SAMPLING_HH
