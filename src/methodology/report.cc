#include "methodology/report.hh"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rigor::methodology
{

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        throw std::invalid_argument("TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        throw std::invalid_argument(
            "TextTable::addRow: cell count must match header count");
    _rows.push_back(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const std::vector<std::string> &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            // First column left-aligned (labels), the rest right.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };
    emit(_headers);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        if (c > 0)
            rule += "  ";
        rule += std::string(widths[c], '-');
    }
    os << rule << '\n';
    for (const std::vector<std::string> &row : _rows)
        emit(row);
    return os.str();
}

std::string
formatDouble(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

} // namespace rigor::methodology
