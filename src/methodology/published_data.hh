/**
 * @file
 * The paper's published result tables, transcribed as data.
 *
 * These serve two purposes: (1) unit tests validate the analysis
 * pipeline (distances, grouping, sum-of-ranks, rank-shift analysis)
 * exactly against the paper — e.g. the Table 10 distance matrix must
 * be reproducible from the Table 9 rank vectors; and (2) the bench
 * harnesses report measured-vs-published agreement (Spearman rank
 * correlation of the parameter orderings).
 */

#ifndef RIGOR_METHODOLOGY_PUBLISHED_DATA_HH
#define RIGOR_METHODOLOGY_PUBLISHED_DATA_HH

#include <string>
#include <vector>

#include "cluster/distance_matrix.hh"
#include "doe/ranking.hh"

namespace rigor::methodology
{

/** A published rank table (Table 9 or Table 12). */
struct PublishedRankTable
{
    /** Factor names, in the table's printed (sum-of-ranks) order. */
    std::vector<std::string> factors;
    /** Benchmark names, in column order. */
    std::vector<std::string> benchmarks;
    /** ranks[factor][benchmark]. */
    std::vector<std::vector<unsigned>> ranks;
    /** Printed sum-of-ranks column. */
    std::vector<unsigned long> sums;

    /** Rank vectors per benchmark: [benchmark][factor]. The factor
     *  axis follows this table's printed order. */
    std::vector<std::vector<double>> rankVectorsByBenchmark() const;

    /** As FactorRankSummary records (already sorted by sum). */
    std::vector<doe::FactorRankSummary> asSummaries() const;

    /** Row index of a factor name; throws if absent. */
    std::size_t factorIndex(const std::string &name) const;
};

/** Table 9: PB ranks for the base processor. */
const PublishedRankTable &publishedTable9();

/** Table 12: PB ranks with instruction precomputation. */
const PublishedRankTable &publishedTable12();

/** Table 10: distances between benchmark rank vectors. */
const cluster::DistanceMatrix &publishedTable10();

/** Table 11: the benchmark groups at threshold sqrt(4000). */
const std::vector<std::vector<std::string>> &publishedTable11Groups();

/** Benchmark names in the paper's column order. */
const std::vector<std::string> &publishedBenchmarkNames();

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_PUBLISHED_DATA_HH
