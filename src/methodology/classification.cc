#include "methodology/classification.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rigor::methodology
{

double
defaultSimilarityThreshold()
{
    return std::sqrt(kSimilarityThresholdSquared);
}

std::string
ClassificationResult::groupsToString() const
{
    std::ostringstream os;
    for (const std::vector<std::string> &group : groups) {
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << group[i];
        }
        os << '\n';
    }
    return os.str();
}

ClassificationResult
classifyBenchmarks(std::span<const std::string> names,
                   const std::vector<std::vector<double>> &rank_vectors,
                   double threshold)
{
    if (names.size() != rank_vectors.size() || names.empty())
        throw std::invalid_argument(
            "classifyBenchmarks: need one rank vector per benchmark");

    ClassificationResult result;
    result.benchmarks.assign(names.begin(), names.end());
    result.distances = cluster::DistanceMatrix::fromPoints(rank_vectors);
    result.threshold = threshold;

    const cluster::Groups index_groups =
        cluster::groupByThresholdComponents(result.distances, threshold);
    result.groups.reserve(index_groups.size());
    for (const std::vector<std::size_t> &group : index_groups) {
        std::vector<std::string> named;
        named.reserve(group.size());
        for (std::size_t idx : group)
            named.push_back(result.benchmarks[idx]);
        result.groups.push_back(std::move(named));
    }
    return result;
}

} // namespace rigor::methodology
