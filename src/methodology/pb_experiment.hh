/**
 * @file
 * The Plackett-Burman simulation experiment driver (Table 9 / 12).
 *
 * Runs every row of the (foldover) PB design — 88 configurations for
 * the 43-factor space — against every workload, computes each
 * factor's effect on total execution cycles per workload, ranks the
 * factors per workload, and aggregates the ranks across workloads,
 * exactly the procedure of the paper's section 4.1.
 */

#ifndef RIGOR_METHODOLOGY_PB_EXPERIMENT_HH
#define RIGOR_METHODOLOGY_PB_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "doe/design_matrix.hh"
#include "doe/ranking.hh"
#include "exec/campaign_options.hh"
#include "exec/engine.hh"
#include "sim/core.hh"
#include "trace/workload_profile.hh"

namespace rigor::methodology
{

/**
 * Creates an enhancement hook for one simulation run (called per run;
 * return nullptr for no enhancement). Must be thread-safe.
 */
using HookFactory = std::function<std::unique_ptr<sim::ExecutionHook>(
    const trace::WorkloadProfile &profile)>;

/** Knobs of one PB experiment. */
struct PbExperimentOptions
{
    /** Measured dynamic instructions per simulation run. */
    std::uint64_t instructionsPerRun = 200000;
    /**
     * Leading warm-up instructions per run (executed before the
     * measured window; excluded from the response). Zero disables.
     * At this repo's scaled-down run lengths, warm-up is what keeps
     * cold-start cache misses from swamping the steady-state effects
     * (the paper's billion-instruction runs amortized them away).
     */
    std::uint64_t warmupInstructions = 0;
    /**
     * Optional user-supplied base design (not owned; must outlive
     * the call). When set it replaces the generated X = 44 PB
     * design and must carry exactly one column per factor; foldover
     * is still applied when `campaign.foldover` is true. The
     * pre-flight analysis proves it is a balanced orthogonal ±1
     * design before anything is simulated.
     */
    const doe::DesignMatrix *design = nullptr;
    /** Optional enhancement (instruction precomputation etc.). */
    HookFactory hookFactory;
    /**
     * Stable cache identity of hookFactory's product (appended with
     * the workload name per run). Leave empty for an impure factory:
     * hooked runs are then never served from the run cache.
     */
    std::string hookId;
    /**
     * Campaign label written to the manifest's "campaign" record so
     * multi-experiment manifests (e.g. the paired enhancement legs)
     * stay distinguishable.
     */
    std::string experimentName = "pb_screen";
    /**
     * Shared execution knobs (threads, foldover, skipPreflight,
     * fault policy, journal, shared engine, degradation mode) and
     * the observability sinks — the same struct every experiment
     * driver embeds. See exec::CampaignOptions.
     */
    exec::CampaignOptions campaign;
};

/** Everything the experiment produced. */
struct PbExperimentResult
{
    /** The design actually simulated (foldover included if enabled). */
    doe::DesignMatrix design{1, 1};
    /** Workload names, row order of all per-benchmark vectors. */
    std::vector<std::string> benchmarks;
    /** Execution cycles: responses[bench][design row]. */
    std::vector<std::vector<double>> responses;
    /** PB effects: effects[bench][factor], 43 factors. */
    std::vector<std::vector<double>> effects;
    /** Per-benchmark significance ranks: ranks[bench][factor]. */
    std::vector<std::vector<unsigned>> ranks;
    /** Cross-benchmark aggregation, sorted ascending by rank sum. */
    std::vector<doe::FactorRankSummary> summaries;
    /**
     * Benchmarks removed whole by fault degradation
     * (DegradationMode::DropBenchmark); empty on a clean campaign.
     * Dropped benchmarks appear in none of the vectors above, so the
     * rank sums cover exactly `benchmarks`.
     */
    std::vector<std::string> droppedBenchmarks;
    /**
     * Degradation diagnostic trail (campaign.* rules): quarantined
     * cells, broken foldover pairs, dropped benchmarks. Empty when
     * every simulation completed.
     */
    check::DiagnosticSink validity;

    /**
     * Rank vectors in benchmark-major layout (one 43-element vector
     * per benchmark) for the classification step.
     */
    std::vector<std::vector<double>> rankVectors() const;

    /**
     * Remove benchmarks by name and recompute the cross-benchmark
     * aggregation (summaries) over the survivors. Removed names move
     * to droppedBenchmarks. Unknown names are ignored. Throws
     * std::invalid_argument when nothing would survive.
     */
    void dropBenchmarks(std::span<const std::string> names);
};

/**
 * Run the full experiment.
 *
 * @param workloads the workload profiles to simulate
 * @param options experiment knobs
 */
PbExperimentResult
runPbExperiment(std::span<const trace::WorkloadProfile> workloads,
                const PbExperimentOptions &options);

/**
 * Simulate one workload under one processor configuration and return
 * the execution cycles (the PB response variable).
 */
double simulateOnce(const trace::WorkloadProfile &profile,
                    const sim::ProcessorConfig &config,
                    std::uint64_t instructions,
                    sim::ExecutionHook *hook = nullptr,
                    std::uint64_t warmup_instructions = 0);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_PB_EXPERIMENT_HH
