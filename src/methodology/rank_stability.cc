#include "methodology/rank_stability.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "check/campaign_check.hh"
#include "doe/ranking.hh"
#include "methodology/campaign_instrumentation.hh"
#include "methodology/parameter_space.hh"
#include "obs/json.hh"

namespace rigor::methodology
{

namespace
{

/** Position (1-based) of every factor in a sorted rank table. */
std::unordered_map<std::string, std::size_t>
positionsByName(std::span<const doe::FactorRankSummary> summaries)
{
    std::unordered_map<std::string, std::size_t> positions;
    positions.reserve(summaries.size());
    for (std::size_t k = 0; k < summaries.size(); ++k)
        positions.emplace(summaries[k].name, k + 1);
    return positions;
}

/** Percentile CI of an unsorted bootstrap sample (consumes it). */
stats::BootstrapInterval
percentileInterval(std::vector<double> &samples, double estimate,
                   double confidence)
{
    std::sort(samples.begin(), samples.end());
    const double alpha = 1.0 - confidence;
    stats::BootstrapInterval interval;
    interval.estimate = estimate;
    interval.lower = stats::quantileSorted(samples, alpha / 2.0);
    interval.upper = stats::quantileSorted(samples, 1.0 - alpha / 2.0);
    return interval;
}

std::string
formatInterval(const stats::BootstrapInterval &interval)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "[%5.1f, %5.1f]",
                  interval.lower, interval.upper);
    return buffer;
}

void
appendMatrixJson(std::string &out, const cluster::DistanceMatrix &m)
{
    out += '[';
    for (std::size_t i = 0; i < m.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += '[';
        for (std::size_t j = 0; j < m.size(); ++j) {
            if (j != 0)
                out += ", ";
            out += obs::jsonNumber(m.at(i, j));
        }
        out += ']';
    }
    out += ']';
}

} // namespace

check::RankStabilityFindings
RankStabilityReport::findings() const
{
    check::RankStabilityFindings out;
    out.factorNames.reserve(factors.size());
    out.rankLower.reserve(factors.size());
    out.rankUpper.reserve(factors.size());
    for (const FactorStability &factor : factors) {
        out.factorNames.push_back(factor.name);
        out.rankLower.push_back(factor.rank.lower);
        out.rankUpper.push_back(factor.rank.upper);
    }
    out.flipProbability = flipProbability;
    out.replicates = replicates;
    out.sampled = sampled;
    out.samplingCiComposed = samplingCiComposed;
    return out;
}

std::string
RankStabilityReport::toString() const
{
    std::string out;
    out += "Rank stability (" + std::to_string(replicates) +
           " replicates, " + std::to_string(bootstrap.iterations) +
           " bootstrap iterations, seed " +
           std::to_string(bootstrap.seed) + ")\n";
    out += "rank  factor                        rank CI         "
           "sum-of-ranks CI\n";
    for (const FactorStability &factor : factors) {
        char line[128];
        std::snprintf(line, sizeof(line), "%4u  %-28s %s  %s\n",
                      factor.pointRank, factor.name.c_str(),
                      formatInterval(factor.rank).c_str(),
                      formatInterval(factor.sumOfRanks).c_str());
        out += line;
    }
    const std::size_t top = flipProbability.size();
    double max_flip = 0.0;
    std::size_t max_i = 0;
    std::size_t max_j = 0;
    for (std::size_t i = 0; i < top; ++i) {
        for (std::size_t j = i + 1; j < top; ++j) {
            if (flipProbability[i][j] > max_flip) {
                max_flip = flipProbability[i][j];
                max_i = i;
                max_j = j;
            }
        }
    }
    if (top != 0) {
        char line[160];
        std::snprintf(
            line, sizeof(line),
            "max top-%zu flip probability: %.3f ('%s' vs '%s')\n",
            top, max_flip, factors[max_i].name.c_str(),
            factors[max_j].name.c_str());
        out += line;
    }
    if (sampled) {
        out += samplingCiComposed
                   ? "sampling CIs composed (root-sum-square) with "
                     "replication spread\n"
                   : "WARNING: sampling CIs not composed with "
                     "replication spread\n";
    }
    return out;
}

std::string
RankStabilityReport::toJson() const
{
    std::string out;
    out += "{\n  \"replicates\": ";
    out += std::to_string(replicates);
    out += ",\n  \"bootstrapIterations\": ";
    out += std::to_string(bootstrap.iterations);
    out += ",\n  \"bootstrapSeed\": ";
    out += std::to_string(bootstrap.seed);
    out += ",\n  \"confidence\": ";
    out += obs::jsonNumber(bootstrap.confidence);
    out += ",\n  \"sampled\": ";
    out += sampled ? "true" : "false";
    out += ",\n  \"samplingCiComposed\": ";
    out += samplingCiComposed ? "true" : "false";
    out += ",\n  \"benchmarks\": [";
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        if (b != 0)
            out += ", ";
        obs::appendJsonString(out, benchmarks[b]);
    }
    out += "],\n  \"factors\": [";
    for (std::size_t f = 0; f < factors.size(); ++f) {
        const FactorStability &factor = factors[f];
        out += f == 0 ? "\n" : ",\n";
        out += "    {\"name\": ";
        obs::appendJsonString(out, factor.name);
        out += ", \"rank\": " + std::to_string(factor.pointRank);
        out += ", \"rankLower\": " + obs::jsonNumber(factor.rank.lower);
        out += ", \"rankUpper\": " + obs::jsonNumber(factor.rank.upper);
        out += ", \"sumOfRanks\": " +
               obs::jsonNumber(factor.sumOfRanks.estimate);
        out += ", \"sumLower\": " +
               obs::jsonNumber(factor.sumOfRanks.lower);
        out += ", \"sumUpper\": " +
               obs::jsonNumber(factor.sumOfRanks.upper);
        out += '}';
    }
    out += "\n  ],\n  \"flipProbability\": [";
    for (std::size_t i = 0; i < flipProbability.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    [";
        for (std::size_t j = 0; j < flipProbability[i].size(); ++j) {
            if (j != 0)
                out += ", ";
            out += obs::jsonNumber(flipProbability[i][j]);
        }
        out += ']';
    }
    out += "\n  ],\n  \"distance\": {\"mean\": ";
    appendMatrixJson(out, distance);
    out += ", \"lower\": ";
    appendMatrixJson(out, distanceLower);
    out += ", \"upper\": ";
    appendMatrixJson(out, distanceUpper);
    out += "},\n  \"composed\": [";
    for (std::size_t b = 0; b < composed.size(); ++b) {
        const ComposedUncertainty &c = composed[b];
        out += b == 0 ? "\n" : ",\n";
        out += "    {\"benchmark\": ";
        obs::appendJsonString(out, c.benchmark);
        out += ", \"replicationHalfWidth\": " +
               obs::jsonNumber(c.replicationHalfWidth);
        out += ", \"samplingHalfWidth\": " +
               obs::jsonNumber(c.samplingHalfWidth);
        out += ", \"composedHalfWidth\": " +
               obs::jsonNumber(c.composedHalfWidth);
        out += '}';
    }
    out += composed.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

RankStabilityReport
analyzeRankStability(const std::vector<std::vector<std::vector<double>>>
                         &effects_by_replicate,
                     std::span<const std::string> benchmarks,
                     std::span<const std::string> factor_names,
                     const stats::BootstrapOptions &bootstrap,
                     unsigned top_factors)
{
    bootstrap.validate();
    const std::size_t num_reps = effects_by_replicate.size();
    if (num_reps == 0)
        throw std::invalid_argument(
            "analyzeRankStability: no replicates");
    const std::size_t num_benches = benchmarks.size();
    const std::size_t num_factors = factor_names.size();
    for (const auto &replicate : effects_by_replicate) {
        if (replicate.size() != num_benches)
            throw std::invalid_argument(
                "analyzeRankStability: replicate benchmark count "
                "mismatch");
        for (const std::vector<double> &bench : replicate)
            if (bench.size() != num_factors)
                throw std::invalid_argument(
                    "analyzeRankStability: replicate factor count "
                    "mismatch");
    }

    RankStabilityReport report;
    report.replicates = static_cast<unsigned>(num_reps);
    report.bootstrap = bootstrap;
    report.benchmarks.assign(benchmarks.begin(), benchmarks.end());

    // Point estimate: mean effects across replicates -> ranks ->
    // aggregation. Everything downstream (the reported order, the
    // flip matrix's pair universe) hangs off this table.
    std::vector<std::vector<double>> mean_effects(
        num_benches, std::vector<double>(num_factors, 0.0));
    for (const auto &replicate : effects_by_replicate)
        for (std::size_t b = 0; b < num_benches; ++b)
            for (std::size_t f = 0; f < num_factors; ++f)
                mean_effects[b][f] += replicate[b][f];
    for (std::size_t b = 0; b < num_benches; ++b)
        for (std::size_t f = 0; f < num_factors; ++f)
            mean_effects[b][f] /= static_cast<double>(num_reps);

    const std::vector<std::string> names(factor_names.begin(),
                                         factor_names.end());
    const std::vector<doe::FactorRankSummary> point_summaries =
        doe::aggregateRanks(names, mean_effects);
    const std::unordered_map<std::string, std::size_t>
        point_positions = positionsByName(point_summaries);

    std::vector<std::vector<double>> point_rank_vectors;
    point_rank_vectors.reserve(num_benches);
    for (const std::vector<double> &effects : mean_effects) {
        const std::vector<unsigned> ranks =
            doe::rankByMagnitude(effects);
        point_rank_vectors.emplace_back(ranks.begin(), ranks.end());
    }
    report.distance =
        cluster::DistanceMatrix::fromPoints(point_rank_vectors);

    const std::size_t top = std::min<std::size_t>(
        top_factors, point_summaries.size());

    // Joint bootstrap: one replicate-resample per iteration drives
    // *all* statistics (rank positions, sums, flips, distances), so
    // their intervals are mutually consistent. Iteration b draws its
    // indices from a stream seeded with mixSeed(seed, b) — the
    // resample sequence is a pure function of (seed, b), independent
    // of threading anywhere else in the campaign.
    const std::uint64_t iters = bootstrap.iterations;
    std::vector<std::vector<double>> position_samples(
        num_factors,
        std::vector<double>(static_cast<std::size_t>(iters), 0.0));
    std::vector<std::vector<double>> sum_samples(
        num_factors,
        std::vector<double>(static_cast<std::size_t>(iters), 0.0));
    std::vector<std::vector<std::uint64_t>> flip_counts(
        top, std::vector<std::uint64_t>(top, 0));
    const std::size_t num_pairs =
        num_benches * (num_benches - 1) / 2;
    std::vector<std::vector<double>> distance_samples(
        num_pairs,
        std::vector<double>(static_cast<std::size_t>(iters), 0.0));

    std::unordered_map<std::string, std::size_t> factor_index;
    factor_index.reserve(num_factors);
    for (std::size_t f = 0; f < num_factors; ++f)
        factor_index.emplace(names[f], f);

    std::vector<std::size_t> draw(num_reps, 0);
    std::vector<std::vector<double>> resampled_effects(
        num_benches, std::vector<double>(num_factors, 0.0));
    for (std::uint64_t it = 0; it < iters; ++it) {
        stats::BootstrapRng rng(stats::mixSeed(bootstrap.seed, it));
        stats::resampleIndices(rng, num_reps, draw);

        for (std::size_t b = 0; b < num_benches; ++b)
            std::fill(resampled_effects[b].begin(),
                      resampled_effects[b].end(), 0.0);
        for (const std::size_t r : draw)
            for (std::size_t b = 0; b < num_benches; ++b)
                for (std::size_t f = 0; f < num_factors; ++f)
                    resampled_effects[b][f] +=
                        effects_by_replicate[r][b][f];
        for (std::size_t b = 0; b < num_benches; ++b)
            for (std::size_t f = 0; f < num_factors; ++f)
                resampled_effects[b][f] /=
                    static_cast<double>(num_reps);

        const std::vector<doe::FactorRankSummary> summaries =
            doe::aggregateRanks(names, resampled_effects);
        std::vector<std::size_t> position_of(num_factors, 0);
        for (std::size_t k = 0; k < summaries.size(); ++k) {
            const auto found = factor_index.find(summaries[k].name);
            if (found == factor_index.end())
                continue;
            position_of[found->second] = k + 1;
            position_samples[found->second]
                            [static_cast<std::size_t>(it)] =
                static_cast<double>(k + 1);
            sum_samples[found->second]
                       [static_cast<std::size_t>(it)] =
                static_cast<double>(summaries[k].sumOfRanks);
        }

        // Flip counting over the reported top-K order: pair (i, j)
        // flipped when the resample puts the reported-worse factor
        // ahead.
        for (std::size_t i = 0; i < top; ++i) {
            const std::size_t fi =
                factor_index.at(point_summaries[i].name);
            for (std::size_t j = i + 1; j < top; ++j) {
                const std::size_t fj =
                    factor_index.at(point_summaries[j].name);
                if (position_of[fi] > position_of[fj])
                    ++flip_counts[i][j];
            }
        }

        std::vector<std::vector<double>> rank_vectors;
        rank_vectors.reserve(num_benches);
        for (const std::vector<double> &effects : resampled_effects) {
            const std::vector<unsigned> ranks =
                doe::rankByMagnitude(effects);
            rank_vectors.emplace_back(ranks.begin(), ranks.end());
        }
        const cluster::DistanceMatrix distances =
            cluster::DistanceMatrix::fromPoints(rank_vectors);
        std::size_t pair = 0;
        for (std::size_t i = 0; i < num_benches; ++i)
            for (std::size_t j = i + 1; j < num_benches; ++j)
                distance_samples[pair++]
                                [static_cast<std::size_t>(it)] =
                    distances.at(i, j);
    }

    // Percentile intervals from the joint samples, reported in point
    // order (best first).
    report.factors.reserve(point_summaries.size());
    for (std::size_t k = 0; k < point_summaries.size(); ++k) {
        const doe::FactorRankSummary &summary = point_summaries[k];
        const std::size_t f = factor_index.at(summary.name);
        FactorStability factor;
        factor.name = summary.name;
        factor.pointRank = static_cast<unsigned>(k + 1);
        factor.rank = percentileInterval(
            position_samples[f], static_cast<double>(k + 1),
            bootstrap.confidence);
        factor.sumOfRanks = percentileInterval(
            sum_samples[f], static_cast<double>(summary.sumOfRanks),
            bootstrap.confidence);
        report.factors.push_back(std::move(factor));
    }

    report.flipProbability.assign(top, std::vector<double>(top, 0.0));
    for (std::size_t i = 0; i < top; ++i) {
        for (std::size_t j = i + 1; j < top; ++j) {
            const double p = static_cast<double>(flip_counts[i][j]) /
                             static_cast<double>(iters);
            report.flipProbability[i][j] = p;
            report.flipProbability[j][i] = p;
        }
    }

    report.distanceLower = cluster::DistanceMatrix(num_benches);
    report.distanceUpper = cluster::DistanceMatrix(num_benches);
    std::size_t pair = 0;
    for (std::size_t i = 0; i < num_benches; ++i) {
        for (std::size_t j = i + 1; j < num_benches; ++j) {
            const stats::BootstrapInterval interval =
                percentileInterval(distance_samples[pair++],
                                   report.distance.at(i, j),
                                   bootstrap.confidence);
            report.distanceLower.set(i, j, interval.lower);
            report.distanceUpper.set(i, j, interval.upper);
        }
    }
    return report;
}

namespace
{

/** One replicate's captured per-run sampling half-widths, reduced to
 *  a per-benchmark RSS through the effect estimate (cycles). */
using SamplingRssByBench = std::unordered_map<std::string, double>;

/**
 * Run one replicate's screen, capturing sampling CI half-widths. The
 * effect of one benchmark is sum(sign_r * response_r); independent
 * per-run errors h_r propagate as sqrt(sum h_r^2) regardless of the
 * signs (the same composition the adaptive driver uses).
 */
PbExperimentResult
runReplicate(std::span<const trace::WorkloadProfile> suite,
             const PbExperimentOptions &options,
             exec::SimulationEngine &engine, SamplingRssByBench &rss)
{
    std::mutex mutex;
    std::unordered_map<std::size_t, double> by_job;
    detail::ObserverScope capture(
        engine, [&mutex, &by_job](const exec::JobEvent &event) {
            if (!event.ok || !event.sampled)
                return;
            const double cycles_half =
                event.sample.ciHalfWidth *
                static_cast<double>(event.sample.streamInstructions);
            const std::scoped_lock lock(mutex);
            by_job[event.jobIndex] = cycles_half;
        });

    PbExperimentResult result = runPbExperiment(suite, options);

    const std::size_t num_runs = result.design.numRows();
    std::unordered_map<std::size_t, double> sum_sq;
    for (const auto &[job_index, cycles_half] : by_job)
        sum_sq[job_index / num_runs] += cycles_half * cycles_half;
    for (const auto &[bench, total] : sum_sq)
        if (bench < suite.size())
            rss[suite[bench].name] = std::sqrt(total);
    return result;
}

} // namespace

ReplicatedPbResult
runReplicatedPbExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const RankStabilityOptions &options)
{
    const stats::ReplicationOptions &replication =
        options.base.campaign.replication;
    if (!replication.enabled())
        throw std::invalid_argument(
            "runReplicatedPbExperiment: campaign.replication."
            "replicates must be >= 1");
    if (workloads.empty())
        throw std::invalid_argument(
            "runReplicatedPbExperiment: no workloads");

    const unsigned num_reps = replication.replicates;
    PbExperimentOptions opts = options.base;
    exec::SimulationEngine local_engine(
        exec::EngineOptions{opts.campaign.threads, true});
    exec::SimulationEngine &engine = opts.campaign.engine
                                         ? *opts.campaign.engine
                                         : local_engine;
    opts.campaign.engine = &engine;

    // Replicate r renames every profile ("gzip" -> "gzip#r1"): the
    // trace generator is seeded from the name (FNV-1a), so the copy
    // is an independent workload realization, and the run-cache /
    // journal key embeds the name, so replicates never collide with
    // the base runs. Replicate 0 keeps the original names and is
    // byte-for-byte the historical single campaign.
    const std::string base_name = opts.experimentName;
    std::vector<PbExperimentResult> runs;
    std::vector<SamplingRssByBench> rss_by_replicate(num_reps);
    std::vector<std::unordered_map<std::string, std::string>>
        base_of_suffixed(num_reps);
    runs.reserve(num_reps);
    for (unsigned r = 0; r < num_reps; ++r) {
        std::vector<trace::WorkloadProfile> suite(workloads.begin(),
                                                  workloads.end());
        if (r > 0)
            for (std::size_t w = 0; w < suite.size(); ++w)
                suite[w].name += "#r" + std::to_string(r);
        for (std::size_t w = 0; w < suite.size(); ++w)
            base_of_suffixed[r].emplace(suite[w].name,
                                        workloads[w].name);
        opts.experimentName =
            r == 0 ? base_name
                   : base_name + "/replicate-" + std::to_string(r);
        runs.push_back(runReplicate(suite, opts, engine,
                                    rss_by_replicate[r]));
    }
    opts.experimentName = base_name;

    // Degradation may have dropped different benchmarks in different
    // replicates; the stability analysis needs a rectangular tensor,
    // so restrict every replicate to the survivor intersection.
    std::set<std::string> survivors;
    for (const std::string &suffixed : runs[0].benchmarks)
        survivors.insert(base_of_suffixed[0].at(suffixed));
    for (unsigned r = 1; r < num_reps; ++r) {
        std::set<std::string> present;
        for (const std::string &suffixed : runs[r].benchmarks)
            present.insert(base_of_suffixed[r].at(suffixed));
        std::set<std::string> keep;
        std::set_intersection(survivors.begin(), survivors.end(),
                              present.begin(), present.end(),
                              std::inserter(keep, keep.begin()));
        survivors.swap(keep);
    }
    if (survivors.empty())
        throw std::runtime_error(
            "runReplicatedPbExperiment: no benchmark survived every "
            "replicate");

    ReplicatedPbResult out;
    out.pooled = std::move(runs[0]);
    {
        std::vector<std::string> drop;
        for (const std::string &name : out.pooled.benchmarks)
            if (!survivors.count(name))
                drop.push_back(name);
        if (!drop.empty())
            out.pooled.dropBenchmarks(drop);
    }
    const std::vector<std::string> &canonical =
        out.pooled.benchmarks;
    const std::size_t num_benches = canonical.size();

    // [replicate][benchmark][factor], benchmark order = canonical.
    std::vector<std::vector<std::vector<double>>> effects_tensor(
        num_reps);
    effects_tensor[0] = out.pooled.effects;
    for (unsigned r = 1; r < num_reps; ++r) {
        std::unordered_map<std::string, std::size_t> index_of;
        for (std::size_t b = 0; b < runs[r].benchmarks.size(); ++b)
            index_of.emplace(
                base_of_suffixed[r].at(runs[r].benchmarks[b]), b);
        effects_tensor[r].reserve(num_benches);
        for (const std::string &name : canonical)
            effects_tensor[r].push_back(
                runs[r].effects[index_of.at(name)]);
    }

    const std::vector<std::string> names = factorNames();
    out.stability = analyzeRankStability(
        effects_tensor, canonical, names, replication.bootstrap,
        options.check.topFactors);

    // Pool the replicates: the reported experiment's effects are the
    // per-factor means, with ranks and the aggregate table recomputed
    // from them. Responses stay replicate 0's (a concrete, cacheable
    // realization rather than a synthetic average).
    for (std::size_t b = 0; b < num_benches; ++b) {
        for (std::size_t f = 0; f < names.size(); ++f) {
            double sum = 0.0;
            for (unsigned r = 0; r < num_reps; ++r)
                sum += effects_tensor[r][b][f];
            out.pooled.effects[b][f] =
                sum / static_cast<double>(num_reps);
        }
        out.pooled.ranks[b] =
            doe::rankByMagnitude(out.pooled.effects[b]);
    }
    out.pooled.summaries =
        doe::aggregateRanks(names, out.pooled.effects);

    // Compose the PR-6 sampling uncertainty with the replication
    // spread: per benchmark, the replication half-width is the BCa CI
    // on the top factor's mean effect across replicates, the sampling
    // half-width is the per-replicate RSS averaged in quadrature, and
    // the reported uncertainty is their root-sum-square.
    if (opts.campaign.sampling.enabled) {
        out.stability.sampled = true;
        const std::string &top_name =
            out.pooled.summaries.front().name;
        const auto top_it =
            std::find(names.begin(), names.end(), top_name);
        const std::size_t top_f = static_cast<std::size_t>(
            top_it - names.begin());
        out.stability.composed.reserve(num_benches);
        for (std::size_t b = 0; b < num_benches; ++b) {
            ComposedUncertainty c;
            c.benchmark = canonical[b];
            std::vector<double> effect_sample;
            effect_sample.reserve(num_reps);
            for (unsigned r = 0; r < num_reps; ++r)
                effect_sample.push_back(effects_tensor[r][b][top_f]);
            c.replicationHalfWidth =
                stats::bootstrapMeanCi(effect_sample,
                                       replication.bootstrap)
                    .halfWidth();
            double sampling_sq = 0.0;
            for (unsigned r = 0; r < num_reps; ++r) {
                std::string suffixed = canonical[b];
                if (r > 0)
                    suffixed += "#r" + std::to_string(r);
                const auto found =
                    rss_by_replicate[r].find(suffixed);
                if (found != rss_by_replicate[r].end())
                    sampling_sq += found->second * found->second;
            }
            c.samplingHalfWidth =
                std::sqrt(sampling_sq) /
                static_cast<double>(num_reps);
            c.composedHalfWidth = std::sqrt(
                c.replicationHalfWidth * c.replicationHalfWidth +
                c.samplingHalfWidth * c.samplingHalfWidth);
            out.stability.composed.push_back(std::move(c));
        }
        out.stability.samplingCiComposed = true;
    }

    // The stability rules run as a mandatory post-flight: the same
    // skipPreflight escape hatch applies, and either way the
    // diagnostics ride along in the result's validity sink.
    check::DiagnosticSink sink;
    check::checkRankStability(out.stability.findings(), options.check,
                              sink);
    for (const check::Diagnostic &d : sink.diagnostics())
        out.pooled.validity.report(d);
    if (!sink.passed() && !opts.campaign.skipPreflight)
        throw check::CampaignError("runReplicatedPbExperiment",
                                   std::move(sink));

    if (opts.campaign.manifest) {
        obs::StabilityRecord record;
        record.replicates = num_reps;
        record.bootstrapIterations =
            replication.bootstrap.iterations;
        record.bootstrapSeed = replication.bootstrap.seed;
        record.confidence = replication.bootstrap.confidence;
        record.sampled = out.stability.sampled;
        record.samplingCiComposed =
            out.stability.samplingCiComposed;
        const std::size_t top = out.stability.flipProbability.size();
        for (std::size_t k = 0;
             k < std::min(top, out.stability.factors.size()); ++k) {
            const FactorStability &factor = out.stability.factors[k];
            obs::StabilityFactor entry;
            entry.name = factor.name;
            entry.rank = factor.pointRank;
            entry.rankLower = factor.rank.lower;
            entry.rankUpper = factor.rank.upper;
            record.factors.push_back(std::move(entry));
        }
        for (std::size_t i = 0; i < top; ++i)
            for (std::size_t j = i + 1; j < top; ++j)
                record.maxFlipProbability = std::max(
                    record.maxFlipProbability,
                    out.stability.flipProbability[i][j]);
        record.reportDigest = obs::digestHex(
            obs::fnv1a(out.stability.toJson()));
        opts.campaign.manifest->addStability(record);
    }
    return out;
}

} // namespace rigor::methodology
