/**
 * @file
 * CSV serialization of experiment results.
 *
 * The paper's analyses continue in external tools (R, spreadsheets);
 * these helpers emit the PB experiment's raw responses, the effect
 * estimates, the rank table, and distance matrices in plain CSV with
 * RFC-4180 quoting.
 */

#ifndef RIGOR_METHODOLOGY_CSV_EXPORT_HH
#define RIGOR_METHODOLOGY_CSV_EXPORT_HH

#include <string>

#include "cluster/distance_matrix.hh"
#include "methodology/pb_experiment.hh"

namespace rigor::methodology
{

/** Quote a CSV field when it contains separators, quotes, or EOLs. */
std::string csvEscape(const std::string &field);

/**
 * Raw responses: one row per design run, columns = run index, each
 * factor's +1/-1 level, then one cycles column per benchmark.
 */
std::string responsesToCsv(const PbExperimentResult &result);

/**
 * Effects: one row per factor, columns = factor name then one signed
 * effect per benchmark.
 */
std::string effectsToCsv(const PbExperimentResult &result);

/**
 * Rank table (Table 9 layout): one row per factor sorted by rank sum,
 * columns = factor name, per-benchmark rank, sum.
 */
std::string rankTableToCsv(const PbExperimentResult &result);

/** Distance matrix with a label header row/column. */
std::string distanceMatrixToCsv(
    const cluster::DistanceMatrix &distances,
    const std::vector<std::string> &labels);

/** Write a string to a file; throws std::runtime_error on failure. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_CSV_EXPORT_HH
