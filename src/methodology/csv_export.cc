#include "methodology/csv_export.hh"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "methodology/parameter_space.hh"

namespace rigor::methodology
{

namespace
{

/**
 * Round-trip-exact double formatting. The default ostream precision
 * (6 significant digits) silently corrupts cycle responses above
 * ~10^6 when the CSV is read back for effect computations; shortest
 * round-trip formatting (std::to_chars) guarantees the parsed value
 * is bit-identical — the same guarantee as printing max_digits10
 * digits — without padding small values with noise digits.
 */
std::string
formatDouble(double value)
{
    char buffer[32];
    const std::to_chars_result res =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (res.ec != std::errc{})
        throw std::runtime_error(
            "formatDouble: value does not fit the buffer");
    return std::string(buffer, res.ptr);
}

} // namespace

std::string
csvEscape(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
responsesToCsv(const PbExperimentResult &result)
{
    std::ostringstream os;
    os << "run";
    const std::vector<std::string> names = factorNames();
    for (const std::string &name : names)
        os << ',' << csvEscape(name);
    for (const std::string &bench : result.benchmarks)
        os << ',' << csvEscape(bench + " cycles");
    os << '\n';

    for (std::size_t r = 0; r < result.design.numRows(); ++r) {
        os << r;
        for (std::size_t c = 0; c < names.size(); ++c)
            os << ',' << result.design.sign(r, c);
        for (std::size_t b = 0; b < result.benchmarks.size(); ++b)
            os << ',' << formatDouble(result.responses[b][r]);
        os << '\n';
    }
    return os.str();
}

std::string
effectsToCsv(const PbExperimentResult &result)
{
    std::ostringstream os;
    os << "factor";
    for (const std::string &bench : result.benchmarks)
        os << ',' << csvEscape(bench);
    os << '\n';

    const std::vector<std::string> names = factorNames();
    for (std::size_t f = 0; f < names.size(); ++f) {
        os << csvEscape(names[f]);
        for (std::size_t b = 0; b < result.benchmarks.size(); ++b)
            os << ',' << formatDouble(result.effects[b][f]);
        os << '\n';
    }
    return os.str();
}

std::string
rankTableToCsv(const PbExperimentResult &result)
{
    std::ostringstream os;
    os << "factor";
    for (const std::string &bench : result.benchmarks)
        os << ',' << csvEscape(bench);
    os << ",sum\n";
    for (const doe::FactorRankSummary &s : result.summaries) {
        os << csvEscape(s.name);
        for (unsigned rank : s.ranks)
            os << ',' << rank;
        os << ',' << s.sumOfRanks << '\n';
    }
    return os.str();
}

std::string
distanceMatrixToCsv(const cluster::DistanceMatrix &distances,
                    const std::vector<std::string> &labels)
{
    if (labels.size() != distances.size())
        throw std::invalid_argument(
            "distanceMatrixToCsv: need one label per item");
    std::ostringstream os;
    for (const std::string &label : labels)
        os << ',' << csvEscape(label);
    os << '\n';
    for (std::size_t i = 0; i < distances.size(); ++i) {
        os << csvEscape(labels[i]);
        for (std::size_t j = 0; j < distances.size(); ++j)
            os << ',' << formatDouble(distances.at(i, j));
        os << '\n';
    }
    return os.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        throw std::runtime_error("writeFile: cannot open " + path);
    const std::size_t written =
        std::fwrite(contents.data(), 1, contents.size(), file);
    std::fclose(file);
    if (written != contents.size())
        throw std::runtime_error("writeFile: short write to " + path);
}

} // namespace rigor::methodology
