/**
 * @file
 * The paper's recommended end-to-end workflow (section 4.1):
 *
 *  1. Determine the critical processor parameters with a Plackett-
 *     Burman design (choose low/high values; run and analyze).
 *  2. Choose reasonable values for the non-critical parameters.
 *  3. Perform a sensitivity analysis over the critical parameters
 *     with the ANOVA technique (full factorial).
 *  4. Choose final values for the critical parameters from the
 *     sensitivity results.
 *
 * This module packages those four steps behind one call: it screens
 * with the 88-run PB experiment, picks the critical set at the
 * largest sum-of-ranks gap, runs a full 2^k factorial over the
 * critical parameters around an otherwise typical machine, and
 * reports per-parameter directions plus the interaction structure.
 */

#ifndef RIGOR_METHODOLOGY_WORKFLOW_HH
#define RIGOR_METHODOLOGY_WORKFLOW_HH

#include <span>
#include <string>
#include <vector>

#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "stats/anova.hh"

namespace rigor::methodology
{

/** Knobs of the full workflow. */
struct WorkflowOptions
{
    /** Measured instructions per simulation run. */
    std::uint64_t instructionsPerRun = 100000;
    /** Warm-up instructions per run. */
    std::uint64_t warmupInstructions = 100000;
    /**
     * Cap on the critical-parameter count carried into the ANOVA
     * step; the 2^k factorial cost bounds this. The actual set may
     * be smaller when the sum-of-ranks gap comes earlier.
     */
    std::size_t maxCriticalParameters = 4;
    /**
     * Attempt executor override for the workflow's internal engine;
     * empty = the real deadline-guarded simulator. This is how fault
     * drills target the workflow (wrap with a FaultInjector) and how
     * tests stub the simulator out. Ignored when campaign.engine
     * supplies a shared engine (its executor is used instead).
     */
    exec::SimulateFn simulate;
    /**
     * Shared execution knobs (threads, fault policy, journal,
     * degradation mode, …) and observability sinks, applied to both
     * simulation phases — the PB screen and the step-3 factorial
     * share one execution engine. See exec::CampaignOptions.
     */
    exec::CampaignOptions campaign;
};

/** Direction recommendation for one critical parameter. */
struct ParameterRecommendation
{
    Factor factor = Factor::DummyFactor1;
    std::string name;
    /** Mean cycles saved moving low -> high (negative = high hurts). */
    double cyclesSavedHighVsLow = 0.0;
    /** Share of the factorial's variation this main effect explains. */
    double variationExplained = 0.0;
};

/** Everything the workflow produced. */
struct WorkflowResult
{
    /** Step 1: the screening experiment. */
    PbExperimentResult screening;
    /** Step 1b: the critical factors, most significant first. */
    std::vector<Factor> criticalFactors;
    /** Step 3: full factorial ANOVA over the critical factors
     *  (response = mean cycles across the workloads). */
    stats::AnovaResult sensitivity;
    /** Step 4: per-parameter directions from the factorial. */
    std::vector<ParameterRecommendation> recommendations;
    /** Largest interaction among critical parameters (label and
     *  share of variation) — the information one-at-a-time designs
     *  cannot produce. */
    std::string largestInteraction;
    double largestInteractionShare = 0.0;
    /** Execution-engine counters over both simulation phases (runs,
     *  cache hits, simulated instructions, wall time). */
    exec::ProgressSnapshot execution;
    /** Workloads dropped from the step-3 factorial averaging by
     *  fault degradation (the screen's drops are in
     *  screening.droppedBenchmarks). */
    std::vector<std::string> factorialDroppedWorkloads;
    /** Step-3 degradation diagnostic trail (campaign.* rules). */
    check::DiagnosticSink factorialValidity;

    /** Human-readable multi-section report. */
    std::string toString() const;
};

/**
 * Run the four-step workflow over the given workloads.
 */
WorkflowResult
runRecommendedWorkflow(std::span<const trace::WorkloadProfile> workloads,
                       const WorkflowOptions &options);

/** Factor enum value for a factor name; throws if unknown. */
Factor factorByName(const std::string &name);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_WORKFLOW_HH
