/**
 * @file
 * Rank-stability inference over replicated PB campaigns.
 *
 * The paper reports its parameter ranks (Table 9) and benchmark
 * similarity matrix (Table 10) as point estimates from a single
 * synthetic-workload realization. This subsystem quantifies how
 * stable those artifacts are: it re-runs the whole screen under R
 * independently seeded workload realizations (the trace generators
 * are seeded from the workload *name*, so replicate r simulates a
 * renamed copy of each profile — a fresh realization that also gets
 * its own RunKey, keeping replicates out of the base runs' cache and
 * journal entries), then bootstraps the replicate-to-replicate spread
 * into:
 *
 *  - a confidence interval on every factor's aggregate rank position
 *    and sum-of-ranks,
 *  - a rank-flip probability matrix over the reported top-K order,
 *  - confidence intervals on every Table-10 distance entry, and
 *  - per-benchmark composition of the PR-6 sampling CIs with the
 *    replication spread (root-sum-square), so sampled campaigns
 *    report one honest uncertainty instead of two partial ones.
 *
 * The finished report feeds check::checkRankStability — a campaign
 * whose headline order is inside noise fails with
 * stats.rank-flip-inside-noise instead of shipping.
 *
 * Everything is deterministic: the bootstrap is seeded
 * (stats/bootstrap.hh) and replicate responses come back in job
 * order, so the report is bit-identical across engine thread counts.
 */

#ifndef RIGOR_METHODOLOGY_RANK_STABILITY_HH
#define RIGOR_METHODOLOGY_RANK_STABILITY_HH

#include <span>
#include <string>
#include <vector>

#include "check/stability_check.hh"
#include "cluster/distance_matrix.hh"
#include "methodology/pb_experiment.hh"
#include "stats/bootstrap.hh"

namespace rigor::methodology
{

/** Knobs of one replicated, stability-analyzed PB campaign. */
struct RankStabilityOptions
{
    /**
     * The underlying screen: run lengths, design, hooks, and the
     * shared campaign options. `base.campaign.replication.replicates`
     * is the replicate count R (must be >= 1; the pre-flight floor
     * is `minReplicates`); `base.campaign.replication.bootstrap`
     * seeds and sizes the bootstrap.
     */
    PbExperimentOptions base;
    /** Thresholds handed to check::checkRankStability. */
    check::StabilityCheckOptions check;
};

/** One factor's stability row, in reported (point) rank order. */
struct FactorStability
{
    std::string name;
    /** Reported aggregate rank (1 = most significant). */
    unsigned pointRank = 0;
    /** Bootstrap CI on the aggregate rank position. */
    stats::BootstrapInterval rank;
    /** Bootstrap CI on the cross-benchmark sum of ranks. */
    stats::BootstrapInterval sumOfRanks;
};

/** Per-benchmark composition of sampling and replication error. */
struct ComposedUncertainty
{
    std::string benchmark;
    /** Half-width of the BCa CI on the top factor's mean effect
     *  across replicates (cycles). */
    double replicationHalfWidth = 0.0;
    /** Sampling contribution: RSS of the per-run CPI CI half-widths
     *  through the effect estimate, averaged over replicates
     *  (cycles); zero for full (unsampled) runs. */
    double samplingHalfWidth = 0.0;
    /** Root-sum-square of the two. */
    double composedHalfWidth = 0.0;
};

/** Everything the bootstrap concluded about one replicated campaign. */
struct RankStabilityReport
{
    /** Workload-generation replicates behind the intervals. */
    unsigned replicates = 0;
    /** The bootstrap schedule that produced the intervals. */
    stats::BootstrapOptions bootstrap;
    /** Benchmarks covered (the survivor intersection). */
    std::vector<std::string> benchmarks;
    /** All factors, reported rank order (best first). */
    std::vector<FactorStability> factors;
    /**
     * flipProbability[i][j]: fraction of bootstrap iterations in
     * which factors i and j (point order, top-K only) appear in the
     * opposite order from the reported table. Symmetric, zero
     * diagonal.
     */
    std::vector<std::vector<double>> flipProbability;
    /** Point-estimate Table-10 distances over mean-effect ranks. */
    cluster::DistanceMatrix distance{1};
    /** Per-entry bootstrap CI bounds on `distance`. */
    cluster::DistanceMatrix distanceLower{1};
    cluster::DistanceMatrix distanceUpper{1};
    /** True when the campaign ran under sampled simulation. */
    bool sampled = false;
    /** True when sampling CIs were RSS-composed into `composed`. */
    bool samplingCiComposed = false;
    /** Per-benchmark uncertainty composition, parallel to
     *  `benchmarks`; populated only for sampled campaigns. */
    std::vector<ComposedUncertainty> composed;

    /** Convert to the neutral shape the check layer consumes. */
    check::RankStabilityFindings findings() const;

    /** Human-readable stability table. */
    std::string toString() const;

    /**
     * The --stability-out JSON document. The exact schema
     * check::lintStabilityReport parses; one object, two-space
     * indentation, deterministic member order.
     */
    std::string toJson() const;
};

/** A replicated campaign: the pooled screen plus its stability. */
struct ReplicatedPbResult
{
    /**
     * Pooled experiment over the survivor intersection: effects are
     * the per-factor means across replicates, ranks and summaries
     * are recomputed from those means, responses come from replicate
     * 0. `validity` additionally carries the stability diagnostics
     * (stats.* rules).
     */
    PbExperimentResult pooled;
    RankStabilityReport stability;
};

/**
 * Pure bootstrap core (no simulation): infer rank stability from
 * per-replicate effect tensors.
 *
 * @param effects_by_replicate [replicate][benchmark][factor] signed
 *        PB effects; every replicate must cover the same benchmarks
 *        in the same order
 * @param benchmarks benchmark names, inner order of the tensor
 * @param factor_names one name per factor column
 * @param bootstrap seed/iterations/confidence of the resampling
 * @param top_factors how many leading factors the flip matrix covers
 */
RankStabilityReport analyzeRankStability(
    const std::vector<std::vector<std::vector<double>>>
        &effects_by_replicate,
    std::span<const std::string> benchmarks,
    std::span<const std::string> factor_names,
    const stats::BootstrapOptions &bootstrap, unsigned top_factors);

/**
 * Run the replicated campaign end to end: R independently seeded
 * realizations of every workload through the shared engine, the
 * bootstrap, the stability checks, and (when a manifest is attached)
 * a "stability" provenance record.
 *
 * Throws check::PreflightError via the underlying runPbExperiment
 * when the replication plan is under the configured floor, and
 * check::CampaignError when the finished stability analysis contains
 * error-severity diagnostics (stats.rank-flip-inside-noise,
 * stats.ci-compose-missing) and skipPreflight is not set.
 */
ReplicatedPbResult runReplicatedPbExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const RankStabilityOptions &options);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_RANK_STABILITY_HH
