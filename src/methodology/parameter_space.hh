/**
 * @file
 * The Plackett-Burman parameter space of the paper's Tables 6-8.
 *
 * Forty-one real processor parameters plus two dummy factors, giving
 * N = 43 factors — which is why the paper uses an X = 44 design
 * (88 simulations with foldover). Every factor maps a +1/-1 level to
 * the exact low/high value the paper lists, and the "shaded" linked
 * parameters are derived rather than varied independently:
 *
 *  - LSQ entries = {0.25, 1.0} x ROB entries,
 *  - integer divide and FP multiply/divide/sqrt throughputs equal
 *    their latencies (unpipelined units),
 *  - following-block memory latency = 0.02 x first-block latency,
 *  - D-TLB page size and latency equal the I-TLB's,
 *  - decode/issue/commit width fixed at 4.
 */

#ifndef RIGOR_METHODOLOGY_PARAMETER_SPACE_HH
#define RIGOR_METHODOLOGY_PARAMETER_SPACE_HH

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "doe/design_matrix.hh"
#include "sim/config.hh"

namespace rigor::methodology
{

/**
 * The 43 factors in Tables 6-8 order (dummies last). Table 9 orders
 * rows by result rank; this enum is the *input* order, i.e. the
 * column assignment in the design matrix.
 */
enum class Factor : unsigned
{
    // Table 6 — processor core
    IfqEntries = 0,
    BpredType,
    BpredPenalty,
    RasEntries,
    BtbEntries,
    BtbAssoc,
    SpecBranchUpdate,
    RobEntries,
    LsqRatio,
    MemPorts,
    // Table 7 — functional units
    IntAlus,
    IntAluLatency,
    FpAlus,
    FpAluLatency,
    IntMultDivUnits,
    IntMultLatency,
    IntDivLatency,
    FpMultDivUnits,
    FpMultLatency,
    FpDivLatency,
    FpSqrtLatency,
    // Table 8 — memory hierarchy
    L1iSize,
    L1iAssoc,
    L1iBlockSize,
    L1iLatency,
    L1dSize,
    L1dAssoc,
    L1dBlockSize,
    L1dLatency,
    L2Size,
    L2Assoc,
    L2BlockSize,
    L2Latency,
    MemLatencyFirst,
    MemBandwidth,
    ItlbSize,
    ItlbPageSize,
    ItlbAssoc,
    ItlbLatency,
    DtlbSize,
    DtlbAssoc,
    // Dummy factors — estimate the design's noise floor
    DummyFactor1,
    DummyFactor2,
};

/** Total factor count (41 parameters + 2 dummies). */
constexpr unsigned numFactors = 43;

/** Real (non-dummy) parameter count. */
constexpr unsigned numRealParameters = 41;

/** Name and level descriptions of one factor (for Tables 6-8). */
struct ParameterDef
{
    Factor factor;
    std::string name;
    std::string lowValue;
    std::string highValue;
};

/** All 43 definitions, in Factor order. */
std::span<const ParameterDef> parameterDefinitions();

/** Display name of a factor. */
const std::string &factorName(Factor f);

/** Factor names as a vector (design-matrix column labels). */
std::vector<std::string> factorNames();

/**
 * Build the processor configuration for one design row.
 *
 * @param levels one level per factor (>= 43 entries; extra design
 *        columns are ignored as additional dummies)
 */
sim::ProcessorConfig configForLevels(std::span<const doe::Level> levels);

/** Convenience: configuration with every factor at one level. */
sim::ProcessorConfig uniformConfig(doe::Level level);

/**
 * Apply one factor's Table 6-8 low/high value onto an existing
 * configuration (dummy factors are no-ops). Linked parameters
 * (D-TLB page size/latency) are not re-derived here; call
 * finalizeLinkedParameters() after the last application.
 */
void applyFactorLevel(sim::ProcessorConfig &config, Factor factor,
                      doe::Level level);

/** Re-derive the linked (shaded) parameters after edits. */
void finalizeLinkedParameters(sim::ProcessorConfig &config);

/**
 * A typical (middle-of-the-road) configuration with selected factors
 * overridden to their Table 6-8 low/high values — the paper's step 3:
 * study the critical parameters around an otherwise reasonable
 * machine.
 */
sim::ProcessorConfig configWithOverrides(
    const std::vector<std::pair<Factor, doe::Level>> &overrides);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_PARAMETER_SPACE_HH
