#include "methodology/published_data.hh"

#include <stdexcept>

namespace rigor::methodology
{

namespace
{

const std::vector<std::string> benchNames = {
    "gzip", "vpr-Place", "vpr-Route", "gcc",    "mesa",
    "art",  "mcf",       "equake",    "ammp",   "parser",
    "vortex", "bzip2",   "twolf",
};

struct Row
{
    const char *name;
    unsigned r[13];
    unsigned long sum;
};

// Table 9 of the paper, verbatim.
const Row table9Rows[] = {
    {"Reorder Buffer Entries",
     {1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4}, 36},
    {"L2 Cache Latency",
     {4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2}, 52},
    {"BPred Type",
     {2, 5, 3, 5, 5, 27, 11, 6, 4, 4, 16, 7, 5}, 100},
    {"Int ALUs",
     {3, 7, 5, 8, 4, 29, 8, 9, 19, 6, 9, 2, 9}, 118},
    {"L1 D-Cache Latency",
     {7, 6, 7, 7, 12, 8, 14, 5, 40, 7, 5, 6, 6}, 130},
    {"L1 I-Cache Size",
     {6, 1, 12, 1, 1, 12, 37, 1, 36, 8, 1, 16, 1}, 133},
    {"L2 Cache Size",
     {9, 35, 2, 6, 21, 1, 1, 7, 2, 2, 6, 3, 43}, 138},
    {"L1 I-Cache Block Size",
     {16, 3, 20, 3, 16, 10, 32, 4, 10, 11, 3, 22, 3}, 153},
    {"Memory Latency First",
     {36, 25, 6, 9, 23, 3, 3, 8, 1, 5, 8, 5, 28}, 160},
    {"LSQ Entries",
     {12, 14, 9, 10, 13, 39, 10, 10, 17, 9, 7, 4, 10}, 164},
    {"Speculative Branch Update",
     {8, 17, 23, 28, 7, 16, 39, 12, 8, 20, 22, 20, 17}, 237},
    {"D-TLB Size",
     {20, 28, 11, 23, 29, 13, 12, 11, 25, 14, 25, 11, 24}, 246},
    {"L1 D-Cache Size",
     {18, 8, 10, 12, 39, 18, 9, 36, 32, 21, 12, 31, 7}, 253},
    {"L1 I-Cache Associativity",
     {5, 40, 15, 29, 8, 34, 23, 28, 16, 17, 15, 9, 21}, 260},
    {"FP Multiply Latency",
     {31, 12, 22, 11, 19, 24, 15, 23, 24, 29, 14, 23, 19}, 266},
    {"Memory Bandwidth",
     {37, 36, 13, 14, 43, 6, 6, 29, 3, 12, 19, 12, 38}, 268},
    {"Int ALU Latencies",
     {15, 15, 18, 13, 41, 22, 33, 14, 30, 16, 41, 10, 16}, 284},
    {"BTB Entries",
     {10, 24, 19, 20, 9, 42, 31, 20, 22, 19, 20, 17, 34}, 287},
    {"L1 D-Cache Block Size",
     {17, 29, 34, 22, 15, 9, 24, 19, 28, 13, 32, 28, 26}, 296},
    {"Int Divide Latency",
     {29, 10, 26, 16, 24, 32, 41, 32, 20, 10, 10, 43, 8}, 301},
    {"Int Mult/Div",
     {14, 20, 29, 31, 10, 23, 27, 24, 33, 36, 18, 26, 15}, 306},
    {"L2 Cache Associativity",
     {23, 19, 14, 19, 32, 28, 5, 39, 37, 18, 42, 21, 12}, 309},
    {"I-TLB Latency",
     {33, 18, 24, 18, 37, 30, 30, 16, 21, 32, 11, 29, 18}, 317},
    {"Instruction Fetch Queue Entries",
     {43, 13, 27, 30, 26, 20, 18, 37, 9, 25, 23, 34, 14}, 319},
    {"BPred Misprediction Penalty",
     {11, 23, 42, 21, 6, 43, 20, 34, 11, 22, 39, 37, 23}, 332},
    {"FP ALUs",
     {34, 11, 31, 15, 34, 17, 40, 22, 26, 37, 13, 42, 13}, 335},
    {"FP Divide Latency",
     {22, 9, 35, 17, 30, 21, 38, 15, 43, 38, 17, 39, 11}, 335},
    {"I-TLB Page Size",
     {42, 39, 8, 37, 36, 40, 7, 17, 12, 26, 28, 14, 39}, 345},
    {"L1 D-Cache Associativity",
     {13, 38, 17, 34, 18, 41, 34, 33, 14, 15, 35, 15, 42}, 349},
    {"I-TLB Associativity",
     {24, 27, 37, 25, 17, 31, 42, 13, 29, 30, 21, 33, 22}, 351},
    {"L2 Cache Block Size",
     {25, 43, 16, 38, 31, 7, 35, 27, 7, 35, 38, 13, 40}, 355},
    {"BTB Associativity",
     {21, 21, 36, 32, 11, 33, 17, 31, 34, 43, 27, 35, 25}, 366},
    {"D-TLB Associativity",
     {40, 32, 25, 26, 22, 35, 26, 26, 18, 33, 26, 30, 35}, 374},
    {"FP ALU Latencies",
     {32, 16, 38, 41, 38, 11, 22, 30, 23, 27, 30, 40, 29}, 377},
    {"Memory Ports",
     {39, 31, 41, 24, 27, 15, 16, 41, 5, 42, 29, 41, 27}, 378},
    {"I-TLB Size",
     {35, 34, 28, 35, 20, 37, 19, 18, 31, 34, 34, 27, 31}, 383},
    {"Dummy Factor #2",
     {27, 42, 21, 39, 35, 14, 13, 35, 41, 28, 43, 18, 30}, 386},
    {"FP Mult/Div",
     {41, 22, 43, 40, 40, 19, 28, 38, 27, 31, 31, 19, 20}, 399},
    {"Int Multiply Latency",
     {30, 41, 39, 36, 14, 26, 29, 21, 15, 41, 37, 32, 41}, 402},
    {"FP Square Root Latency",
     {38, 30, 40, 33, 33, 5, 25, 42, 42, 24, 24, 38, 37}, 411},
    {"L1 I-Cache Latency",
     {26, 26, 32, 42, 28, 38, 21, 40, 38, 40, 36, 25, 33}, 425},
    {"Return Address Stack Entries",
     {28, 33, 33, 27, 42, 25, 36, 25, 39, 39, 33, 36, 32}, 428},
    {"Dummy Factor #1",
     {19, 37, 30, 43, 25, 36, 43, 43, 35, 23, 40, 24, 36}, 434},
};

// Table 12 of the paper, verbatim. ("RUU Entries" is the paper's name
// for the reorder buffer in this table; normalized here so the two
// tables can be joined on factor names.)
const Row table12Rows[] = {
    {"Reorder Buffer Entries",
     {1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4}, 36},
    {"L2 Cache Latency",
     {4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2}, 52},
    {"BPred Type",
     {2, 5, 3, 5, 5, 28, 11, 8, 4, 4, 16, 7, 5}, 103},
    {"L1 D-Cache Latency",
     {7, 6, 5, 7, 11, 8, 14, 5, 40, 7, 5, 4, 6}, 125},
    {"L1 I-Cache Size",
     {5, 1, 12, 1, 1, 12, 38, 1, 36, 8, 1, 15, 1}, 132},
    {"Int ALUs",
     {6, 8, 8, 9, 8, 29, 9, 13, 20, 6, 9, 3, 9}, 137},
    {"L2 Cache Size",
     {9, 35, 2, 6, 22, 1, 1, 6, 2, 2, 6, 2, 43}, 137},
    {"L1 I-Cache Block Size",
     {15, 3, 20, 3, 14, 10, 32, 4, 10, 11, 3, 20, 3}, 148},
    {"Memory Latency First",
     {35, 25, 6, 8, 18, 3, 3, 7, 1, 5, 7, 6, 27}, 151},
    {"LSQ Entries",
     {13, 14, 9, 10, 15, 40, 10, 9, 17, 9, 8, 5, 10}, 169},
    {"D-TLB Size",
     {21, 28, 11, 24, 25, 13, 12, 10, 25, 14, 25, 10, 24}, 242},
    {"Speculative Branch Update",
     {8, 20, 25, 29, 7, 16, 39, 11, 8, 20, 21, 22, 19}, 245},
    {"L1 I-Cache Associativity",
     {3, 41, 15, 28, 6, 34, 23, 28, 16, 17, 11, 9, 21}, 252},
    {"L1 D-Cache Size",
     {18, 7, 10, 12, 42, 19, 8, 35, 32, 21, 13, 32, 7}, 256},
    {"FP Multiply Latency",
     {31, 12, 22, 11, 19, 24, 15, 22, 24, 28, 14, 24, 18}, 264},
    {"Memory Bandwidth",
     {33, 36, 13, 14, 43, 6, 6, 31, 3, 12, 20, 11, 38}, 266},
    {"BTB Entries",
     {10, 23, 19, 20, 9, 41, 31, 20, 22, 19, 19, 16, 34}, 283},
    {"Int ALU Latencies",
     {16, 15, 18, 13, 40, 22, 33, 14, 31, 16, 41, 12, 16}, 287},
    {"L1 D-Cache Block Size",
     {17, 30, 34, 22, 16, 9, 24, 19, 26, 13, 33, 25, 26}, 294},
    {"Int Divide Latency",
     {30, 10, 26, 17, 24, 33, 40, 33, 19, 10, 10, 41, 8}, 301},
    {"L2 Cache Associativity",
     {23, 19, 14, 19, 33, 27, 5, 39, 37, 18, 42, 21, 12}, 309},
    {"Int Mult/Div",
     {14, 21, 30, 31, 12, 23, 27, 23, 33, 37, 18, 27, 15}, 311},
    {"I-TLB Latency",
     {32, 17, 24, 18, 34, 30, 30, 16, 21, 33, 12, 29, 17}, 313},
    {"Instruction Fetch Queue Entries",
     {43, 13, 27, 30, 23, 20, 19, 37, 9, 25, 23, 34, 14}, 317},
    {"BPred Misprediction Penalty",
     {11, 24, 41, 21, 4, 43, 20, 32, 11, 22, 39, 35, 23}, 326},
    {"FP Divide Latency",
     {20, 9, 36, 16, 28, 21, 37, 15, 43, 38, 17, 38, 11}, 329},
    {"FP ALUs",
     {34, 11, 31, 15, 38, 17, 41, 24, 27, 36, 15, 43, 13}, 345},
    {"I-TLB Page Size",
     {42, 38, 7, 38, 39, 39, 7, 17, 12, 26, 28, 14, 39}, 346},
    {"L1 D-Cache Associativity",
     {12, 39, 17, 35, 17, 42, 34, 34, 14, 15, 36, 17, 42}, 354},
    {"L2 Cache Block Size",
     {25, 43, 16, 37, 31, 7, 35, 27, 7, 35, 38, 13, 40}, 354},
    {"I-TLB Associativity",
     {26, 27, 38, 25, 20, 31, 42, 12, 29, 30, 22, 33, 22}, 357},
    {"BTB Associativity",
     {22, 18, 35, 32, 10, 32, 17, 30, 34, 43, 27, 36, 25}, 361},
    {"D-TLB Associativity",
     {40, 32, 23, 26, 27, 35, 25, 26, 18, 32, 26, 28, 35}, 373},
    {"Memory Ports",
     {39, 31, 39, 23, 26, 15, 16, 40, 5, 42, 30, 40, 29}, 375},
    {"FP ALU Latencies",
     {37, 16, 37, 41, 37, 11, 21, 29, 23, 27, 29, 42, 28}, 378},
    {"I-TLB Size",
     {36, 34, 28, 34, 21, 37, 18, 18, 30, 34, 34, 30, 32}, 386},
    {"Dummy Factor #2",
     {28, 42, 21, 39, 32, 14, 13, 36, 42, 29, 43, 18, 30}, 387},
    {"Int Multiply Latency",
     {29, 40, 42, 36, 13, 26, 29, 21, 15, 41, 35, 31, 41}, 399},
    {"FP Mult/Div",
     {41, 22, 43, 40, 41, 18, 28, 38, 28, 31, 31, 19, 20}, 400},
    {"FP Square Root Latency",
     {38, 29, 40, 33, 35, 5, 26, 43, 41, 24, 24, 39, 37}, 414},
    {"Return Address Stack Entries",
     {27, 33, 33, 27, 36, 25, 36, 25, 39, 40, 32, 37, 31}, 421},
    {"L1 I-Cache Latency",
     {24, 26, 32, 42, 29, 38, 22, 41, 38, 39, 37, 26, 33}, 427},
    {"Dummy Factor #1",
     {19, 37, 29, 43, 30, 36, 43, 42, 35, 23, 40, 23, 36}, 436},
};

// Table 10 of the paper: strict lower triangle, row by row
// (vpr-Place..twolf), each row listing distances to the earlier
// benchmarks in column order.
const double table10Lower[] = {
    // vpr-Place
    89.8,
    // vpr-Route
    81.1, 98.9,
    // gcc
    81.9, 63.7, 71.7,
    // mesa
    62.0, 94.0, 98.5, 90.9,
    // art
    113.5, 102.8, 100.4, 92.6, 120.9,
    // mcf
    109.6, 110.9, 75.5, 94.5, 109.9, 98.6,
    // equake
    79.5, 84.7, 73.3, 63.6, 81.8, 96.3, 104.9,
    // ammp
    111.7, 118.1, 91.7, 98.5, 100.2, 105.2, 94.8, 98.4,
    // parser
    73.6, 89.7, 56.4, 65.0, 88.9, 94.4, 87.6, 77.1, 91.1,
    // vortex
    92.0, 68.5, 79.2, 54.6, 87.8, 92.7, 101.3, 67.8, 98.8, 77.4,
    // bzip2
    78.1, 111.4, 45.7, 88.8, 94.1, 102.5, 80.0, 76.1, 92.7, 62.9, 94.8,
    // twolf
    85.5, 35.2, 96.6, 67.3, 91.7, 105.2, 111.1, 86.5, 120.0, 89.7,
    73.1, 107.9,
};

PublishedRankTable
buildTable(const Row *rows, std::size_t count)
{
    PublishedRankTable t;
    t.benchmarks = benchNames;
    t.factors.reserve(count);
    t.ranks.reserve(count);
    t.sums.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        t.factors.emplace_back(rows[i].name);
        t.ranks.emplace_back(rows[i].r, rows[i].r + 13);
        t.sums.push_back(rows[i].sum);
    }
    return t;
}

} // namespace

std::vector<std::vector<double>>
PublishedRankTable::rankVectorsByBenchmark() const
{
    std::vector<std::vector<double>> vectors(
        benchmarks.size(), std::vector<double>(factors.size(), 0.0));
    for (std::size_t f = 0; f < factors.size(); ++f)
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            vectors[b][f] = static_cast<double>(ranks[f][b]);
    return vectors;
}

std::vector<doe::FactorRankSummary>
PublishedRankTable::asSummaries() const
{
    std::vector<doe::FactorRankSummary> summaries;
    summaries.reserve(factors.size());
    for (std::size_t f = 0; f < factors.size(); ++f) {
        doe::FactorRankSummary s;
        s.name = factors[f];
        s.ranks = ranks[f];
        for (unsigned r : ranks[f])
            s.sumOfRanks += r;
        summaries.push_back(std::move(s));
    }
    return summaries;
}

std::size_t
PublishedRankTable::factorIndex(const std::string &name) const
{
    for (std::size_t f = 0; f < factors.size(); ++f)
        if (factors[f] == name)
            return f;
    throw std::invalid_argument(
        "PublishedRankTable::factorIndex: no factor named " + name);
}

const PublishedRankTable &
publishedTable9()
{
    static const PublishedRankTable t =
        buildTable(table9Rows, std::size(table9Rows));
    return t;
}

const PublishedRankTable &
publishedTable12()
{
    static const PublishedRankTable t =
        buildTable(table12Rows, std::size(table12Rows));
    return t;
}

const cluster::DistanceMatrix &
publishedTable10()
{
    static const cluster::DistanceMatrix m = [] {
        cluster::DistanceMatrix d(benchNames.size());
        std::size_t k = 0;
        for (std::size_t i = 1; i < benchNames.size(); ++i)
            for (std::size_t j = 0; j < i; ++j)
                d.set(i, j, table10Lower[k++]);
        return d;
    }();
    return m;
}

const std::vector<std::vector<std::string>> &
publishedTable11Groups()
{
    static const std::vector<std::vector<std::string>> groups = {
        {"gzip", "mesa"},
        {"vpr-Place", "twolf"},
        {"vpr-Route", "parser", "bzip2"},
        {"gcc", "vortex"},
        {"art"},
        {"mcf"},
        {"equake"},
        {"ammp"},
    };
    return groups;
}

const std::vector<std::string> &
publishedBenchmarkNames()
{
    return benchNames;
}

} // namespace rigor::methodology
