#include "methodology/rank_table.hh"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace rigor::methodology
{

std::string
formatRankTable(std::span<const doe::FactorRankSummary> summaries,
                std::span<const std::string> benchmark_names)
{
    std::size_t name_width = 10;
    for (const doe::FactorRankSummary &s : summaries)
        name_width = std::max(name_width, s.name.size() + 1);

    std::ostringstream os;
    os << std::left << std::setw(static_cast<int>(name_width))
       << "Parameter" << std::right;
    for (const std::string &b : benchmark_names)
        os << std::setw(
            static_cast<int>(std::max<std::size_t>(b.size() + 1, 5)))
           << b;
    os << std::setw(7) << "Sum" << '\n';

    for (const doe::FactorRankSummary &s : summaries) {
        os << std::left << std::setw(static_cast<int>(name_width))
           << s.name << std::right;
        if (s.ranks.size() != benchmark_names.size())
            throw std::invalid_argument(
                "formatRankTable: rank/benchmark count mismatch");
        for (std::size_t b = 0; b < s.ranks.size(); ++b)
            os << std::setw(static_cast<int>(std::max<std::size_t>(
                   benchmark_names[b].size() + 1, 5)))
               << s.ranks[b];
        os << std::setw(7) << s.sumOfRanks << '\n';
    }
    return os.str();
}

std::string
formatRankTable(std::span<const doe::FactorRankSummary> summaries,
                std::span<const std::string> benchmark_names,
                std::span<const std::string> dropped_benchmarks)
{
    std::string out = formatRankTable(summaries, benchmark_names);
    if (dropped_benchmarks.empty())
        return out;
    out += "Dropped (quarantined failures):";
    for (const std::string &b : dropped_benchmarks)
        out += ' ' + b;
    out += " -- rank sums cover " +
           std::to_string(benchmark_names.size()) + " of " +
           std::to_string(benchmark_names.size() +
                          dropped_benchmarks.size()) +
           " benchmarks\n";
    return out;
}

std::vector<double>
sumOfRanksInOrder(std::span<const doe::FactorRankSummary> summaries,
                  std::span<const std::string> factor_order)
{
    std::vector<double> out;
    out.reserve(factor_order.size());
    for (const std::string &name : factor_order) {
        bool found = false;
        for (const doe::FactorRankSummary &s : summaries) {
            if (s.name == name) {
                out.push_back(static_cast<double>(s.sumOfRanks));
                found = true;
                break;
            }
        }
        if (!found)
            throw std::invalid_argument(
                "sumOfRanksInOrder: no factor named " + name);
    }
    return out;
}

std::vector<std::string>
topFactorNames(std::span<const doe::FactorRankSummary> summaries,
               std::size_t k)
{
    std::vector<std::string> names;
    const std::size_t n = std::min(k, summaries.size());
    names.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        names.push_back(summaries[i].name);
    return names;
}

std::string
rankTableDigest(std::span<const doe::FactorRankSummary> summaries)
{
    std::uint64_t hash = obs::fnv1a("rank-table");
    for (const doe::FactorRankSummary &s : summaries) {
        hash = obs::fnv1a(s.name, hash);
        std::string sum = "=";
        sum += std::to_string(s.sumOfRanks);
        sum += ';';
        hash = obs::fnv1a(sum, hash);
    }
    return obs::digestHex(hash);
}

} // namespace rigor::methodology
