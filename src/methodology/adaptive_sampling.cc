#include "methodology/adaptive_sampling.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "doe/ranking.hh"
#include "methodology/campaign_instrumentation.hh"
#include "methodology/parameter_space.hh"
#include "methodology/rank_table.hh"

namespace rigor::methodology
{

namespace
{

/**
 * Per-run CI half-widths in *cycles*, captured from the engine's job
 * events and keyed by benchmark name so refinement rounds (which run
 * a benchmark subset, renumbering job indices) splice cleanly. Cache
 * and journal hits replay only the response, so their half-width is
 * recorded as zero — an understatement the adaptive loop tolerates:
 * a hit means the identical schedule already ran, and its ambiguity
 * was judged when it was fresh.
 */
using HalfWidthsByBench =
    std::unordered_map<std::string, std::vector<double>>;

using detail::ObserverScope;

/** One sampled runPbExperiment call with half-width capture. */
PbExperimentResult
runRound(std::span<const trace::WorkloadProfile> workloads,
         const PbExperimentOptions &options,
         exec::SimulationEngine &engine, HalfWidthsByBench &half)
{
    // jobIndex -> CI half-width in cycles, raw; mapped onto
    // (benchmark, row) once the design's row count is known.
    std::mutex mutex;
    std::unordered_map<std::size_t, double> by_job;
    ObserverScope capture(
        engine, [&mutex, &by_job](const exec::JobEvent &event) {
            if (!event.ok)
                return;
            const double cycles_half =
                event.sampled
                    ? event.sample.ciHalfWidth *
                          static_cast<double>(
                              event.sample.streamInstructions)
                    : 0.0;
            const std::scoped_lock lock(mutex);
            by_job[event.jobIndex] = cycles_half;
        });

    PbExperimentResult result = runPbExperiment(workloads, options);

    const std::size_t num_runs = result.design.numRows();
    for (const auto &[job_index, cycles_half] : by_job) {
        const std::size_t bench = job_index / num_runs;
        if (bench >= workloads.size())
            continue;
        std::vector<double> &row_halves =
            half[workloads[bench].name];
        row_halves.resize(num_runs, 0.0);
        row_halves[job_index % num_runs] = cycles_half;
    }
    return result;
}

/** Ambiguous (benchmark, top-K factor) pairs of the current table. */
struct Ambiguity
{
    std::set<std::string> benchmarks;
    std::size_t pairs = 0;
};

Ambiguity
findAmbiguity(const PbExperimentResult &result,
              const HalfWidthsByBench &half,
              const std::vector<std::string> &factor_names,
              const AdaptiveSamplingOptions &options)
{
    Ambiguity out;
    const std::vector<std::string> top = topFactorNames(
        result.summaries,
        std::min(options.topFactors, result.summaries.size()));
    std::vector<std::size_t> top_indices;
    top_indices.reserve(top.size());
    for (const std::string &name : top) {
        const auto it = std::find(factor_names.begin(),
                                  factor_names.end(), name);
        if (it != factor_names.end())
            top_indices.push_back(static_cast<std::size_t>(
                it - factor_names.begin()));
    }

    for (std::size_t b = 0; b < result.benchmarks.size(); ++b) {
        const auto it = half.find(result.benchmarks[b]);
        if (it == half.end())
            continue;
        // The effect is sum(sign_r * response_r); with independent
        // per-run errors h_r its propagated uncertainty is
        // sqrt(sum h_r^2) regardless of the signs.
        double sum_sq = 0.0;
        for (const double h : it->second)
            sum_sq += h * h;
        const double threshold =
            options.ambiguityFactor * std::sqrt(sum_sq);
        if (threshold <= 0.0)
            continue;
        const std::vector<double> &effects = result.effects[b];
        for (const std::size_t f : top_indices) {
            if (f < effects.size() &&
                std::abs(effects[f]) <= threshold) {
                ++out.pairs;
                out.benchmarks.insert(result.benchmarks[b]);
            }
        }
    }
    return out;
}

/** Overwrite the master's per-benchmark vectors with refined ones. */
void
splice(PbExperimentResult &master, const PbExperimentResult &refined)
{
    for (std::size_t s = 0; s < refined.benchmarks.size(); ++s) {
        const auto it = std::find(master.benchmarks.begin(),
                                  master.benchmarks.end(),
                                  refined.benchmarks[s]);
        if (it == master.benchmarks.end())
            continue;
        const std::size_t b = static_cast<std::size_t>(
            it - master.benchmarks.begin());
        master.responses[b] = refined.responses[s];
        master.effects[b] = refined.effects[s];
        master.ranks[b] = refined.ranks[s];
    }
    master.summaries =
        doe::aggregateRanks(factorNames(), master.effects);
}

} // namespace

AdaptiveSamplingResult
runAdaptivePbExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const AdaptiveSamplingOptions &options)
{
    if (!options.base.campaign.sampling.enabled)
        throw std::invalid_argument(
            "runAdaptivePbExperiment: campaign.sampling must be "
            "enabled; full runs carry no CI to refine against");
    if (options.maxRounds == 0)
        throw std::invalid_argument(
            "runAdaptivePbExperiment: maxRounds must be >= 1");

    PbExperimentOptions opts = options.base;
    exec::SimulationEngine local_engine(
        exec::EngineOptions{opts.campaign.threads, true});
    exec::SimulationEngine &engine = opts.campaign.engine
                                         ? *opts.campaign.engine
                                         : local_engine;
    opts.campaign.engine = &engine;

    AdaptiveSamplingResult out;
    HalfWidthsByBench half;
    const std::vector<std::string> names = factorNames();

    // Round 0: the full sampled screen.
    out.result = runRound(workloads, opts, engine, half);
    {
        AdaptiveRound round;
        round.sampling = opts.campaign.sampling;
        round.simulatedBenchmarks = out.result.benchmarks;
        out.rounds.push_back(std::move(round));
    }

    const std::string base_name = opts.experimentName;
    for (unsigned round = 0;; ++round) {
        const Ambiguity ambiguity =
            findAmbiguity(out.result, half, names, options);
        out.rounds.back().ambiguousPairs = ambiguity.pairs;
        if (ambiguity.pairs == 0) {
            out.converged = true;
            break;
        }
        if (round + 1 >= options.maxRounds)
            break;

        // Lengthen the schedule: halve the fast-forward interval so
        // each stream yields ~2x the measured units, clamped so the
        // detailed phase still fits one period.
        sample::SamplingOptions &sampling = opts.campaign.sampling;
        const std::uint64_t detail = sampling.warmupInstructions +
                                     sampling.unitInstructions;
        const std::uint64_t next = std::max(
            detail, sampling.intervalInstructions / 2);
        if (next == sampling.intervalInstructions)
            break; // cannot refine further
        sampling.intervalInstructions = next;
        opts.experimentName =
            base_name + "/refine-" + std::to_string(round + 1);

        std::vector<trace::WorkloadProfile> subset;
        for (const trace::WorkloadProfile &w : workloads)
            if (ambiguity.benchmarks.count(w.name))
                subset.push_back(w);
        if (subset.empty())
            break;

        const PbExperimentResult refined =
            runRound(subset, opts, engine, half);
        splice(out.result, refined);

        AdaptiveRound record;
        record.sampling = sampling;
        record.simulatedBenchmarks = refined.benchmarks;
        out.rounds.push_back(std::move(record));
    }
    return out;
}

} // namespace rigor::methodology
