/**
 * @file
 * Table-9-style rank table rendering and comparison.
 */

#ifndef RIGOR_METHODOLOGY_RANK_TABLE_HH
#define RIGOR_METHODOLOGY_RANK_TABLE_HH

#include <span>
#include <string>
#include <vector>

#include "doe/ranking.hh"

namespace rigor::methodology
{

/**
 * Render sorted factor summaries as the paper's Table 9 layout:
 * one row per factor (most significant first), one rank column per
 * benchmark, and the rank sum.
 */
std::string formatRankTable(
    std::span<const doe::FactorRankSummary> summaries,
    std::span<const std::string> benchmark_names);

/**
 * As above, but for a degraded campaign: when @p dropped_benchmarks
 * is non-empty, a trailing label line names the dropped benchmarks
 * and states how many benchmarks the rank sums actually cover, so a
 * reduced Table 9 can never be mistaken for a full-suite one.
 */
std::string formatRankTable(
    std::span<const doe::FactorRankSummary> summaries,
    std::span<const std::string> benchmark_names,
    std::span<const std::string> dropped_benchmarks);

/**
 * Sum-of-ranks of each factor in @p summaries, reordered to match
 * @p factor_order (name-keyed). Throws when a name is missing.
 * Used to compare a measured table against the published one.
 */
std::vector<double> sumOfRanksInOrder(
    std::span<const doe::FactorRankSummary> summaries,
    std::span<const std::string> factor_order);

/**
 * Names of the first @p k factors (most significant) of a sorted
 * summary list.
 */
std::vector<std::string> topFactorNames(
    std::span<const doe::FactorRankSummary> summaries, std::size_t k);

/**
 * FNV-1a digest (hex) of a rank table's content — the ordered
 * (factor name, rank sum) pairs. Two campaigns that produced the same
 * ranking produce the same digest; the campaign manifest records it
 * so downstream tooling can tell identical rank tables apart without
 * parsing the rendered text.
 */
std::string rankTableDigest(
    std::span<const doe::FactorRankSummary> summaries);

} // namespace rigor::methodology

#endif // RIGOR_METHODOLOGY_RANK_TABLE_HH
