#include "methodology/parameter_space.hh"

#include <array>
#include <stdexcept>

namespace rigor::methodology
{

namespace
{

using doe::Level;

const std::array<ParameterDef, numFactors> definitions = {{
    // Table 6
    {Factor::IfqEntries, "Instruction Fetch Queue Entries", "4", "32"},
    {Factor::BpredType, "BPred Type", "2-Level", "Perfect"},
    {Factor::BpredPenalty, "BPred Misprediction Penalty", "10 Cycles",
     "2 Cycles"},
    {Factor::RasEntries, "Return Address Stack Entries", "4", "64"},
    {Factor::BtbEntries, "BTB Entries", "16", "512"},
    {Factor::BtbAssoc, "BTB Associativity", "2-Way",
     "Fully-Associative"},
    {Factor::SpecBranchUpdate, "Speculative Branch Update", "In Commit",
     "In Decode"},
    {Factor::RobEntries, "Reorder Buffer Entries", "8", "64"},
    {Factor::LsqRatio, "LSQ Entries", "0.25 * ROB", "1.0 * ROB"},
    {Factor::MemPorts, "Memory Ports", "1", "4"},
    // Table 7
    {Factor::IntAlus, "Int ALUs", "1", "4"},
    {Factor::IntAluLatency, "Int ALU Latencies", "2 Cycles", "1 Cycle"},
    {Factor::FpAlus, "FP ALUs", "1", "4"},
    {Factor::FpAluLatency, "FP ALU Latencies", "5 Cycles", "1 Cycle"},
    {Factor::IntMultDivUnits, "Int Mult/Div", "1", "4"},
    {Factor::IntMultLatency, "Int Multiply Latency", "15 Cycles",
     "2 Cycles"},
    {Factor::IntDivLatency, "Int Divide Latency", "80 Cycles",
     "10 Cycles"},
    {Factor::FpMultDivUnits, "FP Mult/Div", "1", "4"},
    {Factor::FpMultLatency, "FP Multiply Latency", "5 Cycles",
     "2 Cycles"},
    {Factor::FpDivLatency, "FP Divide Latency", "35 Cycles",
     "10 Cycles"},
    {Factor::FpSqrtLatency, "FP Square Root Latency", "35 Cycles",
     "15 Cycles"},
    // Table 8
    {Factor::L1iSize, "L1 I-Cache Size", "4 KB", "128 KB"},
    {Factor::L1iAssoc, "L1 I-Cache Associativity", "1-Way", "8-Way"},
    {Factor::L1iBlockSize, "L1 I-Cache Block Size", "16 Bytes",
     "64 Bytes"},
    {Factor::L1iLatency, "L1 I-Cache Latency", "4 Cycles", "1 Cycle"},
    {Factor::L1dSize, "L1 D-Cache Size", "4 KB", "128 KB"},
    {Factor::L1dAssoc, "L1 D-Cache Associativity", "1-Way", "8-Way"},
    {Factor::L1dBlockSize, "L1 D-Cache Block Size", "16 Bytes",
     "64 Bytes"},
    {Factor::L1dLatency, "L1 D-Cache Latency", "4 Cycles", "1 Cycle"},
    {Factor::L2Size, "L2 Cache Size", "256 KB", "8192 KB"},
    {Factor::L2Assoc, "L2 Cache Associativity", "1-Way", "8-Way"},
    {Factor::L2BlockSize, "L2 Cache Block Size", "64 Bytes",
     "256 Bytes"},
    {Factor::L2Latency, "L2 Cache Latency", "20 Cycles", "5 Cycles"},
    {Factor::MemLatencyFirst, "Memory Latency First", "200 Cycles",
     "50 Cycles"},
    {Factor::MemBandwidth, "Memory Bandwidth", "4 Bytes", "32 Bytes"},
    {Factor::ItlbSize, "I-TLB Size", "32 Entries", "256 Entries"},
    {Factor::ItlbPageSize, "I-TLB Page Size", "4 KB", "4096 KB"},
    {Factor::ItlbAssoc, "I-TLB Associativity", "2-Way",
     "Fully-Associative"},
    {Factor::ItlbLatency, "I-TLB Latency", "80 Cycles", "30 Cycles"},
    {Factor::DtlbSize, "D-TLB Size", "32 Entries", "256 Entries"},
    {Factor::DtlbAssoc, "D-TLB Associativity", "2-Way",
     "Fully-Associative"},
    // Dummies
    {Factor::DummyFactor1, "Dummy Factor #1", "-", "-"},
    {Factor::DummyFactor2, "Dummy Factor #2", "-", "-"},
}};

constexpr std::uint32_t kB = 1024;

} // namespace

std::span<const ParameterDef>
parameterDefinitions()
{
    return definitions;
}

const std::string &
factorName(Factor f)
{
    const auto idx = static_cast<std::size_t>(f);
    if (idx >= numFactors)
        throw std::invalid_argument("factorName: bad factor");
    return definitions[idx].name;
}

std::vector<std::string>
factorNames()
{
    std::vector<std::string> names;
    names.reserve(numFactors);
    for (const ParameterDef &def : definitions)
        names.push_back(def.name);
    return names;
}

void
applyFactorLevel(sim::ProcessorConfig &c, Factor factor,
                 doe::Level level)
{
    const bool hi = level == doe::Level::High;
    switch (factor) {
      // ----- Table 6 -----
      case Factor::IfqEntries:
        c.ifqEntries = hi ? 32 : 4;
        break;
      case Factor::BpredType:
        c.bpred = hi ? sim::BranchPredictorKind::Perfect
                     : sim::BranchPredictorKind::TwoLevel;
        break;
      case Factor::BpredPenalty:
        c.bpredPenalty = hi ? 2 : 10;
        break;
      case Factor::RasEntries:
        c.rasEntries = hi ? 64 : 4;
        break;
      case Factor::BtbEntries:
        c.btbEntries = hi ? 512 : 16;
        break;
      case Factor::BtbAssoc:
        c.btbAssoc = hi ? 0 : 2;
        break;
      case Factor::SpecBranchUpdate:
        c.specBranchUpdate = hi ? sim::BranchUpdateTiming::InDecode
                                : sim::BranchUpdateTiming::InCommit;
        break;
      case Factor::RobEntries:
        c.robEntries = hi ? 64 : 8;
        break;
      case Factor::LsqRatio:
        c.lsqRatio = hi ? 1.0 : 0.25;
        break;
      case Factor::MemPorts:
        c.memPorts = hi ? 4 : 1;
        break;
      // ----- Table 7 -----
      case Factor::IntAlus:
        c.intAlus = hi ? 4 : 1;
        break;
      case Factor::IntAluLatency:
        c.intAluLatency = hi ? 1 : 2;
        break;
      case Factor::FpAlus:
        c.fpAlus = hi ? 4 : 1;
        break;
      case Factor::FpAluLatency:
        c.fpAluLatency = hi ? 1 : 5;
        break;
      case Factor::IntMultDivUnits:
        c.intMultDivUnits = hi ? 4 : 1;
        break;
      case Factor::IntMultLatency:
        c.intMultLatency = hi ? 2 : 15;
        break;
      case Factor::IntDivLatency:
        c.intDivLatency = hi ? 10 : 80;
        break;
      case Factor::FpMultDivUnits:
        c.fpMultDivUnits = hi ? 4 : 1;
        break;
      case Factor::FpMultLatency:
        c.fpMultLatency = hi ? 2 : 5;
        break;
      case Factor::FpDivLatency:
        c.fpDivLatency = hi ? 10 : 35;
        break;
      case Factor::FpSqrtLatency:
        c.fpSqrtLatency = hi ? 15 : 35;
        break;
      // ----- Table 8 -----
      case Factor::L1iSize:
        c.l1i.sizeBytes = hi ? 128 * kB : 4 * kB;
        break;
      case Factor::L1iAssoc:
        c.l1i.assoc = hi ? 8 : 1;
        break;
      case Factor::L1iBlockSize:
        c.l1i.blockBytes = hi ? 64 : 16;
        break;
      case Factor::L1iLatency:
        c.l1i.latency = hi ? 1 : 4;
        break;
      case Factor::L1dSize:
        c.l1d.sizeBytes = hi ? 128 * kB : 4 * kB;
        break;
      case Factor::L1dAssoc:
        c.l1d.assoc = hi ? 8 : 1;
        break;
      case Factor::L1dBlockSize:
        c.l1d.blockBytes = hi ? 64 : 16;
        break;
      case Factor::L1dLatency:
        c.l1d.latency = hi ? 1 : 4;
        break;
      case Factor::L2Size:
        c.l2.sizeBytes = hi ? 8192 * kB : 256 * kB;
        break;
      case Factor::L2Assoc:
        c.l2.assoc = hi ? 8 : 1;
        break;
      case Factor::L2BlockSize:
        c.l2.blockBytes = hi ? 256 : 64;
        break;
      case Factor::L2Latency:
        c.l2.latency = hi ? 5 : 20;
        break;
      case Factor::MemLatencyFirst:
        c.memLatencyFirst = hi ? 50 : 200;
        break;
      case Factor::MemBandwidth:
        c.memBandwidthBytes = hi ? 32 : 4;
        break;
      case Factor::ItlbSize:
        c.itlb.entries = hi ? 256 : 32;
        break;
      case Factor::ItlbPageSize:
        c.itlb.pageBytes = hi ? 4096 * std::uint64_t{kB}
                              : 4 * std::uint64_t{kB};
        break;
      case Factor::ItlbAssoc:
        c.itlb.assoc = hi ? 0 : 2;
        break;
      case Factor::ItlbLatency:
        c.itlb.missLatency = hi ? 30 : 80;
        break;
      case Factor::DtlbSize:
        c.dtlb.entries = hi ? 256 : 32;
        break;
      case Factor::DtlbAssoc:
        c.dtlb.assoc = hi ? 0 : 2;
        break;
      // ----- Dummies: no mechanical effect -----
      case Factor::DummyFactor1:
      case Factor::DummyFactor2:
        break;
    }
}

void
finalizeLinkedParameters(sim::ProcessorConfig &c)
{
    // The shaded links of Table 8: the D-TLB page size and miss
    // latency track the I-TLB. (LSQ size, divide throughputs, and
    // following-block latency are derived on demand by
    // ProcessorConfig itself.)
    c.dtlb.pageBytes = c.itlb.pageBytes;
    c.dtlb.missLatency = c.itlb.missLatency;
    // The paper fixes the machine width at 4.
    c.machineWidth = 4;
}

sim::ProcessorConfig
configForLevels(std::span<const doe::Level> levels)
{
    if (levels.size() < numFactors)
        throw std::invalid_argument(
            "configForLevels: need at least 43 levels");

    sim::ProcessorConfig c;
    for (unsigned f = 0; f < numFactors; ++f)
        applyFactorLevel(c, static_cast<Factor>(f), levels[f]);
    finalizeLinkedParameters(c);
    c.validate();
    return c;
}

sim::ProcessorConfig
uniformConfig(doe::Level level)
{
    std::vector<Level> levels(numFactors, level);
    return configForLevels(levels);
}

sim::ProcessorConfig
configWithOverrides(
    const std::vector<std::pair<Factor, doe::Level>> &overrides)
{
    sim::ProcessorConfig c; // typical machine
    for (const auto &[factor, level] : overrides)
        applyFactorLevel(c, factor, level);
    finalizeLinkedParameters(c);
    c.validate();
    return c;
}

} // namespace rigor::methodology
