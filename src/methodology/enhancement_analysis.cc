#include "methodology/enhancement_analysis.hh"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rigor::methodology
{

const RankShift &
EnhancementComparison::shift(const std::string &name) const
{
    for (const RankShift &s : shifts)
        if (s.name == name)
            return s;
    throw std::invalid_argument(
        "EnhancementComparison::shift: no factor named " + name);
}

RankShift
EnhancementComparison::biggestReliefAmongTop(
    std::span<const doe::FactorRankSummary> base_summaries,
    std::size_t top_k) const
{
    if (base_summaries.empty())
        throw std::invalid_argument(
            "biggestReliefAmongTop: empty base summaries");

    const std::size_t k = std::min(top_k, base_summaries.size());
    const RankShift *best = nullptr;
    for (std::size_t i = 0; i < k; ++i) {
        const RankShift &s = shift(base_summaries[i].name);
        if (!best || s.delta() > best->delta())
            best = &s;
    }
    return *best;
}

std::string
EnhancementComparison::toString(std::size_t max_rows) const
{
    std::size_t name_width = 10;
    for (const RankShift &s : shifts)
        name_width = std::max(name_width, s.name.size() + 1);

    std::ostringstream os;
    os << std::left << std::setw(static_cast<int>(name_width))
       << "Parameter" << std::right << std::setw(10) << "SumBefore"
       << std::setw(10) << "SumAfter" << std::setw(8) << "Delta"
       << '\n';
    std::size_t rows = 0;
    for (const RankShift &s : shifts) {
        if (max_rows != 0 && rows++ >= max_rows)
            break;
        os << std::left << std::setw(static_cast<int>(name_width))
           << s.name << std::right << std::setw(10) << s.sumBefore
           << std::setw(10) << s.sumAfter << std::setw(8)
           << std::showpos << s.delta() << std::noshowpos << '\n';
    }
    return os.str();
}

EnhancementComparison
compareRankTables(std::span<const doe::FactorRankSummary> base,
                  std::span<const doe::FactorRankSummary> enhanced)
{
    if (base.size() != enhanced.size())
        throw std::invalid_argument(
            "compareRankTables: factor count mismatch");

    EnhancementComparison cmp;
    cmp.shifts.reserve(base.size());
    for (const doe::FactorRankSummary &b : base) {
        const doe::FactorRankSummary *match = nullptr;
        for (const doe::FactorRankSummary &e : enhanced) {
            if (e.name == b.name) {
                match = &e;
                break;
            }
        }
        if (!match)
            throw std::invalid_argument(
                "compareRankTables: enhanced table lacks factor " +
                b.name);
        cmp.shifts.push_back({b.name, b.sumOfRanks, match->sumOfRanks});
    }

    std::stable_sort(cmp.shifts.begin(), cmp.shifts.end(),
                     [](const RankShift &a, const RankShift &b) {
                         return std::abs(a.delta()) > std::abs(b.delta());
                     });
    return cmp;
}

} // namespace rigor::methodology
