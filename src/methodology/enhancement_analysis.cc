#include "methodology/enhancement_analysis.hh"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "check/preflight.hh"
#include "check/rule_ids.hh"
#include "methodology/campaign_instrumentation.hh"

namespace rigor::methodology
{

const RankShift &
EnhancementComparison::shift(const std::string &name) const
{
    for (const RankShift &s : shifts)
        if (s.name == name)
            return s;
    throw std::invalid_argument(
        "EnhancementComparison::shift: no factor named " + name);
}

RankShift
EnhancementComparison::biggestReliefAmongTop(
    std::span<const doe::FactorRankSummary> base_summaries,
    std::size_t top_k) const
{
    if (base_summaries.empty())
        throw std::invalid_argument(
            "biggestReliefAmongTop: empty base summaries");

    const std::size_t k = std::min(top_k, base_summaries.size());
    const RankShift *best = nullptr;
    for (std::size_t i = 0; i < k; ++i) {
        const RankShift &s = shift(base_summaries[i].name);
        if (!best || s.delta() > best->delta())
            best = &s;
    }
    return *best;
}

std::string
EnhancementComparison::toString(std::size_t max_rows) const
{
    std::size_t name_width = 10;
    for (const RankShift &s : shifts)
        name_width = std::max(name_width, s.name.size() + 1);

    std::ostringstream os;
    os << std::left << std::setw(static_cast<int>(name_width))
       << "Parameter" << std::right << std::setw(10) << "SumBefore"
       << std::setw(10) << "SumAfter" << std::setw(8) << "Delta"
       << '\n';
    std::size_t rows = 0;
    for (const RankShift &s : shifts) {
        if (max_rows != 0 && rows++ >= max_rows)
            break;
        os << std::left << std::setw(static_cast<int>(name_width))
           << s.name << std::right << std::setw(10) << s.sumBefore
           << std::setw(10) << s.sumAfter << std::setw(8)
           << std::showpos << s.delta() << std::noshowpos << '\n';
    }
    return os.str();
}

EnhancementComparison
compareRankTables(std::span<const doe::FactorRankSummary> base,
                  std::span<const doe::FactorRankSummary> enhanced)
{
    if (base.size() != enhanced.size())
        throw std::invalid_argument(
            "compareRankTables: factor count mismatch");

    // One name -> summary map instead of a linear rescan per factor;
    // duplicate names are rejected here rather than silently matched
    // first-wins.
    std::unordered_map<std::string, const doe::FactorRankSummary *>
        by_name;
    by_name.reserve(enhanced.size());
    for (const doe::FactorRankSummary &e : enhanced)
        if (!by_name.emplace(e.name, &e).second)
            throw std::invalid_argument(
                "compareRankTables: duplicate factor in enhanced "
                "table: " +
                e.name);

    EnhancementComparison cmp;
    cmp.shifts.reserve(base.size());
    for (const doe::FactorRankSummary &b : base) {
        const auto it = by_name.find(b.name);
        if (it == by_name.end())
            throw std::invalid_argument(
                "compareRankTables: enhanced table lacks factor " +
                b.name);
        cmp.shifts.push_back(
            {b.name, b.sumOfRanks, it->second->sumOfRanks});
    }

    std::stable_sort(cmp.shifts.begin(), cmp.shifts.end(),
                     [](const RankShift &a, const RankShift &b) {
                         return std::abs(a.delta()) > std::abs(b.delta());
                     });
    return cmp;
}

EnhancementExperimentResult
runEnhancementExperiment(
    std::span<const trace::WorkloadProfile> workloads,
    const PbExperimentOptions &options,
    const HookFactory &hook_factory, const std::string &hook_id)
{
    if (!hook_factory)
        throw std::invalid_argument(
            "runEnhancementExperiment: hook_factory is required");

    // Mutable copy: under process isolation both legs share one
    // sandbox pool injected below.
    exec::CampaignOptions campaign = options.campaign;

    // Pre-flight the shared ingredients (workloads, run lengths,
    // parameter space) up front so a bad recipe is rejected before
    // the engine is even constructed; each leg's runPbExperiment
    // additionally proves its design matrix.
    if (!campaign.skipPreflight) {
        check::ExperimentPlan plan;
        plan.workloads = workloads;
        plan.auditParameterSpace = true;
        plan.instructionsPerRun = options.instructionsPerRun;
        plan.warmupInstructions = options.warmupInstructions;
        plan.replication = options.campaign.replication;
        plan.remote = detail::remotePlanFor(options.campaign);
        check::preflightOrThrow(plan, "runEnhancementExperiment");
    }

    // Both legs share one engine: the pool, the run cache (a base leg
    // already simulated through campaign.engine is free), and the
    // progress counters.
    exec::SimulationEngine local_engine(
        exec::EngineOptions{campaign.threads, true});
    exec::SimulationEngine &engine =
        campaign.engine ? *campaign.engine : local_engine;

    // One sandbox pool for both legs under process isolation; built
    // with the hook factory so the enhanced leg's children can
    // rebuild the enhancement hook from the shipped profile.
    const std::unique_ptr<exec::proc::ProcWorkerPool> shared_pool =
        detail::makeSharedProcPool(engine, campaign, hook_factory);
    if (shared_pool != nullptr)
        campaign.procPool = shared_pool.get();

    EnhancementExperimentResult result;

    {
        detail::PhaseScope phase(campaign, "base_leg");
        PbExperimentOptions base_opts = options;
        base_opts.hookFactory = {};
        base_opts.hookId.clear();
        base_opts.experimentName = "enhancement_base";
        base_opts.campaign = campaign;
        base_opts.campaign.engine = &engine;
        result.base = runPbExperiment(workloads, base_opts);
    }

    {
        detail::PhaseScope phase(campaign, "enhanced_leg");
        PbExperimentOptions enhanced_opts = options;
        enhanced_opts.hookFactory = hook_factory;
        enhanced_opts.hookId = hook_id;
        enhanced_opts.experimentName = "enhancement_enhanced";
        enhanced_opts.campaign = campaign;
        enhanced_opts.campaign.engine = &engine;
        result.enhanced = runPbExperiment(workloads, enhanced_opts);
    }

    // Fault degradation may have dropped different benchmarks from
    // the two legs; a sum-of-ranks delta is only meaningful over a
    // common population, so re-filter both legs to the intersection
    // of survivors before comparing.
    const std::set<std::string> base_drop(
        result.base.droppedBenchmarks.begin(),
        result.base.droppedBenchmarks.end());
    const std::set<std::string> enh_drop(
        result.enhanced.droppedBenchmarks.begin(),
        result.enhanced.droppedBenchmarks.end());
    if (base_drop != enh_drop) {
        std::set<std::string> union_drop = base_drop;
        union_drop.insert(enh_drop.begin(), enh_drop.end());
        result.validity.warning(
            check::rules::kCampaignPairedDropMismatch,
            "the base and enhanced legs dropped different benchmark "
            "sets; the comparison is restricted to the " +
                std::to_string(workloads.size() - union_drop.size()) +
                " benchmark(s) both legs completed");
        const std::vector<std::string> union_list(union_drop.begin(),
                                                  union_drop.end());
        if (union_list.size() >= workloads.size()) {
            result.validity.error(
                check::rules::kCampaignNoCompleteBenchmarks,
                "no benchmark completed in both legs; the paired "
                "comparison has no common population");
            throw check::CampaignError("runEnhancementExperiment",
                                       std::move(result.validity));
        }
        result.base.dropBenchmarks(union_list);
        result.enhanced.dropBenchmarks(union_list);
    }
    result.droppedBenchmarks = result.base.droppedBenchmarks;

    result.comparison = compareRankTables(result.base.summaries,
                                          result.enhanced.summaries);
    result.execution = engine.progress().snapshot();
    return result;
}

} // namespace rigor::methodology
