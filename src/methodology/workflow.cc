#include "methodology/workflow.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>

#include "check/preflight.hh"
#include "doe/ranking.hh"
#include "exec/journal.hh"
#include "methodology/campaign_instrumentation.hh"
#include "obs/json.hh"
#include "stats/yates.hh"

namespace rigor::methodology
{

Factor
factorByName(const std::string &name)
{
    for (const ParameterDef &def : parameterDefinitions())
        if (def.name == name)
            return def.factor;
    throw std::invalid_argument("factorByName: unknown factor " + name);
}

std::string
WorkflowResult::toString() const
{
    std::ostringstream os;
    os << "Step 1 - critical parameters (PB screen, "
       << screening.design.numRows() << " runs x "
       << screening.benchmarks.size() << " workloads):\n";
    for (std::size_t i = 0; i < criticalFactors.size(); ++i)
        os << "  " << i + 1 << ". "
           << factorName(criticalFactors[i]) << "\n";
    os << "Step 2 - non-critical parameters: typical commercial "
          "values (ProcessorConfig defaults).\n";
    os << "Step 3 - full factorial over the critical set ("
       << (1u << criticalFactors.size()) << " configurations):\n";
    os << stats::formatAnovaTable(sensitivity);
    os << "Step 4 - directions:\n";
    for (const ParameterRecommendation &rec : recommendations) {
        os << "  " << rec.name << ": high value "
           << (rec.cyclesSavedHighVsLow >= 0.0 ? "saves" : "costs")
           << " " << std::abs(rec.cyclesSavedHighVsLow)
           << " cycles on average ("
           << 100.0 * rec.variationExplained << "% of variation)\n";
    }
    if (!largestInteraction.empty())
        os << "Largest interaction: " << largestInteraction << " ("
           << 100.0 * largestInteractionShare << "% of variation)\n";
    if (!screening.droppedBenchmarks.empty()) {
        os << "Degraded: screen dropped";
        for (const std::string &b : screening.droppedBenchmarks)
            os << " " << b;
        os << " (quarantined failures; rank sums cover "
           << screening.benchmarks.size() << " benchmarks)\n";
    }
    if (!factorialDroppedWorkloads.empty()) {
        os << "Degraded: factorial averaging dropped";
        for (const std::string &w : factorialDroppedWorkloads)
            os << " " << w;
        os << " (quarantined failures)\n";
    }
    os << "Execution: " << execution.toString() << "\n";
    return os.str();
}

WorkflowResult
runRecommendedWorkflow(
    std::span<const trace::WorkloadProfile> workloads,
    const WorkflowOptions &options)
{
    if (options.maxCriticalParameters == 0 ||
        options.maxCriticalParameters > 12)
        throw std::invalid_argument(
            "runRecommendedWorkflow: maxCriticalParameters must be in "
            "[1, 12]");

    WorkflowResult result;
    // Mutable copy: under process isolation the workflow injects a
    // shared sandbox pool below, so both phases reuse the workers.
    exec::CampaignOptions campaign = options.campaign;

    // One engine for both simulation phases: the screen's pool is
    // reused by the step-3 factorial, and any configuration the
    // factorial shares with the screen is served from the run cache.
    // The campaign's journal makes every completed run of either
    // phase durable across process restarts.
    exec::EngineOptions engine_opts;
    engine_opts.threads = campaign.threads;
    engine_opts.simulate = options.simulate;
    exec::SimulationEngine local_engine(engine_opts);
    exec::SimulationEngine &engine =
        campaign.engine ? *campaign.engine : local_engine;

    // Under process isolation, fork the sandbox workers once and
    // share them across the screen and the factorial.
    const std::unique_ptr<exec::proc::ProcWorkerPool> shared_pool =
        detail::makeSharedProcPool(engine, campaign);
    if (shared_pool != nullptr)
        campaign.procPool = shared_pool.get();

    // ----- Step 1: PB screening -----
    PbExperimentOptions screen_opts;
    screen_opts.instructionsPerRun = options.instructionsPerRun;
    screen_opts.warmupInstructions = options.warmupInstructions;
    screen_opts.campaign = campaign;
    screen_opts.campaign.engine = &engine;
    result.screening = runPbExperiment(workloads, screen_opts);

    // Critical set: up to the largest sum-of-ranks gap, capped, and
    // never including dummy factors (they are the noise floor).
    const std::size_t cut = doe::significanceCutoff(
        result.screening.summaries,
        std::min<std::size_t>(options.maxCriticalParameters + 2, 15));
    const std::size_t take =
        std::min({cut, options.maxCriticalParameters,
                  result.screening.summaries.size()});
    for (std::size_t i = 0;
         i < result.screening.summaries.size() &&
         result.criticalFactors.size() < take;
         ++i) {
        const std::string &name =
            result.screening.summaries[i].name;
        const Factor f = factorByName(name);
        if (f == Factor::DummyFactor1 || f == Factor::DummyFactor2)
            continue;
        result.criticalFactors.push_back(f);
    }

    // ----- Step 3: full factorial over the critical set -----
    const std::size_t k = result.criticalFactors.size();
    std::vector<std::string> names;
    names.reserve(k);
    for (Factor f : result.criticalFactors)
        names.push_back(factorName(f));

    // All 2^k x workloads cells go through the shared engine as one
    // parallel batch; the per-cell responses are then averaged in a
    // fixed order so the result is thread-count independent.
    const std::size_t num_cells = std::size_t{1} << k;
    std::vector<exec::SimJob> jobs;
    jobs.reserve(num_cells * workloads.size());
    for (std::uint32_t t = 0; t < (1u << k); ++t) {
        std::vector<std::pair<Factor, doe::Level>> overrides;
        overrides.reserve(k);
        for (std::size_t i = 0; i < k; ++i)
            overrides.emplace_back(result.criticalFactors[i],
                                   (t >> i) & 1 ? doe::Level::High
                                                : doe::Level::Low);
        const sim::ProcessorConfig config =
            configWithOverrides(overrides);
        for (const trace::WorkloadProfile &w : workloads) {
            exec::SimJob job;
            job.workload = &w;
            job.config = config;
            job.instructions = options.instructionsPerRun;
            job.warmupInstructions = options.warmupInstructions;
            job.label =
                w.name + ", factorial cell " + std::to_string(t);
            jobs.push_back(std::move(job));
        }
    }
    // Step-3 pre-flight: every factorial cell's configuration must
    // satisfy the Tables 6-8 invariants before the batch runs (the
    // screen already vetted the workloads and run lengths).
    if (!campaign.skipPreflight) {
        detail::PhaseScope phase(campaign, "factorial_preflight");
        check::ExperimentPlan plan;
        plan.configs.reserve(jobs.size());
        for (const exec::SimJob &job : jobs)
            plan.configs.push_back(&job.config);
        plan.instructionsPerRun = options.instructionsPerRun;
        plan.warmupInstructions = options.warmupInstructions;
        plan.workloads = workloads;
        plan.replication = options.campaign.replication;
        plan.remote = detail::remotePlanFor(options.campaign);
        check::preflightOrThrow(plan,
                                "runRecommendedWorkflow (step 3)");
    }

    std::vector<std::string> factorial_workloads;
    factorial_workloads.reserve(workloads.size());
    for (const trace::WorkloadProfile &w : workloads)
        factorial_workloads.push_back(w.name);

    // The factorial is its own campaign in the manifest: k factors,
    // 2^k rows, no foldover, identified by a digest of the critical
    // factor set.
    if (campaign.manifest) {
        obs::CampaignInfo info;
        info.experiment = "workflow_factorial";
        info.factors = k;
        info.rows = num_cells;
        info.foldover = false;
        std::string serialized = "factorial:";
        for (const std::string &name : names)
            serialized += name + ";";
        info.designDigest =
            obs::digestHex(obs::fnv1a(serialized));
        info.workloads = factorial_workloads;
        info.instructionsPerRun = options.instructionsPerRun;
        info.warmupInstructions = options.warmupInstructions;
        campaign.manifest->beginCampaign(info);
    }

    // Factorial jobs are cell-major (all workloads of cell t are
    // adjacent), so the manifest mapping is the transpose of the
    // screen's benchmark-major one.
    exec::JobObserver factorial_observer;
    if (campaign.manifest) {
        const std::size_t num_workloads = workloads.size();
        factorial_observer = [manifest = campaign.manifest,
                              factorial_workloads,
                              num_workloads](
                                 const exec::JobEvent &event) {
            obs::CellRecord cell;
            cell.benchmark =
                factorial_workloads[event.jobIndex % num_workloads];
            cell.row = event.jobIndex / num_workloads;
            cell.runKey = event.runKey;
            cell.source =
                event.ok ? exec::toString(event.source) : "failed";
            cell.attempts = event.attempts;
            cell.wallSeconds = event.wallSeconds;
            cell.response = event.response;
            cell.host = event.host;
            manifest->addCell(cell);
        };
    }

    const auto factorial_start = std::chrono::steady_clock::now();
    const exec::ProgressSnapshot factorial_before =
        engine.progress().snapshot();

    exec::BatchResult cell_batch;
    try {
        detail::EngineSinkScope sinks(engine, campaign,
                                      std::move(factorial_observer));
        detail::IsolationScope isolation(engine, campaign);
        detail::PhaseScope phase(campaign, "factorial");
        phase.span().arg("cells", std::to_string(num_cells));
        phase.span().arg("jobs", std::to_string(jobs.size()));
        cell_batch = engine.run(jobs, campaign.faultPolicy);
    } catch (const exec::BatchAbort &) {
        throw; // resume-able infrastructure failure: keep the type
    }
    const std::vector<double> &cells = cell_batch.responses;

    // Quarantined factorial cells: a workload missing from one cell
    // would skew that cell's average against its neighbors, so the
    // whole workload is dropped from every cell (or the workflow
    // aborts), arbitrated through the campaign analyzer.
    std::set<std::size_t> dropped_w;
    if (!cell_batch.complete()) {
        std::vector<std::string> workload_names;
        workload_names.reserve(workloads.size());
        for (const trace::WorkloadProfile &w : workloads)
            workload_names.push_back(w.name);
        std::vector<check::QuarantinedCell> quarantined;
        quarantined.reserve(cell_batch.failures.size());
        for (const exec::JobFailure &f : cell_batch.failures) {
            check::QuarantinedCell cell;
            cell.benchmark =
                workload_names[f.jobIndex % workloads.size()];
            cell.row = f.jobIndex / workloads.size();
            cell.attempts = f.attempts;
            cell.kind = exec::toString(f.kind);
            cell.message = f.message;
            quarantined.push_back(std::move(cell));
        }
        check::CampaignAssessment assessment =
            check::assessFactorialValidity(workload_names, num_cells,
                                           quarantined,
                                           campaign.degradation);
        result.factorialValidity = assessment.sink;
        if (!assessment.passed())
            throw check::CampaignError(
                "runRecommendedWorkflow (step 3)",
                std::move(assessment.sink));
        result.factorialDroppedWorkloads =
            std::move(assessment.dropBenchmarks);
        for (std::size_t w = 0; w < workload_names.size(); ++w)
            for (const std::string &name :
                 result.factorialDroppedWorkloads)
                if (workload_names[w] == name)
                    dropped_w.insert(w);
    }
    const std::size_t surviving =
        workloads.size() - dropped_w.size();

    {
        detail::PhaseScope phase(campaign, "anova");
        std::vector<double> responses;
        responses.reserve(num_cells);
        for (std::size_t t = 0; t < num_cells; ++t) {
            double total = 0.0;
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                if (dropped_w.count(w))
                    continue;
                total += cells[t * workloads.size() + w];
            }
            responses.push_back(total /
                                static_cast<double>(surviving));
        }
        result.sensitivity = stats::analyzeFactorial(names, responses);
    }

    // ----- Step 4: directions from the main effects -----
    for (std::size_t i = 0; i < k; ++i) {
        const stats::AnovaRow &row =
            result.sensitivity.rows[(std::size_t{1} << i) - 1];
        ParameterRecommendation rec;
        rec.factor = result.criticalFactors[i];
        rec.name = names[i];
        // Effect is (high - low) on cycles; saving = -effect.
        rec.cyclesSavedHighVsLow = -row.effect;
        rec.variationExplained = row.variationExplained;
        result.recommendations.push_back(std::move(rec));
    }
    std::stable_sort(result.recommendations.begin(),
                     result.recommendations.end(),
                     [](const ParameterRecommendation &a,
                        const ParameterRecommendation &b) {
                         return a.variationExplained >
                                b.variationExplained;
                     });

    // Largest interaction (order >= 2).
    for (const stats::AnovaRow &row :
         result.sensitivity.rowsBySignificance()) {
        if (stats::contrastOrder(row.mask) >= 2) {
            result.largestInteraction = row.label;
            result.largestInteractionShare = row.variationExplained;
            break;
        }
    }
    result.execution = engine.progress().snapshot();

    if (campaign.manifest) {
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - factorial_start;
        obs::SummaryRecord summary = detail::summaryFromProgress(
            factorial_before, result.execution, wall.count());
        summary.droppedBenchmarks = result.factorialDroppedWorkloads;
        campaign.manifest->addSummary(summary);
    }
    return result;
}

} // namespace rigor::methodology
