#include "cluster/union_find.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>

namespace rigor::cluster
{

UnionFind::UnionFind(std::size_t n)
    : _parent(n), _rank(n, 0), _numSets(n)
{
    for (std::size_t i = 0; i < n; ++i)
        _parent[i] = i;
}

std::size_t
UnionFind::find(std::size_t x)
{
    if (x >= _parent.size())
        throw std::out_of_range("UnionFind::find: element out of range");
    // Path compression: point every node on the walk at the root.
    std::size_t root = x;
    while (_parent[root] != root)
        root = _parent[root];
    while (_parent[x] != root) {
        const std::size_t next = _parent[x];
        _parent[x] = root;
        x = next;
    }
    return root;
}

bool
UnionFind::unite(std::size_t a, std::size_t b)
{
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb)
        return false;
    if (_rank[ra] < _rank[rb])
        std::swap(ra, rb);
    _parent[rb] = ra;
    if (_rank[ra] == _rank[rb])
        ++_rank[ra];
    --_numSets;
    return true;
}

bool
UnionFind::connected(std::size_t a, std::size_t b)
{
    return find(a) == find(b);
}

std::vector<std::vector<std::size_t>>
UnionFind::sets()
{
    std::map<std::size_t, std::vector<std::size_t>> by_root;
    for (std::size_t i = 0; i < _parent.size(); ++i)
        by_root[find(i)].push_back(i);

    std::vector<std::vector<std::size_t>> out;
    out.reserve(by_root.size());
    for (auto &[root, members] : by_root) {
        std::sort(members.begin(), members.end());
        out.push_back(std::move(members));
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.front() < b.front();
              });
    return out;
}

} // namespace rigor::cluster
