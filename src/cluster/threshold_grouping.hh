/**
 * @file
 * Threshold-based similarity grouping (the paper's Table 11).
 *
 * The paper defines two benchmarks as similar when their rank-vector
 * distance falls below a user-chosen threshold (sqrt(4000) ~ 63.2 in
 * the worked example) and groups them accordingly. Two natural
 * formalizations are provided: connected components of the
 * "similar" graph (transitive closure — what reproduces Table 11)
 * and maximal-clique-free complete-linkage groups (stricter: every
 * pair inside a group must be similar).
 */

#ifndef RIGOR_CLUSTER_THRESHOLD_GROUPING_HH
#define RIGOR_CLUSTER_THRESHOLD_GROUPING_HH

#include <vector>

#include "cluster/distance_matrix.hh"

namespace rigor::cluster
{

/** Groups as lists of item indices; each item appears exactly once. */
using Groups = std::vector<std::vector<std::size_t>>;

/**
 * Connected components of the graph with an edge wherever distance <
 * @p threshold. Components are ordered by smallest member; members
 * are sorted.
 */
Groups groupByThresholdComponents(const DistanceMatrix &distances,
                                  double threshold);

/**
 * Greedy complete-linkage grouping: items join the first existing
 * group whose every member is within @p threshold; otherwise they
 * start a new group. Stricter than components — inside a group all
 * pairs are similar.
 */
Groups groupByThresholdCliques(const DistanceMatrix &distances,
                               double threshold);

/**
 * True when every pair of items inside every group is within
 * @p threshold of each other.
 */
bool allGroupsPairwiseSimilar(const DistanceMatrix &distances,
                              const Groups &groups, double threshold);

} // namespace rigor::cluster

#endif // RIGOR_CLUSTER_THRESHOLD_GROUPING_HH
