#include "cluster/hierarchical.hh"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "cluster/union_find.hh"

namespace rigor::cluster
{

Dendrogram::Dendrogram(std::size_t num_leaves,
                       std::vector<MergeStep> steps)
    : _numLeaves(num_leaves), _steps(std::move(steps))
{
    if (_numLeaves == 0)
        throw std::invalid_argument("Dendrogram: need at least one leaf");
    if (_steps.size() != _numLeaves - 1)
        throw std::invalid_argument(
            "Dendrogram: need exactly n - 1 merge steps");
}

Groups
Dendrogram::cutAfterMerges(std::size_t merges) const
{
    UnionFind uf(_numLeaves);
    // Track, for every cluster id, one representative leaf.
    std::vector<std::size_t> rep(_numLeaves + _steps.size());
    for (std::size_t i = 0; i < _numLeaves; ++i)
        rep[i] = i;
    for (std::size_t k = 0; k < merges; ++k) {
        const MergeStep &step = _steps[k];
        uf.unite(rep[step.left], rep[step.right]);
        rep[_numLeaves + k] = rep[step.left];
    }
    return uf.sets();
}

Groups
Dendrogram::cut(double height) const
{
    std::size_t merges = 0;
    while (merges < _steps.size() && _steps[merges].distance < height)
        ++merges;
    return cutAfterMerges(merges);
}

Groups
Dendrogram::cutToClusters(std::size_t k) const
{
    if (k == 0 || k > _numLeaves)
        throw std::invalid_argument(
            "Dendrogram::cutToClusters: k must be in [1, n]");
    return cutAfterMerges(_numLeaves - k);
}

std::string
Dendrogram::toString(const std::vector<std::string> &labels) const
{
    if (labels.size() != _numLeaves)
        throw std::invalid_argument(
            "Dendrogram::toString: need one label per leaf");

    // Expand any cluster id to its member label list.
    std::vector<std::string> names(labels);
    names.resize(_numLeaves + _steps.size());

    std::ostringstream os;
    for (std::size_t k = 0; k < _steps.size(); ++k) {
        const MergeStep &s = _steps[k];
        const std::string merged =
            "{" + names[s.left] + ", " + names[s.right] + "}";
        names[_numLeaves + k] = merged;
        os << std::fixed << std::setprecision(1) << std::setw(8)
           << s.distance << "  " << merged << '\n';
    }
    return os.str();
}

Dendrogram
agglomerate(const DistanceMatrix &distances, Linkage linkage)
{
    const std::size_t n = distances.size();

    struct Cluster
    {
        std::size_t id;
        std::vector<std::size_t> leaves;
        bool alive;
    };
    std::vector<Cluster> clusters;
    clusters.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i)
        clusters.push_back({i, {i}, true});

    // Linkage distance between two clusters from leaf distances.
    const auto link = [&](const Cluster &a, const Cluster &b) {
        double best = (linkage == Linkage::Single)
                          ? std::numeric_limits<double>::infinity()
                          : 0.0;
        double total = 0.0;
        for (std::size_t la : a.leaves) {
            for (std::size_t lb : b.leaves) {
                const double d = distances.at(la, lb);
                switch (linkage) {
                  case Linkage::Single:
                    best = std::min(best, d);
                    break;
                  case Linkage::Complete:
                    best = std::max(best, d);
                    break;
                  case Linkage::Average:
                    total += d;
                    break;
                }
            }
        }
        if (linkage == Linkage::Average)
            return total / static_cast<double>(a.leaves.size() *
                                               b.leaves.size());
        return best;
    };

    std::vector<MergeStep> steps;
    steps.reserve(n - 1);
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i)
        active.push_back(i);

    while (active.size() > 1) {
        double best_d = std::numeric_limits<double>::infinity();
        std::size_t bi = 0;
        std::size_t bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                const double d =
                    link(clusters[active[i]], clusters[active[j]]);
                if (d < best_d) {
                    best_d = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        const std::size_t ca = active[bi];
        const std::size_t cb = active[bj];
        Cluster merged;
        merged.id = clusters.size();
        merged.leaves = clusters[ca].leaves;
        merged.leaves.insert(merged.leaves.end(),
                             clusters[cb].leaves.begin(),
                             clusters[cb].leaves.end());
        merged.alive = true;
        clusters[ca].alive = false;
        clusters[cb].alive = false;

        steps.push_back({clusters[ca].id, clusters[cb].id, best_d,
                         merged.leaves.size()});
        clusters.push_back(std::move(merged));

        // Replace the two merged entries with the new cluster.
        active.erase(active.begin() + static_cast<long>(bj));
        active[bi] = clusters.size() - 1;
    }

    return Dendrogram(n, std::move(steps));
}

} // namespace rigor::cluster
