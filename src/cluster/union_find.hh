/**
 * @file
 * Disjoint-set (union-find) structure with union by rank and path
 * compression. Used by the threshold grouping to form connected
 * components of the "similar" graph.
 */

#ifndef RIGOR_CLUSTER_UNION_FIND_HH
#define RIGOR_CLUSTER_UNION_FIND_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rigor::cluster
{

class UnionFind
{
  public:
    /** @p n singleton sets, elements 0 .. n-1. */
    explicit UnionFind(std::size_t n);

    /** Representative of the set containing @p x. */
    std::size_t find(std::size_t x);

    /**
     * Merge the sets containing @p a and @p b.
     * @return true when the sets were distinct (a merge happened)
     */
    bool unite(std::size_t a, std::size_t b);

    /** True when both elements are in the same set. */
    bool connected(std::size_t a, std::size_t b);

    /** Number of disjoint sets remaining. */
    std::size_t numSets() const { return _numSets; }

    /**
     * All sets as sorted element lists, ordered by smallest member.
     */
    std::vector<std::vector<std::size_t>> sets();

  private:
    std::vector<std::size_t> _parent;
    std::vector<std::uint8_t> _rank;
    std::size_t _numSets;
};

} // namespace rigor::cluster

#endif // RIGOR_CLUSTER_UNION_FIND_HH
