/**
 * @file
 * Distance metrics between benchmark fingerprint vectors.
 *
 * Section 4.2 of the paper measures benchmark similarity as the
 * Euclidean distance between the benchmarks' parameter-rank vectors.
 * Alternative metrics are provided so the classification can be
 * stress-tested against the metric choice.
 */

#ifndef RIGOR_CLUSTER_DISTANCE_HH
#define RIGOR_CLUSTER_DISTANCE_HH

#include <functional>
#include <span>

namespace rigor::cluster
{

/** A symmetric distance function on equal-length vectors. */
using DistanceFn = std::function<double(std::span<const double>,
                                        std::span<const double>)>;

/** L2 distance — the paper's metric. */
double euclideanDistance(std::span<const double> x,
                         std::span<const double> y);

/** L1 (city-block) distance. */
double manhattanDistance(std::span<const double> x,
                         std::span<const double> y);

/** L-infinity (maximum coordinate difference) distance. */
double chebyshevDistance(std::span<const double> x,
                         std::span<const double> y);

/** 1 - cosine similarity; 0 for parallel vectors. */
double cosineDistance(std::span<const double> x,
                      std::span<const double> y);

} // namespace rigor::cluster

#endif // RIGOR_CLUSTER_DISTANCE_HH
