/**
 * @file
 * Agglomerative hierarchical clustering.
 *
 * An extension beyond the paper's single-threshold grouping: building
 * the full merge tree lets an experimenter inspect how benchmark
 * groups evolve as the similarity threshold varies, instead of
 * committing to one arbitrary cutoff.
 */

#ifndef RIGOR_CLUSTER_HIERARCHICAL_HH
#define RIGOR_CLUSTER_HIERARCHICAL_HH

#include <string>
#include <vector>

#include "cluster/distance_matrix.hh"
#include "cluster/threshold_grouping.hh"

namespace rigor::cluster
{

/** Inter-cluster distance update rule. */
enum class Linkage
{
    Single,   ///< min pairwise distance
    Complete, ///< max pairwise distance
    Average,  ///< unweighted average pairwise distance (UPGMA)
};

/** One merge step in the dendrogram. */
struct MergeStep
{
    /** Cluster ids merged. Ids 0..n-1 are leaves; n+k is the cluster
     *  created by merge step k. */
    std::size_t left = 0;
    std::size_t right = 0;
    /** Linkage distance at which the merge happened. */
    double distance = 0.0;
    /** Number of leaves in the merged cluster. */
    std::size_t size = 0;
};

/** Result of a full agglomeration: n - 1 merge steps. */
class Dendrogram
{
  public:
    Dendrogram(std::size_t num_leaves, std::vector<MergeStep> steps);

    std::size_t numLeaves() const { return _numLeaves; }
    const std::vector<MergeStep> &steps() const { return _steps; }

    /**
     * Cut the tree at @p height: clusters are the components formed by
     * merges with distance < height.
     */
    Groups cut(double height) const;

    /** Cut so that exactly @p k clusters remain (1 <= k <= n). */
    Groups cutToClusters(std::size_t k) const;

    /** ASCII rendering of the merge sequence for reports. */
    std::string toString(const std::vector<std::string> &labels) const;

  private:
    std::size_t _numLeaves;
    std::vector<MergeStep> _steps;

    Groups cutAfterMerges(std::size_t merges) const;
};

/**
 * Run agglomerative clustering over a distance matrix.
 *
 * O(n^3) naive implementation — benchmark suites are tens of items,
 * so clarity wins over an O(n^2 log n) scheme.
 */
Dendrogram agglomerate(const DistanceMatrix &distances, Linkage linkage);

} // namespace rigor::cluster

#endif // RIGOR_CLUSTER_HIERARCHICAL_HH
