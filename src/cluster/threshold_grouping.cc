#include "cluster/threshold_grouping.hh"

#include "cluster/union_find.hh"

namespace rigor::cluster
{

Groups
groupByThresholdComponents(const DistanceMatrix &distances,
                           double threshold)
{
    UnionFind uf(distances.size());
    for (const auto &[i, j] : distances.pairsBelow(threshold))
        uf.unite(i, j);
    return uf.sets();
}

Groups
groupByThresholdCliques(const DistanceMatrix &distances, double threshold)
{
    Groups groups;
    for (std::size_t item = 0; item < distances.size(); ++item) {
        bool placed = false;
        for (std::vector<std::size_t> &group : groups) {
            bool fits = true;
            for (std::size_t member : group) {
                if (distances.at(item, member) >= threshold) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                group.push_back(item);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({item});
    }
    return groups;
}

bool
allGroupsPairwiseSimilar(const DistanceMatrix &distances,
                         const Groups &groups, double threshold)
{
    for (const std::vector<std::size_t> &group : groups)
        for (std::size_t a = 0; a < group.size(); ++a)
            for (std::size_t b = a + 1; b < group.size(); ++b)
                if (distances.at(group[a], group[b]) >= threshold)
                    return false;
    return true;
}

} // namespace rigor::cluster
