#include "cluster/distance_matrix.hh"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rigor::cluster
{

DistanceMatrix::DistanceMatrix(std::size_t n)
    : _n(n), _lower(n * (n - 1) / 2, 0.0)
{
    if (n == 0)
        throw std::invalid_argument("DistanceMatrix: size must be > 0");
}

DistanceMatrix
DistanceMatrix::fromPoints(const std::vector<std::vector<double>> &points,
                           const DistanceFn &metric)
{
    DistanceMatrix m(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = i + 1; j < points.size(); ++j)
            m.set(i, j, metric(points[i], points[j]));
    return m;
}

std::size_t
DistanceMatrix::index(std::size_t i, std::size_t j) const
{
    if (i >= _n || j >= _n || i == j)
        throw std::out_of_range("DistanceMatrix: bad index pair");
    if (i < j)
        std::swap(i, j);
    // Strict lower triangle, row-major: (i, j) with j < i.
    return i * (i - 1) / 2 + j;
}

double
DistanceMatrix::at(std::size_t i, std::size_t j) const
{
    if (i == j) {
        if (i >= _n)
            throw std::out_of_range("DistanceMatrix: bad index");
        return 0.0;
    }
    return _lower[index(i, j)];
}

void
DistanceMatrix::set(std::size_t i, std::size_t j, double d)
{
    if (d < 0.0)
        throw std::invalid_argument(
            "DistanceMatrix: distances must be non-negative");
    _lower[index(i, j)] = d;
}

std::vector<std::pair<std::size_t, std::size_t>>
DistanceMatrix::pairsBelow(double threshold) const
{
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < _n; ++i)
        for (std::size_t j = i + 1; j < _n; ++j)
            if (at(i, j) < threshold)
                pairs.emplace_back(i, j);
    return pairs;
}

std::size_t
DistanceMatrix::nearestNeighbor(std::size_t i) const
{
    if (_n < 2)
        throw std::logic_error(
            "DistanceMatrix::nearestNeighbor: need at least two items");
    std::size_t best = (i == 0) ? 1 : 0;
    double best_d = at(i, best);
    for (std::size_t j = 0; j < _n; ++j) {
        if (j == i)
            continue;
        const double d = at(i, j);
        if (d < best_d) {
            best_d = d;
            best = j;
        }
    }
    return best;
}

std::string
DistanceMatrix::toString(const std::vector<std::string> &labels) const
{
    if (labels.size() != _n)
        throw std::invalid_argument(
            "DistanceMatrix::toString: need one label per item");

    std::size_t width = 7;
    for (const std::string &l : labels)
        width = std::max(width, l.size() + 2);

    std::ostringstream os;
    os << std::setw(static_cast<int>(width)) << "";
    for (const std::string &l : labels)
        os << std::setw(static_cast<int>(width)) << l;
    os << '\n';
    for (std::size_t i = 0; i < _n; ++i) {
        os << std::setw(static_cast<int>(width)) << labels[i];
        for (std::size_t j = 0; j < _n; ++j)
            os << std::setw(static_cast<int>(width)) << std::fixed
               << std::setprecision(1) << at(i, j);
        os << '\n';
    }
    return os.str();
}

} // namespace rigor::cluster
