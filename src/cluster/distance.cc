#include "cluster/distance.hh"

#include <cmath>
#include <stdexcept>

namespace rigor::cluster
{

namespace
{

void
checkLengths(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size() || x.empty())
        throw std::invalid_argument(
            "distance: vectors must be non-empty and of equal length");
}

} // namespace

double
euclideanDistance(std::span<const double> x, std::span<const double> y)
{
    checkLengths(x, y);
    double ss = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - y[i];
        ss += d * d;
    }
    return std::sqrt(ss);
}

double
manhattanDistance(std::span<const double> x, std::span<const double> y)
{
    checkLengths(x, y);
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        total += std::abs(x[i] - y[i]);
    return total;
}

double
chebyshevDistance(std::span<const double> x, std::span<const double> y)
{
    checkLengths(x, y);
    double worst = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        worst = std::max(worst, std::abs(x[i] - y[i]));
    return worst;
}

double
cosineDistance(std::span<const double> x, std::span<const double> y)
{
    checkLengths(x, y);
    double dot = 0.0;
    double nx = 0.0;
    double ny = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        dot += x[i] * y[i];
        nx += x[i] * x[i];
        ny += y[i] * y[i];
    }
    if (nx == 0.0 || ny == 0.0)
        throw std::invalid_argument(
            "cosineDistance: vectors must be non-zero");
    return 1.0 - dot / std::sqrt(nx * ny);
}

} // namespace rigor::cluster
