/**
 * @file
 * Symmetric pairwise distance matrix (the paper's Table 10).
 */

#ifndef RIGOR_CLUSTER_DISTANCE_MATRIX_HH
#define RIGOR_CLUSTER_DISTANCE_MATRIX_HH

#include <string>
#include <vector>

#include "cluster/distance.hh"

namespace rigor::cluster
{

/**
 * Symmetric n x n matrix of pairwise distances with a zero diagonal.
 * Stores the strict lower triangle.
 */
class DistanceMatrix
{
  public:
    /** An n x n matrix of zeros. */
    explicit DistanceMatrix(std::size_t n);

    /**
     * Compute all pairwise distances between the given points.
     *
     * @param points one vector per item (all of equal length)
     * @param metric distance function (defaults to Euclidean, as in
     *        the paper)
     */
    static DistanceMatrix
    fromPoints(const std::vector<std::vector<double>> &points,
               const DistanceFn &metric = euclideanDistance);

    std::size_t size() const { return _n; }

    double at(std::size_t i, std::size_t j) const;
    void set(std::size_t i, std::size_t j, double d);

    /** All pairs (i, j), i < j, with distance below @p threshold. */
    std::vector<std::pair<std::size_t, std::size_t>>
    pairsBelow(double threshold) const;

    /** Index of the nearest other item to @p i. Requires size() >= 2. */
    std::size_t nearestNeighbor(std::size_t i) const;

    /**
     * Render as a table with row/column labels, one decimal place —
     * the presentation of the paper's Table 10.
     */
    std::string toString(const std::vector<std::string> &labels) const;

  private:
    std::size_t _n;
    std::vector<double> _lower;

    std::size_t index(std::size_t i, std::size_t j) const;
};

} // namespace rigor::cluster

#endif // RIGOR_CLUSTER_DISTANCE_MATRIX_HH
